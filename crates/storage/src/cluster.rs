//! The simulated replicated object store: N storage-node processes on
//! one event loop.
//!
//! Node 0 is the **primary**; nodes 1..N are **backups**. Clients talk
//! to the primary only. A write is journaled (durable), applied to the
//! volatile object map, streamed to every backup as a `Replicate{seq}`
//! frame, and acknowledged to the client; backups journal and apply in
//! sequence order and return `Ack{seq}` cursors that drive
//! retransmission. A crash (injected by
//! [`FaultPlan::storage_fault`](doppio_faults::FaultPlan::storage_fault)
//! or forced by [`StorageCluster::crash`]) drops a node's volatile
//! state and connections; the journal survives and is replayed on
//! restart, so recovery is idempotent — a record whose sequence number
//! is already durable is ignored. A partition silences one replication
//! link until it heals; the resend timer catches the backup up.
//!
//! The deliberate protocol bug used by the crash-consistency canary is
//! [`StorageConfig::ack_before_journal`]: acknowledge the client
//! *before* journaling, so a crash in the window loses an acked write.
//! With the flag off (the default), the ack only ever follows primary
//! durability and read-your-writes holds through any crash schedule.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::{Rc, Weak};

use doppio_faults::{FaultPlan, StorageFault};
use doppio_jsengine::Engine;
use doppio_sockets::{ConnId, Network, ServerConn, TcpServerApp};
use doppio_trace::SpanContext;

use crate::client::StorageClient;
use crate::proto::{Frame, FrameBuffer, RequestOp, WriteOp};

/// Cluster shape and protocol knobs.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Total nodes including the primary (≥ 1).
    pub replicas: usize,
    /// Node `i` listens on `base_port + i`; clients use `base_port`.
    pub base_port: u16,
    /// **Bug switch** for the canary: acknowledge writes before the
    /// journal append, so a crash in between loses an acked write.
    pub ack_before_journal: bool,
    /// Retransmission interval for unacked replication records.
    pub resend_ns: u64,
    /// Backoff before re-dialing a lost replication link.
    pub reconnect_ns: u64,
}

impl Default for StorageConfig {
    fn default() -> StorageConfig {
        StorageConfig {
            replicas: 3,
            base_port: 7100,
            ack_before_journal: false,
            resend_ns: 5_000_000,
            reconnect_ns: 2_000_000,
        }
    }
}

struct Node {
    name: String,
    port: u16,
    up: Cell<bool>,
    /// Volatile object map — lost on crash, rebuilt from the journal.
    objects: RefCell<BTreeMap<String, Vec<u8>>>,
    /// Durable write-back journal: `(seq, op, ctx)` in sequence order.
    /// The causal context of the appending span rides along so
    /// retransmissions can link back to the write that created the
    /// record.
    journal: RefCell<Vec<(u64, WriteOp, Option<SpanContext>)>>,
    /// Highest sequence number applied to `objects` (volatile).
    applied: Cell<u64>,
    /// Out-of-order replicate frames awaiting their gap (volatile).
    holdback: RefCell<BTreeMap<u64, WriteOp>>,
    /// All live server-side connections.
    conns: RefCell<HashMap<u64, ServerConn>>,
    /// The subset of `conns` that issued client `Request`s (these get
    /// cache-invalidation pushes).
    client_conns: RefCell<BTreeSet<u64>>,
    /// Per-connection reassembly buffers.
    bufs: RefCell<HashMap<u64, FrameBuffer>>,
}

struct ReplLink {
    /// Index of the backup this link feeds.
    target: usize,
    conn: Cell<Option<ConnId>>,
    partitioned: Cell<bool>,
    /// Highest sequence number the backup has acked.
    acked: Cell<u64>,
    /// A dial or retry timer is in flight.
    dialing: Cell<bool>,
}

struct ClusterInner {
    engine: Engine,
    net: Network,
    cfg: StorageConfig,
    plan: Option<FaultPlan>,
    nodes: Vec<Node>,
    links: Vec<Rc<ReplLink>>,
    resend_armed: Cell<bool>,
}

/// Handle to a launched cluster (cheaply cloneable).
#[derive(Clone)]
pub struct StorageCluster {
    inner: Rc<ClusterInner>,
}

struct NodeApp {
    cluster: Weak<ClusterInner>,
    idx: usize,
}

fn counter(engine: &Engine, name: &str) {
    engine.metrics().counter(name).inc();
}

impl StorageCluster {
    /// Launch `cfg.replicas` nodes on `net` and dial the replication
    /// links. Faults (crashes, partitions) are drawn from `plan` at
    /// every protocol step when one is supplied.
    pub fn launch(
        engine: &Engine,
        net: &Network,
        cfg: StorageConfig,
        plan: Option<FaultPlan>,
    ) -> StorageCluster {
        assert!(cfg.replicas >= 1, "a cluster needs at least the primary");
        let nodes = (0..cfg.replicas)
            .map(|i| Node {
                name: format!("node{i}"),
                port: cfg.base_port + i as u16,
                up: Cell::new(true),
                objects: RefCell::new(BTreeMap::new()),
                journal: RefCell::new(Vec::new()),
                applied: Cell::new(0),
                holdback: RefCell::new(BTreeMap::new()),
                conns: RefCell::new(HashMap::new()),
                client_conns: RefCell::new(BTreeSet::new()),
                bufs: RefCell::new(HashMap::new()),
            })
            .collect::<Vec<_>>();
        let links = (1..cfg.replicas)
            .map(|i| {
                Rc::new(ReplLink {
                    target: i,
                    conn: Cell::new(None),
                    partitioned: Cell::new(false),
                    acked: Cell::new(0),
                    dialing: Cell::new(false),
                })
            })
            .collect::<Vec<_>>();
        let inner = Rc::new(ClusterInner {
            engine: engine.clone(),
            net: net.clone(),
            cfg,
            plan,
            nodes,
            links,
            resend_armed: Cell::new(false),
        });
        for i in 0..inner.nodes.len() {
            listen(&inner, i);
        }
        for l in 0..inner.links.len() {
            dial_link(&inner, l);
        }
        StorageCluster { inner }
    }

    /// A new client session (own connection, cache, and request ids)
    /// talking to the primary.
    pub fn client(&self, label: &str, cache: bool) -> StorageClient {
        let client = StorageClient::new(&self.inner.net, self.inner.cfg.base_port, label, cache);
        client.hold_world(self.inner.clone());
        client
    }

    /// Force-crash node `idx` now; it restarts after `restart_after_ns`.
    pub fn crash(&self, idx: usize, restart_after_ns: u64) {
        crash_node(&self.inner, idx, restart_after_ns);
    }

    /// Whether node `idx` is currently up.
    pub fn is_up(&self, idx: usize) -> bool {
        self.inner.nodes[idx].up.get()
    }

    /// The blob at `key` on node `idx` (direct state inspection).
    pub fn object(&self, idx: usize, key: &str) -> Option<Vec<u8>> {
        self.inner.nodes[idx].objects.borrow().get(key).cloned()
    }

    /// Number of journal records on node `idx`.
    pub fn journal_len(&self, idx: usize) -> usize {
        self.inner.nodes[idx].journal.borrow().len()
    }

    /// Highest applied sequence number on node `idx`.
    pub fn applied(&self, idx: usize) -> u64 {
        self.inner.nodes[idx].applied.get()
    }

    /// Number of distinct objects on node `idx`.
    pub fn object_count(&self, idx: usize) -> usize {
        self.inner.nodes[idx].objects.borrow().len()
    }
}

fn listen(inner: &Rc<ClusterInner>, idx: usize) {
    let app = Rc::new(NodeApp {
        cluster: Rc::downgrade(inner),
        idx,
    });
    inner.net.listen(inner.nodes[idx].port, app);
}

impl TcpServerApp for NodeApp {
    fn on_connect(&self, _engine: &Engine, conn: ServerConn) {
        let Some(inner) = self.cluster.upgrade() else {
            return;
        };
        let node = &inner.nodes[self.idx];
        if !node.up.get() {
            // The dial raced a crash: the accept was in flight when the
            // process died. A dead process cannot hold a connection
            // half-open; reset it so the peer retries.
            conn.close();
            return;
        }
        node.conns.borrow_mut().insert(conn.id().0, conn);
    }

    fn on_data(&self, engine: &Engine, conn: ServerConn, data: Vec<u8>) {
        let Some(inner) = self.cluster.upgrade() else {
            return;
        };
        let node = &inner.nodes[self.idx];
        if !node.up.get() {
            // Data raced the crash notification; kill the connection so
            // the sender sees the close instead of silence.
            conn.close();
            return;
        }
        let frames = node
            .bufs
            .borrow_mut()
            .entry(conn.id().0)
            .or_default()
            .push(&data);
        for frame in frames {
            if !node.up.get() {
                return; // a frame crashed the node; drop the rest
            }
            match frame {
                Frame::Request { req_id, op, ctx } => {
                    node.client_conns.borrow_mut().insert(conn.id().0);
                    handle_request(&inner, self.idx, &conn, req_id, op, ctx, engine);
                }
                Frame::Replicate { seq, op, ctx } => {
                    handle_replicate(&inner, self.idx, &conn, seq, op, ctx, engine);
                }
                // Acks arrive on the primary's *client-side* link
                // handlers, never here; anything else is noise.
                _ => {}
            }
        }
    }

    fn on_close(&self, _engine: &Engine, conn: ConnId) {
        let Some(inner) = self.cluster.upgrade() else {
            return;
        };
        let node = &inner.nodes[self.idx];
        node.conns.borrow_mut().remove(&conn.0);
        node.client_conns.borrow_mut().remove(&conn.0);
        node.bufs.borrow_mut().remove(&conn.0);
    }
}

/// Consult the fault plan for one protocol step on `node`; a drawn
/// crash is executed immediately and reported as `true`.
fn crash_fault(inner: &Rc<ClusterInner>, idx: usize, op: &'static str, engine: &Engine) -> bool {
    let Some(plan) = &inner.plan else {
        return false;
    };
    match plan.storage_fault(engine, &inner.nodes[idx].name, op) {
        Some(StorageFault::Crash { restart_after_ns }) => {
            crash_node(inner, idx, restart_after_ns);
            true
        }
        // Partitions only fire for op == "replicate", handled there.
        Some(StorageFault::Partition { .. }) | None => false,
    }
}

fn handle_request(
    inner: &Rc<ClusterInner>,
    idx: usize,
    conn: &ServerConn,
    req_id: u64,
    op: RequestOp,
    ctx: Option<SpanContext>,
    engine: &Engine,
) {
    match op {
        RequestOp::Get { key } => {
            if crash_fault(inner, idx, "get", engine) {
                return;
            }
            let value = inner.nodes[idx].objects.borrow().get(&key).cloned();
            conn.send(Frame::Response { req_id, value }.encode());
        }
        RequestOp::Write(w) => {
            let opname: &'static str = match w {
                WriteOp::Put { .. } => "put",
                WriteOp::Delete { .. } => "delete",
            };
            if inner.cfg.ack_before_journal {
                // THE BUG under test: the ack races the journal append.
                conn.send(
                    Frame::Response {
                        req_id,
                        value: None,
                    }
                    .encode(),
                );
                if crash_fault(inner, idx, opname, engine) {
                    return; // acked write lost — never journaled
                }
                commit_write(inner, idx, conn.id().0, w, ctx, engine);
            } else {
                // Correct order: durable first, ack last.
                if crash_fault(inner, idx, opname, engine) {
                    return; // un-acked; the client will retry
                }
                commit_write(inner, idx, conn.id().0, w, ctx, engine);
                if !inner.nodes[idx].up.get() {
                    return; // crashed at the post-journal decision point
                }
                conn.send(
                    Frame::Response {
                        req_id,
                        value: None,
                    }
                    .encode(),
                );
            }
        }
    }
}

/// Journal, apply, replicate, invalidate — the primary commit path.
/// May crash at the post-journal ("apply") decision point, in which
/// case the record is durable but unapplied until replay.
fn commit_write(
    inner: &Rc<ClusterInner>,
    idx: usize,
    from_conn: u64,
    w: WriteOp,
    ctx: Option<SpanContext>,
    engine: &Engine,
) {
    let node = &inner.nodes[idx];
    let append_ctx = engine.causal().current().or(ctx);
    let seq = {
        let mut journal = node.journal.borrow_mut();
        let seq = journal.last().map(|(s, _, _)| *s).unwrap_or(0) + 1;
        journal.push((seq, w.clone(), append_ctx));
        seq
    };
    counter(engine, "storage.journal.append");
    mark_journal_append(engine, ctx, seq);
    if crash_fault(inner, idx, "apply", engine) {
        return; // durable but unapplied: journal replay recovers it
    }
    apply_op(&mut node.objects.borrow_mut(), &w);
    node.applied.set(seq);
    replicate_all(inner, seq, &w, ctx, engine);
    invalidate_others(node, from_conn, w.key());
}

/// Record the durability point on the causal graph: the marker sits on
/// the handling dispatch span (fallback: the wire context), keyed by
/// the log sequence number so `TraceQuery::assert_happens_before`
/// can pair it with the matching replication ack.
fn mark_journal_append(engine: &Engine, wire_ctx: Option<SpanContext>, seq: u64) {
    let causal = engine.causal();
    if let Some(c) = causal.current().or(wire_ctx) {
        causal.mark("storage.journal.append", c, seq, engine.now_ns());
    }
}

fn apply_op(objects: &mut BTreeMap<String, Vec<u8>>, op: &WriteOp) {
    match op {
        WriteOp::Put { key, data } => {
            objects.insert(key.clone(), data.clone());
        }
        WriteOp::Delete { key } => {
            objects.remove(key);
        }
    }
}

fn invalidate_others(node: &Node, from_conn: u64, key: &str) {
    let ids: Vec<u64> = node
        .client_conns
        .borrow()
        .iter()
        .copied()
        .filter(|id| *id != from_conn)
        .collect();
    let conns = node.conns.borrow();
    for id in ids {
        if let Some(c) = conns.get(&id) {
            c.send(
                Frame::Invalidate {
                    key: key.to_string(),
                }
                .encode(),
            );
        }
    }
}

fn replicate_all(
    inner: &Rc<ClusterInner>,
    seq: u64,
    op: &WriteOp,
    ctx: Option<SpanContext>,
    engine: &Engine,
) {
    for l in 0..inner.links.len() {
        let link = inner.links[l].clone();
        if link.partitioned.get() {
            continue; // resend catches up after the heal
        }
        if let Some(plan) = &inner.plan {
            match plan.storage_fault(engine, &inner.nodes[link.target].name, "replicate") {
                Some(StorageFault::Crash { restart_after_ns }) => {
                    // The *backup* dies mid-replication.
                    crash_node(inner, link.target, restart_after_ns);
                    continue;
                }
                Some(StorageFault::Partition { heal_after_ns }) => {
                    link.partitioned.set(true);
                    counter(engine, "storage.link.partition");
                    let w = Rc::downgrade(inner);
                    let li = l;
                    engine.complete_async_after(heal_after_ns, move |e| {
                        let Some(inner) = w.upgrade() else { return };
                        inner.links[li].partitioned.set(false);
                        counter(e, "storage.link.heal");
                        resend_link(&inner, li, e);
                        arm_resend(&inner, e);
                    });
                    continue;
                }
                None => {}
            }
        }
        if let Some(conn) = link.conn.get() {
            let frame = Frame::Replicate {
                seq,
                op: op.clone(),
                ctx,
            }
            .encode();
            if inner.net.client_send(conn, frame).is_ok() {
                counter(engine, "storage.replicate.sent");
            }
        }
    }
    arm_resend(inner, engine);
}

/// Retransmit every journal record the backup behind link `l` has not
/// acked yet.
fn resend_link(inner: &Rc<ClusterInner>, l: usize, engine: &Engine) {
    let link = &inner.links[l];
    if link.partitioned.get() {
        return;
    }
    let Some(conn) = link.conn.get() else { return };
    let records: Vec<(u64, WriteOp, Option<SpanContext>)> = inner.nodes[0]
        .journal
        .borrow()
        .iter()
        .filter(|(s, _, _)| *s > link.acked.get())
        .cloned()
        .collect();
    for (seq, op, ctx) in records {
        // A "retry" flow links the retransmission back to the write
        // that journaled this record: the resend timer may have been
        // armed by an unrelated commit, so without this edge the
        // record's eventual ack would be causally orphaned.
        let causal = engine.causal();
        if let (Some(src), Some(dst)) = (ctx, causal.current()) {
            let now = engine.now_ns();
            let fid = causal.flow_start("retry", src, now, 0);
            causal.flow_end("retry", fid, dst, now, 0);
        }
        if inner
            .net
            .client_send(conn, Frame::Replicate { seq, op, ctx }.encode())
            .is_ok()
        {
            counter(engine, "storage.replicate.resent");
        }
    }
}

/// Highest sequence number in the primary journal.
fn primary_seq(inner: &ClusterInner) -> u64 {
    inner.nodes[0]
        .journal
        .borrow()
        .last()
        .map(|(s, _, _)| *s)
        .unwrap_or(0)
}

fn arm_resend(inner: &Rc<ClusterInner>, engine: &Engine) {
    if inner.resend_armed.get() {
        return;
    }
    let target = primary_seq(inner);
    if inner.links.iter().all(|l| l.acked.get() >= target) {
        return;
    }
    inner.resend_armed.set(true);
    let w = Rc::downgrade(inner);
    engine.complete_async_after(inner.cfg.resend_ns, move |e| {
        let Some(inner) = w.upgrade() else { return };
        inner.resend_armed.set(false);
        if !inner.nodes[0].up.get() {
            return; // primary recovery re-dials and re-arms
        }
        for l in 0..inner.links.len() {
            resend_link(&inner, l, e);
        }
        arm_resend(&inner, e);
    });
}

fn handle_replicate(
    inner: &Rc<ClusterInner>,
    idx: usize,
    conn: &ServerConn,
    seq: u64,
    op: WriteOp,
    ctx: Option<SpanContext>,
    engine: &Engine,
) {
    let node = &inner.nodes[idx];
    if seq > node.applied.get() {
        node.holdback.borrow_mut().insert(seq, op);
        let mut applied = node.applied.get();
        loop {
            let next = node.holdback.borrow_mut().remove(&(applied + 1));
            let Some(op) = next else { break };
            applied += 1;
            let append_ctx = engine.causal().current().or(ctx);
            node.journal
                .borrow_mut()
                .push((applied, op.clone(), append_ctx));
            counter(engine, "storage.journal.append");
            mark_journal_append(engine, ctx, applied);
            apply_op(&mut node.objects.borrow_mut(), &op);
            counter(engine, "storage.replicate.applied");
        }
        node.applied.set(applied);
    }
    // Ack the contiguous durable prefix (duplicates just re-ack).
    conn.send(
        Frame::Ack {
            seq: node.applied.get(),
        }
        .encode(),
    );
}

fn crash_node(inner: &Rc<ClusterInner>, idx: usize, restart_after_ns: u64) {
    let node = &inner.nodes[idx];
    if !node.up.get() {
        return;
    }
    node.up.set(false);
    counter(&inner.engine, "storage.node.crash");
    inner.net.unlisten(node.port);
    // Volatile state is gone.
    node.objects.borrow_mut().clear();
    node.holdback.borrow_mut().clear();
    node.applied.set(0);
    node.bufs.borrow_mut().clear();
    // Sever every connection; peers see closes and recover on their own.
    // Close in conn-id order: HashMap iteration order varies per thread,
    // and the close notifications must enqueue deterministically.
    let mut conns: Vec<ServerConn> = node.conns.borrow().values().cloned().collect();
    conns.sort_by_key(|c| c.id().0);
    for c in conns {
        c.close();
    }
    node.conns.borrow_mut().clear();
    node.client_conns.borrow_mut().clear();
    if idx == 0 {
        // The primary's outgoing links die with it; acks are volatile,
        // so recovery resends the whole journal (backups dedupe).
        for link in &inner.links {
            if let Some(c) = link.conn.take() {
                inner.net.client_close(c);
            }
            link.acked.set(0);
        }
    }
    let w = Rc::downgrade(inner);
    inner
        .engine
        .complete_async_after(restart_after_ns, move |e| {
            let Some(inner) = w.upgrade() else { return };
            recover_node(&inner, idx, e);
        });
}

/// Restart a crashed node: replay the journal into a fresh object map
/// (idempotent — the journal is the single source of truth), resume
/// listening, and re-dial replication links if this is the primary.
fn recover_node(inner: &Rc<ClusterInner>, idx: usize, engine: &Engine) {
    let node = &inner.nodes[idx];
    if node.up.get() {
        return;
    }
    {
        let journal = node.journal.borrow();
        let mut objects = node.objects.borrow_mut();
        objects.clear();
        for (_, op, _) in journal.iter() {
            apply_op(&mut objects, op);
        }
        node.applied
            .set(journal.last().map(|(s, _, _)| *s).unwrap_or(0));
        engine
            .metrics()
            .counter("storage.journal.replayed")
            .add(journal.len() as u64);
    }
    node.up.set(true);
    counter(engine, "storage.node.restart");
    listen(inner, idx);
    if idx == 0 {
        for l in 0..inner.links.len() {
            dial_link(inner, l);
        }
    }
}

/// Dial (or re-dial) replication link `l`; retries with backoff until
/// the backup accepts, then retransmits everything unacked.
fn dial_link(inner: &Rc<ClusterInner>, l: usize) {
    let link = &inner.links[l];
    if link.dialing.get() || link.conn.get().is_some() || !inner.nodes[0].up.get() {
        return;
    }
    link.dialing.set(true);
    attempt_dial(inner, l);
}

fn attempt_dial(inner: &Rc<ClusterInner>, l: usize) {
    let link = inner.links[l].clone();
    if !inner.nodes[0].up.get() {
        link.dialing.set(false);
        return;
    }
    let port = inner.nodes[link.target].port;
    let mut buf = FrameBuffer::new();
    let w = Rc::downgrade(inner);
    let wd = w.clone();
    let handlers = doppio_sockets::ClientHandlers {
        on_connect: None,
        on_data: Some(Box::new(move |e, data| {
            let Some(inner) = w.upgrade() else { return };
            for frame in buf.push(&data) {
                if let Frame::Ack { seq } = frame {
                    // The replication ack's arrival at the primary is
                    // the causal effect the journal append must
                    // precede; seq 0 acks carry no durability claim.
                    if seq > 0 {
                        let causal = e.causal();
                        if let Some(c) = causal.current() {
                            causal.mark("storage.repl.ack", c, seq, e.now_ns());
                        }
                    }
                    let link = &inner.links[l];
                    if seq > link.acked.get() {
                        link.acked.set(seq);
                    }
                }
            }
        })),
        on_close: Some(Box::new(move |e| {
            let Some(inner) = wd.upgrade() else { return };
            let link = &inner.links[l];
            link.conn.set(None);
            // Re-dial after backoff (the backup may be restarting).
            link.dialing.set(true);
            let w = Rc::downgrade(&inner);
            e.complete_async_after(inner.cfg.reconnect_ns, move |_e| {
                let Some(inner) = w.upgrade() else { return };
                attempt_dial(&inner, l);
            });
        })),
    };
    match inner.net.connect(port, handlers) {
        Ok(id) => {
            link.conn.set(Some(id));
            link.dialing.set(false);
            resend_link(inner, l, &inner.engine);
            arm_resend(inner, &inner.engine);
        }
        Err(_) => {
            // Backup is down; retry after backoff.
            let w = Rc::downgrade(inner);
            inner
                .engine
                .complete_async_after(inner.cfg.reconnect_ns, move |_e| {
                    let Some(inner) = w.upgrade() else { return };
                    attempt_dial(&inner, l);
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_jsengine::Browser;

    fn put(client: &StorageClient, engine: &Engine, key: &str, data: &[u8]) {
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        client.kv_write(
            engine,
            WriteOp::Put {
                key: key.into(),
                data: data.to_vec(),
            },
            Box::new(move |_, r| {
                r.unwrap();
                d.set(true);
            }),
        );
        engine.run_until_idle();
        assert!(done.get(), "put completed");
    }

    fn get(client: &StorageClient, engine: &Engine, key: &str) -> Option<Vec<u8>> {
        let out = Rc::new(RefCell::new(None));
        let o = out.clone();
        client.kv_get(
            engine,
            key,
            Box::new(move |_, r| *o.borrow_mut() = Some(r.unwrap())),
        );
        engine.run_until_idle();
        let v = out.borrow_mut().take().expect("get completed");
        v
    }

    #[test]
    fn writes_replicate_to_every_backup() {
        let engine = Engine::new(Browser::Chrome);
        let net = Network::new(&engine);
        let cluster = StorageCluster::launch(&engine, &net, StorageConfig::default(), None);
        let client = cluster.client("t0", false);
        put(&client, &engine, "/a", b"alpha");
        put(&client, &engine, "/b", b"beta");
        for idx in 0..3 {
            assert_eq!(cluster.object(idx, "/a").unwrap(), b"alpha", "node{idx}");
            assert_eq!(cluster.journal_len(idx), 2, "node{idx} journal");
            assert_eq!(cluster.applied(idx), 2, "node{idx} applied");
        }
        assert_eq!(get(&client, &engine, "/a").unwrap(), b"alpha");
        assert_eq!(get(&client, &engine, "/missing"), None);
    }

    #[test]
    fn backup_crash_recovers_from_journal_and_resend() {
        let engine = Engine::new(Browser::Chrome);
        let net = Network::new(&engine);
        let cluster = StorageCluster::launch(&engine, &net, StorageConfig::default(), None);
        let client = cluster.client("t0", false);
        put(&client, &engine, "/a", b"1");
        cluster.crash(1, 10_000_000);
        assert!(!cluster.is_up(1));
        // Issue a write while node1 is down (the network delivers it
        // well before the 10 ms restart): it replicates to node2 only,
        // and node1 must catch up via journal replay + resend.
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        client.kv_write(
            &engine,
            WriteOp::Put {
                key: "/b".into(),
                data: b"2".to_vec(),
            },
            Box::new(move |_, r| {
                r.unwrap();
                o.set(true);
            }),
        );
        engine.run_until_idle(); // write, restart, link re-dial, resend
        assert!(ok.get());
        assert_eq!(cluster.object(2, "/b").unwrap(), b"2");
        assert!(cluster.is_up(1));
        assert_eq!(cluster.object(1, "/a").unwrap(), b"1", "journal replay");
        assert_eq!(cluster.object(1, "/b").unwrap(), b"2", "resend catch-up");
        assert_eq!(cluster.applied(1), 2);
    }

    #[test]
    fn primary_crash_loses_nothing_acked() {
        let engine = Engine::new(Browser::Chrome);
        let net = Network::new(&engine);
        let cluster = StorageCluster::launch(&engine, &net, StorageConfig::default(), None);
        let client = cluster.client("t0", false);
        put(&client, &engine, "/a", b"durable");
        cluster.crash(0, 5_000_000);
        assert_eq!(cluster.object_count(0), 0, "volatile state gone");
        engine.run_until_idle();
        assert!(cluster.is_up(0));
        assert_eq!(cluster.object(0, "/a").unwrap(), b"durable");
        // The client reconnects transparently for the next op.
        assert_eq!(get(&client, &engine, "/a").unwrap(), b"durable");
    }

    #[test]
    fn deletes_are_idempotent_under_replay() {
        let engine = Engine::new(Browser::Chrome);
        let net = Network::new(&engine);
        let cluster = StorageCluster::launch(
            &engine,
            &net,
            StorageConfig {
                replicas: 2,
                ..StorageConfig::default()
            },
            None,
        );
        let client = cluster.client("t0", false);
        put(&client, &engine, "/a", b"1");
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        client.kv_write(
            &engine,
            WriteOp::Delete { key: "/a".into() },
            Box::new(move |_, r| {
                r.unwrap();
                d.set(true);
            }),
        );
        engine.run_until_idle();
        assert!(done.get());
        // Two crash/replay cycles: the journal applies cleanly both
        // times and the delete stays deleted.
        for _ in 0..2 {
            cluster.crash(0, 1_000_000);
            engine.run_until_idle();
            assert_eq!(cluster.object(0, "/a"), None);
            assert_eq!(cluster.journal_len(0), 2);
        }
    }
}
