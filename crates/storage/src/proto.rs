//! The replication wire protocol.
//!
//! All storage traffic — client requests, primary→backup replication,
//! acks, and cache invalidation pushes — travels as length-prefixed
//! binary frames over `doppio-sockets` TCP connections. Frames are
//! self-delimiting (`u32` little-endian payload length, then a tagged
//! payload), so a [`FrameBuffer`] can reassemble them from arbitrarily
//! fragmented deliveries.
//!
//! `Request` and `Replicate` frames carry an optional causal
//! [`SpanContext`] so traces cross the storage wire. The context is
//! encoded at a fixed width (a flag byte plus two u64s, zeros when
//! absent), which keeps frame lengths — and therefore simulated
//! transfer delays — independent of whether tracing is enabled.

use doppio_trace::SpanContext;

/// A mutating operation: the unit of journaling and replication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Store `data` at `key` (whole-blob overwrite).
    Put {
        /// Object key.
        key: String,
        /// Full contents.
        data: Vec<u8>,
    },
    /// Remove `key` (missing is fine — deletes are idempotent).
    Delete {
        /// Object key.
        key: String,
    },
}

impl WriteOp {
    /// The key this write touches.
    pub fn key(&self) -> &str {
        match self {
            WriteOp::Put { key, .. } | WriteOp::Delete { key } => key,
        }
    }

    /// Short name for logs.
    pub fn name(&self) -> &'static str {
        match self {
            WriteOp::Put { .. } => "put",
            WriteOp::Delete { .. } => "delete",
        }
    }
}

/// What a client can ask of the primary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOp {
    /// Fetch the blob at `key`.
    Get {
        /// Object key.
        key: String,
    },
    /// A journaled, replicated write.
    Write(WriteOp),
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → primary.
    Request {
        /// Client-chosen correlation id.
        req_id: u64,
        /// The operation.
        op: RequestOp,
        /// Causal context of the issuing request, if traced.
        ctx: Option<SpanContext>,
    },
    /// Primary → client: the answer to `req_id` (`value` is the blob
    /// for gets, `None` for writes and missing keys).
    Response {
        /// Echoed correlation id.
        req_id: u64,
        /// Get result.
        value: Option<Vec<u8>>,
    },
    /// Primary → client push: drop `key` from the cache tier.
    Invalidate {
        /// Invalidated key.
        key: String,
    },
    /// Primary → backup: apply `op` as log sequence number `seq`.
    Replicate {
        /// Log sequence number (1-based, dense).
        seq: u64,
        /// The replicated write.
        op: WriteOp,
        /// Causal context of the originating write, if traced
        /// (`None` on retransmissions).
        ctx: Option<SpanContext>,
    },
    /// Backup → primary: everything up to `seq` is durable here.
    Ack {
        /// Highest contiguous durable sequence number.
        seq: u64,
    },
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        let b = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(b.to_vec())
    }

    fn string(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?).ok()
    }
}

fn put_ctx(buf: &mut Vec<u8>, ctx: &Option<SpanContext>) {
    match ctx {
        Some(c) => {
            buf.push(1);
            put_u64(buf, c.trace_id);
            put_u64(buf, c.span_id);
        }
        None => {
            buf.push(0);
            put_u64(buf, 0);
            put_u64(buf, 0);
        }
    }
}

fn read_ctx(r: &mut Reader) -> Option<Option<SpanContext>> {
    let flag = r.u8()?;
    let trace_id = r.u64()?;
    let span_id = r.u64()?;
    Some((flag == 1).then_some(SpanContext { trace_id, span_id }))
}

fn encode_write(buf: &mut Vec<u8>, op: &WriteOp) {
    match op {
        WriteOp::Put { key, data } => {
            buf.push(1);
            put_bytes(buf, key.as_bytes());
            put_bytes(buf, data);
        }
        WriteOp::Delete { key } => {
            buf.push(2);
            put_bytes(buf, key.as_bytes());
        }
    }
}

fn decode_write(r: &mut Reader) -> Option<WriteOp> {
    match r.u8()? {
        1 => Some(WriteOp::Put {
            key: r.string()?,
            data: r.bytes()?,
        }),
        2 => Some(WriteOp::Delete { key: r.string()? }),
        _ => None,
    }
}

impl Frame {
    /// Serialize to a complete length-prefixed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Frame::Request { req_id, op, ctx } => {
                p.push(1);
                put_u64(&mut p, *req_id);
                put_ctx(&mut p, ctx);
                match op {
                    RequestOp::Get { key } => {
                        p.push(1);
                        put_bytes(&mut p, key.as_bytes());
                    }
                    RequestOp::Write(w) => {
                        p.push(2);
                        encode_write(&mut p, w);
                    }
                }
            }
            Frame::Response { req_id, value } => {
                p.push(2);
                put_u64(&mut p, *req_id);
                match value {
                    Some(v) => {
                        p.push(1);
                        put_bytes(&mut p, v);
                    }
                    None => p.push(0),
                }
            }
            Frame::Invalidate { key } => {
                p.push(3);
                put_bytes(&mut p, key.as_bytes());
            }
            Frame::Replicate { seq, op, ctx } => {
                p.push(4);
                put_u64(&mut p, *seq);
                put_ctx(&mut p, ctx);
                encode_write(&mut p, op);
            }
            Frame::Ack { seq } => {
                p.push(5);
                put_u64(&mut p, *seq);
            }
        }
        let mut out = Vec::with_capacity(4 + p.len());
        put_u32(&mut out, p.len() as u32);
        out.extend_from_slice(&p);
        out
    }

    /// Parse one payload (the bytes after the length prefix).
    pub fn decode_payload(payload: &[u8]) -> Option<Frame> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let frame = match r.u8()? {
            1 => {
                let req_id = r.u64()?;
                let ctx = read_ctx(&mut r)?;
                let op = match r.u8()? {
                    1 => RequestOp::Get { key: r.string()? },
                    2 => RequestOp::Write(decode_write(&mut r)?),
                    _ => return None,
                };
                Frame::Request { req_id, op, ctx }
            }
            2 => {
                let req_id = r.u64()?;
                let value = match r.u8()? {
                    0 => None,
                    1 => Some(r.bytes()?),
                    _ => return None,
                };
                Frame::Response { req_id, value }
            }
            3 => Frame::Invalidate { key: r.string()? },
            4 => {
                let seq = r.u64()?;
                let ctx = read_ctx(&mut r)?;
                Frame::Replicate {
                    seq,
                    op: decode_write(&mut r)?,
                    ctx,
                }
            }
            5 => Frame::Ack { seq: r.u64()? },
            _ => return None,
        };
        (r.pos == payload.len()).then_some(frame)
    }
}

/// Reassembles frames from a fragmented byte stream.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Feed raw bytes; returns every complete frame now available.
    /// Malformed payloads are dropped (the length prefix still bounds
    /// them, so the stream stays in sync).
    pub fn push(&mut self, data: &[u8]) -> Vec<Frame> {
        self.buf.extend_from_slice(data);
        let mut frames = Vec::new();
        loop {
            if self.buf.len() < 4 {
                return frames;
            }
            let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
            if self.buf.len() < 4 + len {
                return frames;
            }
            if let Some(f) = Frame::decode_payload(&self.buf[4..4 + len]) {
                frames.push(f);
            }
            self.buf.drain(..4 + len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Request {
                req_id: 7,
                op: RequestOp::Get { key: "/a".into() },
                ctx: None,
            },
            Frame::Request {
                req_id: 8,
                op: RequestOp::Write(WriteOp::Put {
                    key: "/b".into(),
                    data: b"blob".to_vec(),
                }),
                ctx: Some(SpanContext {
                    trace_id: 0xDEAD,
                    span_id: 0xBEEF,
                }),
            },
            Frame::Response {
                req_id: 7,
                value: Some(b"x".to_vec()),
            },
            Frame::Response {
                req_id: 8,
                value: None,
            },
            Frame::Invalidate { key: "/b".into() },
            Frame::Replicate {
                seq: 3,
                op: WriteOp::Delete { key: "/b".into() },
                ctx: Some(SpanContext {
                    trace_id: 1,
                    span_id: 2,
                }),
            },
            Frame::Replicate {
                seq: 4,
                op: WriteOp::Delete { key: "/c".into() },
                ctx: None,
            },
            Frame::Ack { seq: 3 },
        ]
    }

    /// Enabling tracing must not change wire lengths (and therefore
    /// simulated transfer delays): the context field is fixed-width.
    #[test]
    fn ctx_presence_does_not_change_frame_length() {
        let bare = Frame::Request {
            req_id: 1,
            op: RequestOp::Get { key: "/k".into() },
            ctx: None,
        };
        let traced = Frame::Request {
            req_id: 1,
            op: RequestOp::Get { key: "/k".into() },
            ctx: Some(SpanContext {
                trace_id: u64::MAX,
                span_id: 42,
            }),
        };
        assert_eq!(bare.encode().len(), traced.encode().len());
    }

    #[test]
    fn frames_round_trip() {
        for f in samples() {
            let enc = f.encode();
            let got = Frame::decode_payload(&enc[4..]).unwrap();
            assert_eq!(got, f);
        }
    }

    #[test]
    fn buffer_reassembles_fragmented_stream() {
        let all: Vec<u8> = samples().iter().flat_map(|f| f.encode()).collect();
        // Deliver the stream one byte at a time: worst-case framing.
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for b in &all {
            got.extend(fb.push(std::slice::from_ref(b)));
        }
        assert_eq!(got, samples());
        // And in one burst.
        let mut fb = FrameBuffer::new();
        assert_eq!(fb.push(&all), samples());
    }

    #[test]
    fn malformed_payload_is_skipped_without_desync() {
        let mut stream = vec![2, 0, 0, 0, 99, 99]; // bad tag, valid length
        stream.extend(Frame::Ack { seq: 1 }.encode());
        let mut fb = FrameBuffer::new();
        assert_eq!(fb.push(&stream), vec![Frame::Ack { seq: 1 }]);
    }
}
