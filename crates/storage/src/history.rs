//! Operation-history recording and consistency oracles.
//!
//! Every client operation is recorded with its *invocation* and
//! *completion* virtual timestamps, giving a concurrent history in the
//! Herlihy–Wing sense. Two checkers run over it:
//!
//! - [`HistoryRecorder::check_read_your_writes`] — the per-tenant
//!   session guarantee: a client that completed a write must see it in
//!   every later read of the same key. Clients are assumed to issue
//!   their operations sequentially (the harness awaits each op), and
//!   tenants are assumed to own disjoint key spaces.
//! - [`HistoryRecorder::check_linearizable`] — a per-key Wing–Gong
//!   search for a linearization: a total order of the completed
//!   operations, consistent with real time, in which every read
//!   returns the latest preceding write.
//!
//! The rendered history ([`HistoryRecorder::render`]) is the artifact
//! CI uploads when a check fails, so violations are diagnosable from
//! the transcript alone.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// What an operation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// A get; `observed` on the event records what it returned.
    Read,
    /// A put (`Some(value)`) or delete (`None`).
    Write(Option<String>),
}

/// One recorded operation.
#[derive(Debug, Clone)]
pub struct HistEvent {
    /// Issuing client label.
    pub client: String,
    /// Object key.
    pub key: String,
    /// Read or write.
    pub kind: OpKind,
    /// Virtual time the client issued the op.
    pub invoke_ns: u64,
    /// Virtual time the op completed (`None` while pending).
    pub complete_ns: Option<u64>,
    /// For reads: the value observed (`None` = key absent).
    pub observed: Option<String>,
}

/// A shared, append-only history of client operations.
#[derive(Clone, Default)]
pub struct HistoryRecorder {
    events: Rc<RefCell<Vec<HistEvent>>>,
}

impl HistoryRecorder {
    /// An empty history.
    pub fn new() -> HistoryRecorder {
        HistoryRecorder::default()
    }

    /// Record an invocation; the returned token completes it.
    pub fn begin(&self, client: &str, key: &str, kind: OpKind, now_ns: u64) -> usize {
        let mut ev = self.events.borrow_mut();
        ev.push(HistEvent {
            client: client.to_string(),
            key: key.to_string(),
            kind,
            invoke_ns: now_ns,
            complete_ns: None,
            observed: None,
        });
        ev.len() - 1
    }

    /// Record a completion. `observed` is the value a read returned.
    pub fn complete(&self, token: usize, now_ns: u64, observed: Option<String>) {
        let mut ev = self.events.borrow_mut();
        let e = &mut ev[token];
        e.complete_ns = Some(now_ns);
        e.observed = observed;
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// A clone of the raw events.
    pub fn events(&self) -> Vec<HistEvent> {
        self.events.borrow().clone()
    }

    /// The history as deterministic text (the CI failure artifact).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.events.borrow().iter().enumerate() {
            let (op, val) = match &e.kind {
                OpKind::Read => ("get", e.observed.clone().unwrap_or_else(|| "∅".into())),
                OpKind::Write(Some(v)) => ("put", v.clone()),
                OpKind::Write(None) => ("del", String::new()),
            };
            let complete = e
                .complete_ns
                .map(|t| t.to_string())
                .unwrap_or_else(|| "pending".into());
            out.push_str(&format!(
                "#{i} {} {op} {} [{}..{}] {}\n",
                e.client, e.key, e.invoke_ns, complete, val
            ));
        }
        out
    }

    /// Check the per-client read-your-writes session guarantee.
    ///
    /// Assumes each client issues ops sequentially and clients write
    /// disjoint key sets (the harness's per-tenant layout), so a
    /// client's reads must observe exactly its own latest completed
    /// write to each key. Pending (never-completed) ops are violations
    /// too: the store failed to stay available.
    pub fn check_read_your_writes(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let events = self.events.borrow();
        let mut last: HashMap<(String, String), Option<String>> = HashMap::new();
        for (i, e) in events.iter().enumerate() {
            if e.complete_ns.is_none() {
                return Err(format!(
                    "op #{i} ({} {} {}) never completed",
                    e.client,
                    match e.kind {
                        OpKind::Read => "get",
                        OpKind::Write(Some(_)) => "put",
                        OpKind::Write(None) => "del",
                    },
                    e.key
                ));
            }
            let slot = (e.client.clone(), e.key.clone());
            match &e.kind {
                OpKind::Write(v) => {
                    last.insert(slot, v.clone());
                }
                OpKind::Read => {
                    if let Some(expected) = last.get(&slot) {
                        if &e.observed != expected {
                            return Err(format!(
                                "read-your-writes violated: op #{i} {} get {} observed {:?}, \
                                 expected {:?}",
                                e.client, e.key, e.observed, expected
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Check per-key linearizability over the completed operations.
    pub fn check_linearizable(&self) -> Result<(), String> {
        use std::collections::BTreeMap;
        let events = self.events.borrow();
        let mut per_key: BTreeMap<&str, Vec<&HistEvent>> = BTreeMap::new();
        for e in events.iter() {
            if e.complete_ns.is_some() {
                per_key.entry(&e.key).or_default().push(e);
            }
        }
        for (key, ops) in per_key {
            if ops.len() > 62 {
                return Err(format!("key {key}: history too large to check"));
            }
            if !linearizable(&ops) {
                return Err(format!("key {key}: no linearization exists"));
            }
        }
        Ok(())
    }
}

/// Wing–Gong DFS: is there a total order of `ops` consistent with the
/// invoke/complete partial order in which every read sees the latest
/// preceding write? Initial state: key absent.
fn linearizable(ops: &[&HistEvent]) -> bool {
    fn dfs(
        ops: &[&HistEvent],
        taken: u64,
        state: &Option<String>,
        seen: &mut HashSet<(u64, Option<String>)>,
    ) -> bool {
        if taken.count_ones() as usize == ops.len() {
            return true;
        }
        if !seen.insert((taken, state.clone())) {
            return false;
        }
        // A candidate must be invoked before every untaken op completes
        // (otherwise it would linearize after an op that finished
        // strictly before it started).
        let min_complete = ops
            .iter()
            .enumerate()
            .filter(|(i, _)| taken & (1 << i) == 0)
            .map(|(_, e)| e.complete_ns.unwrap())
            .min()
            .unwrap();
        for (i, e) in ops.iter().enumerate() {
            if taken & (1 << i) != 0 || e.invoke_ns > min_complete {
                continue;
            }
            match &e.kind {
                OpKind::Read => {
                    if &e.observed == state && dfs(ops, taken | (1 << i), state, seen) {
                        return true;
                    }
                }
                OpKind::Write(v) => {
                    if dfs(ops, taken | (1 << i), v, seen) {
                        return true;
                    }
                }
            }
        }
        false
    }
    dfs(ops, 0, &None, &mut HashSet::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    type Ev<'a> = (&'a str, &'a str, OpKind, u64, u64, Option<&'a str>);

    fn rec(events: &[Ev]) -> HistoryRecorder {
        let h = HistoryRecorder::new();
        for (client, key, kind, inv, comp, obs) in events {
            let t = h.begin(client, key, kind.clone(), *inv);
            h.complete(t, *comp, obs.map(|s| s.to_string()));
        }
        h
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = rec(&[
            ("a", "/k", OpKind::Write(Some("1".into())), 0, 10, None),
            ("b", "/k", OpKind::Read, 20, 30, Some("1")),
            ("a", "/k", OpKind::Write(None), 40, 50, None),
            ("b", "/k", OpKind::Read, 60, 70, None),
        ]);
        h.check_linearizable().unwrap();
        h.check_read_your_writes().unwrap();
    }

    #[test]
    fn stale_read_after_acked_write_is_flagged() {
        // The write completed at 10; a read starting at 20 that still
        // sees the old (absent) value has no linearization point.
        let h = rec(&[
            ("a", "/k", OpKind::Write(Some("1".into())), 0, 10, None),
            ("a", "/k", OpKind::Read, 20, 30, None),
        ]);
        assert!(h.check_linearizable().is_err());
        assert!(h.check_read_your_writes().is_err());
    }

    #[test]
    fn concurrent_ops_may_linearize_either_way() {
        // Write and read overlap: the read may see either value.
        for observed in [None, Some("1")] {
            let h = rec(&[
                ("a", "/k", OpKind::Write(Some("1".into())), 0, 100, None),
                ("b", "/k", OpKind::Read, 10, 90, observed),
            ]);
            h.check_linearizable().unwrap();
        }
    }

    #[test]
    fn pending_ops_fail_read_your_writes() {
        let h = HistoryRecorder::new();
        h.begin("a", "/k", OpKind::Read, 0);
        assert!(h
            .check_read_your_writes()
            .unwrap_err()
            .contains("never completed"));
    }

    #[test]
    fn render_is_deterministic_text() {
        let h = rec(&[("a", "/k", OpKind::Write(Some("v".into())), 1, 2, None)]);
        assert_eq!(h.render(), "#0 a put /k [1..2] v\n");
    }
}
