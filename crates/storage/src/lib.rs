//! `doppio-storage` — a simulated replicated object store behind the
//! Doppio FS backend trait (ROADMAP item 4's cloud-scale story).
//!
//! The paper's pluggable-backend file system (§5.1, Figure 2) stops at
//! in-memory / localStorage / blob / cloud stores. This crate supplies
//! the missing tier: a **primary/backup replicated cluster** of
//! storage-node processes wired over `doppio-sockets`, with
//!
//! - a **write-back journal** per node — the durable log a crashed
//!   node replays on restart (replay is idempotent: records at or
//!   below the applied sequence number are no-ops),
//! - **acked replication** — the primary streams `Replicate{seq}`
//!   frames to every backup; `Ack{seq}` cursors drive retransmission
//!   across partitions and backup restarts,
//! - a **client cache tier** — write-through per session, with push
//!   invalidation fanned out to the other sessions on every write,
//!
//! all on the virtual clock, so a seeded run is byte-identical
//! end-to-end. Faults come from
//! [`FaultPlan::storage_fault`](doppio_faults::FaultPlan::storage_fault):
//! replica crashes at each protocol step and partitions on
//! replication links.
//!
//! The crash-consistency harness lives in `tests/storage_consistency.rs`
//! and `examples/storage_consistency.rs` at the workspace root: a
//! [`HistoryRecorder`] records every client op with virtual
//! invoke/complete timestamps, [`check_read_your_writes`]
//! (per-tenant session guarantee) and [`check_linearizable`]
//! (per-key Wing–Gong search) audit the history, and
//! `schedtest::explore` sweeps replication-protocol interleavings —
//! with [`StorageConfig::ack_before_journal`] switching in a real
//! crash-consistency bug for the canary to find, shrink, and replay.
//!
//! ```
//! use doppio_jsengine::{Browser, Engine};
//! use doppio_sockets::Network;
//! use doppio_storage::{StorageCluster, StorageConfig};
//!
//! let engine = Engine::new(Browser::Chrome);
//! let net = Network::new(&engine);
//! let cluster = StorageCluster::launch(&engine, &net, StorageConfig::default(), None);
//! let backend = doppio_storage::replicated(&cluster, "tenant0");
//! // `backend` is a doppio_fs::SharedBackend: mount it, run javac on it...
//! # let _ = backend;
//! ```
//!
//! [`check_read_your_writes`]: HistoryRecorder::check_read_your_writes
//! [`check_linearizable`]: HistoryRecorder::check_linearizable

pub mod client;
pub mod cluster;
pub mod history;
pub mod proto;

pub use client::StorageClient;
pub use cluster::{StorageCluster, StorageConfig};
pub use history::{HistEvent, HistoryRecorder, OpKind};
pub use proto::{Frame, FrameBuffer, RequestOp, WriteOp};

use doppio_fs::backend::SharedBackend;

/// A full FS backend over `cluster` for one client session (cache
/// enabled): the replicated twin of `doppio_fs::backends::dropbox`.
pub fn replicated(cluster: &StorageCluster, label: &str) -> SharedBackend {
    doppio_fs::backends::replicated(cluster.client(label, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_fs::backend::OpenFlags;
    use doppio_jsengine::{Browser, Engine};
    use doppio_sockets::Network;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn fs_backend_round_trips_through_the_cluster() {
        let engine = Engine::new(Browser::Chrome);
        let net = Network::new(&engine);
        let cluster = StorageCluster::launch(&engine, &net, StorageConfig::default(), None);
        let be = replicated(&cluster, "t0");

        let done = Rc::new(RefCell::new(Vec::new()));
        let d = done.clone();
        be.mkdir(&engine, "/d", Box::new(move |_, r| d.borrow_mut().push(r)));
        engine.run_until_idle();
        let d = done.clone();
        be.sync(
            &engine,
            "/d/f",
            b"replicated".to_vec(),
            Box::new(move |_, r| d.borrow_mut().push(r)),
        );
        engine.run_until_idle();
        assert!(done.borrow().iter().all(|r| r.is_ok()));

        let out = Rc::new(RefCell::new(None));
        let o = out.clone();
        be.open(
            &engine,
            "/d/f",
            OpenFlags::parse("r").unwrap(),
            Box::new(move |_, r| *o.borrow_mut() = Some(r)),
        );
        engine.run_until_idle();
        assert_eq!(out.borrow().clone().unwrap().unwrap(), b"replicated");
        // The blob and the persisted index both reached the backups.
        assert_eq!(cluster.object(1, "/d/f").unwrap(), b"replicated");
        assert_eq!(cluster.object(2, "/d/f").unwrap(), b"replicated");
        assert!(cluster
            .object(1, doppio_fs::backends::replicated::INDEX_KEY)
            .is_some());
    }
}
