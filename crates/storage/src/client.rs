//! The client tier: one connection to the primary, a write-through
//! cache with push invalidation, transparent reconnect, and pending-op
//! retry.
//!
//! Every key-value operation is correlated by request id. If the
//! connection drops (a primary crash, typically), pending operations
//! stay queued and are re-sent on the next successful dial — safe
//! because the protocol's writes are idempotent whole-blob puts and
//! deletes, and gets are read-only. The cache holds whole blobs keyed
//! by object key; the primary pushes `Invalidate` frames to every
//! *other* client session on a write, so a session never serves a
//! blob another session has since overwritten (its own writes update
//! the cache write-through).
//!
//! [`StorageClient`] implements
//! [`ObjectStoreClient`](doppio_fs::backends::replicated::ObjectStoreClient),
//! so `doppio_fs::backends::replicated(cluster.client(...))` yields a
//! full FS backend over the cluster.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use doppio_fs::backend::FsCallback;
use doppio_fs::backends::replicated::ObjectStoreClient;
use doppio_jsengine::Engine;
use doppio_sockets::{ClientHandlers, ConnId, Network};
use doppio_trace::SpanContext;

use crate::history::{HistoryRecorder, OpKind};
use crate::proto::{Frame, FrameBuffer, RequestOp, WriteOp};

/// Virtual latency of a cache hit (no network round trip).
const CACHE_HIT_NS: u64 = 2_000;

/// Backoff between reconnect attempts.
const RECONNECT_NS: u64 = 2_000_000;

/// Completion callback for a raw request: `None` means not-found (get)
/// or, for writes, is ignored.
type DoneFn = Box<dyn FnOnce(&Engine, Option<Vec<u8>>)>;

struct Pending {
    op: RequestOp,
    done: DoneFn,
    sent_once: bool,
    /// Causal bookkeeping for the op, if tracing is on.
    trace: Option<OpTrace>,
    /// The op was re-sent after a connection loss; its client span is
    /// categorized `retry.backoff` so the reconnect window is named on
    /// the critical path.
    retried: bool,
}

/// Causal identity of one client operation: the span frames are
/// stamped with, who opened the request window, and when.
struct OpTrace {
    ctx: SpanContext,
    parent: u64,
    /// This op minted the trace (top-level ingress) and must close it.
    owns_request: bool,
    begin_ns: u64,
}

/// Start causal tracking for one op: nested under the ambient context
/// when there is one, otherwise a fresh request of class `class`.
fn begin_op(engine: &Engine, class: &'static str) -> Option<OpTrace> {
    let causal = engine.causal();
    if !causal.enabled() {
        return None;
    }
    let begin_ns = engine.now_ns();
    Some(match causal.current() {
        Some(amb) => OpTrace {
            ctx: causal.child(amb),
            parent: amb.span_id,
            owns_request: false,
            begin_ns,
        },
        None => OpTrace {
            ctx: causal.begin_request(class, begin_ns),
            parent: 0,
            owns_request: true,
            begin_ns,
        },
    })
}

/// Close causal tracking: emit the op's client-side span (categorized
/// by whether a retry happened) and the request end if this op opened
/// the window.
fn finish_op(engine: &Engine, trace: &Option<OpTrace>, retried: bool) {
    let Some(t) = trace else { return };
    let causal = engine.causal();
    let category: &'static str = if retried {
        "retry.backoff"
    } else {
        "storage.client"
    };
    causal.span(category, t.ctx, t.parent, t.begin_ns, t.begin_ns, 0, None);
    if t.owns_request {
        causal.end_request(t.ctx, engine.now_ns());
    }
}

struct ClientState {
    conn: Option<ConnId>,
    connecting: bool,
    next_req: u64,
    pending: BTreeMap<u64, Pending>,
    cache: BTreeMap<String, Option<Vec<u8>>>,
}

struct ClientInner {
    net: Network,
    port: u16,
    label: String,
    cache_enabled: bool,
    state: RefCell<ClientState>,
    history: RefCell<Option<HistoryRecorder>>,
    // Keeps the simulated world this session talks to (the cluster's
    // nodes, timers, listeners) alive: server state is reachable only
    // through weak refs from its own timers, so a session must anchor
    // it or the store vanishes when the caller drops its handle.
    world: RefCell<Option<Rc<dyn std::any::Any>>>,
}

/// A client session against the cluster's primary.
#[derive(Clone)]
pub struct StorageClient {
    inner: Rc<ClientInner>,
}

fn counter(engine: &Engine, name: &str) {
    engine.metrics().counter(name).inc();
}

impl StorageClient {
    /// A fresh session dialing `port` lazily on first use.
    pub fn new(net: &Network, port: u16, label: &str, cache: bool) -> StorageClient {
        StorageClient {
            inner: Rc::new(ClientInner {
                net: net.clone(),
                port,
                label: label.to_string(),
                cache_enabled: cache,
                state: RefCell::new(ClientState {
                    conn: None,
                    connecting: false,
                    next_req: 1,
                    pending: BTreeMap::new(),
                    cache: BTreeMap::new(),
                }),
                history: RefCell::new(None),
                world: RefCell::new(None),
            }),
        }
    }

    /// Anchor `world` to this session's lifetime.
    pub(crate) fn hold_world(&self, world: Rc<dyn std::any::Any>) {
        *self.inner.world.borrow_mut() = Some(world);
    }

    /// Record every operation of this session into `recorder`.
    pub fn set_history(&self, recorder: HistoryRecorder) {
        *self.inner.history.borrow_mut() = Some(recorder);
    }

    /// This session's label (the tenant name in histories).
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// Fetch the blob at `key` (`Ok(None)` if absent).
    pub fn kv_get(&self, engine: &Engine, key: &str, cb: FsCallback<Option<Vec<u8>>>) {
        let hist = self.begin_history(engine, key, OpKind::Read);
        let trace = begin_op(engine, "storage:get");
        let inner = self.inner.clone();
        if self.inner.cache_enabled {
            let cached = self.inner.state.borrow().cache.get(key).cloned();
            if let Some(value) = cached {
                counter(engine, "storage.cache.hit");
                let ctx = trace.as_ref().map(|t| t.ctx);
                engine.with_causal_ctx(ctx, || {
                    engine.complete_async_after(CACHE_HIT_NS, move |e| {
                        finish_op(e, &trace, false);
                        complete_history(&inner, hist, e, observed(&value));
                        cb(e, Ok(value));
                    });
                });
                return;
            }
            counter(engine, "storage.cache.miss");
        }
        let fill_key = key.to_string();
        submit(
            &self.inner,
            engine,
            RequestOp::Get {
                key: key.to_string(),
            },
            trace,
            Box::new(move |e, value| {
                if inner.cache_enabled {
                    inner
                        .state
                        .borrow_mut()
                        .cache
                        .insert(fill_key, value.clone());
                }
                complete_history(&inner, hist, e, observed(&value));
                cb(e, Ok(value));
            }),
        );
    }

    /// Execute a journaled, replicated write.
    pub fn kv_write(&self, engine: &Engine, op: WriteOp, cb: FsCallback<()>) {
        let kind = match &op {
            WriteOp::Put { data, .. } => {
                OpKind::Write(Some(String::from_utf8_lossy(data).into_owned()))
            }
            WriteOp::Delete { .. } => OpKind::Write(None),
        };
        let hist = self.begin_history(engine, op.key(), kind);
        let trace = begin_op(
            engine,
            match &op {
                WriteOp::Put { .. } => "storage:put",
                WriteOp::Delete { .. } => "storage:delete",
            },
        );
        if self.inner.cache_enabled {
            // Write-through: this session always sees its own writes.
            let entry = match &op {
                WriteOp::Put { key, data } => (key.clone(), Some(data.clone())),
                WriteOp::Delete { key } => (key.clone(), None),
            };
            self.inner.state.borrow_mut().cache.insert(entry.0, entry.1);
        }
        let inner = self.inner.clone();
        submit(
            &self.inner,
            engine,
            RequestOp::Write(op),
            trace,
            Box::new(move |e, _| {
                complete_history(&inner, hist, e, None);
                cb(e, Ok(()));
            }),
        );
    }

    fn begin_history(&self, engine: &Engine, key: &str, kind: OpKind) -> Option<usize> {
        self.inner
            .history
            .borrow()
            .as_ref()
            .map(|h| h.begin(&self.inner.label, key, kind, engine.now_ns()))
    }
}

fn observed(value: &Option<Vec<u8>>) -> Option<String> {
    value
        .as_ref()
        .map(|v| String::from_utf8_lossy(v).into_owned())
}

fn complete_history(
    inner: &Rc<ClientInner>,
    token: Option<usize>,
    engine: &Engine,
    obs: Option<String>,
) {
    if let (Some(t), Some(h)) = (token, inner.history.borrow().as_ref()) {
        h.complete(t, engine.now_ns(), obs);
    }
}

fn submit(
    inner: &Rc<ClientInner>,
    engine: &Engine,
    op: RequestOp,
    trace: Option<OpTrace>,
    done: DoneFn,
) {
    let ctx = trace.as_ref().map(|t| t.ctx);
    let (req_id, frame) = {
        let mut st = inner.state.borrow_mut();
        let req_id = st.next_req;
        st.next_req += 1;
        st.pending.insert(
            req_id,
            Pending {
                op: op.clone(),
                done,
                sent_once: false,
                trace,
                retried: false,
            },
        );
        (req_id, Frame::Request { req_id, op, ctx }.encode())
    };
    let conn = inner.state.borrow().conn;
    match conn {
        Some(id) => {
            // Install the op's context so the fabric's "net" flow (and
            // the delivery dispatch) chain from the op, not the caller.
            let sent = engine.with_causal_ctx(ctx, || inner.net.client_send(id, frame));
            if sent.is_ok() {
                inner
                    .state
                    .borrow_mut()
                    .pending
                    .get_mut(&req_id)
                    .unwrap()
                    .sent_once = true;
            } else {
                // Raced a close we have not been told about yet.
                handle_close(inner, engine, id);
            }
        }
        None => ensure_connected(inner, engine),
    }
}

fn ensure_connected(inner: &Rc<ClientInner>, engine: &Engine) {
    {
        let st = inner.state.borrow();
        if st.conn.is_some() || st.connecting {
            return;
        }
    }
    inner.state.borrow_mut().connecting = true;
    attempt_connect(inner, engine);
}

fn attempt_connect(inner: &Rc<ClientInner>, engine: &Engine) {
    let my_conn: Rc<std::cell::Cell<Option<ConnId>>> = Rc::new(std::cell::Cell::new(None));
    let mut buf = FrameBuffer::new();
    let w = Rc::downgrade(inner);
    let wd = w.clone();
    let mc = my_conn.clone();
    let handlers = ClientHandlers {
        on_connect: None,
        on_data: Some(Box::new(move |e, data| {
            let Some(inner) = w.upgrade() else { return };
            for frame in buf.push(&data) {
                handle_frame(&inner, e, frame);
            }
        })),
        on_close: Some(Box::new(move |e| {
            let Some(inner) = wd.upgrade() else { return };
            if let Some(id) = mc.get() {
                handle_close(&inner, e, id);
            }
        })),
    };
    match inner.net.connect(inner.port, handlers) {
        Ok(id) => {
            my_conn.set(Some(id));
            {
                let mut st = inner.state.borrow_mut();
                st.conn = Some(id);
                st.connecting = false;
            }
            flush_pending(inner, engine, id);
        }
        Err(_) => {
            // Primary down (or restarting): retry with backoff. The
            // `connecting` flag stays up so callers do not double-dial.
            counter(engine, "storage.client.refused");
            let w = Rc::downgrade(inner);
            engine.complete_async_after(RECONNECT_NS, move |e| {
                let Some(inner) = w.upgrade() else { return };
                attempt_connect(&inner, e);
            });
        }
    }
}

/// Re-send every pending request on a (re)established connection.
/// Safe: gets are read-only, writes are idempotent whole-blob ops.
fn flush_pending(inner: &Rc<ClientInner>, engine: &Engine, conn: ConnId) {
    let frames: Vec<(u64, Vec<u8>, bool, Option<SpanContext>)> = {
        let st = inner.state.borrow();
        st.pending
            .iter()
            .map(|(id, p)| {
                let ctx = p.trace.as_ref().map(|t| t.ctx);
                (
                    *id,
                    Frame::Request {
                        req_id: *id,
                        op: p.op.clone(),
                        ctx,
                    }
                    .encode(),
                    p.sent_once,
                    ctx,
                )
            })
            .collect()
    };
    for (req_id, frame, was_sent, ctx) in frames {
        // Re-enter the op's own trace: the retried send (and everything
        // downstream of it) must stay on the op's causal path.
        let sent = engine.with_causal_ctx(ctx, || inner.net.client_send(conn, frame));
        if sent.is_err() {
            return; // closed again already; the close handler re-dials
        }
        if was_sent {
            counter(engine, "storage.client.retry");
        }
        if let Some(p) = inner.state.borrow_mut().pending.get_mut(&req_id) {
            p.sent_once = true;
            if was_sent {
                p.retried = true;
            }
        }
    }
}

fn handle_frame(inner: &Rc<ClientInner>, engine: &Engine, frame: Frame) {
    match frame {
        Frame::Response { req_id, value } => {
            let Some(p) = inner.state.borrow_mut().pending.remove(&req_id) else {
                return; // duplicate answer after a retry; ignore
            };
            finish_op(engine, &p.trace, p.retried);
            (p.done)(engine, value);
        }
        Frame::Invalidate { key } if inner.cache_enabled => {
            counter(engine, "storage.cache.invalidate");
            inner.state.borrow_mut().cache.remove(&key);
        }
        _ => {}
    }
}

fn handle_close(inner: &Rc<ClientInner>, engine: &Engine, id: ConnId) {
    {
        let mut st = inner.state.borrow_mut();
        if st.conn != Some(id) {
            return; // stale notification for a superseded connection
        }
        st.conn = None;
        if st.pending.is_empty() {
            // Nothing outstanding: reconnect lazily on the next op.
            st.connecting = false;
            counter(engine, "storage.client.reconnect");
            return;
        }
        st.connecting = true;
    }
    counter(engine, "storage.client.reconnect");
    let w = Rc::downgrade(inner);
    engine.complete_async_after(RECONNECT_NS, move |e| {
        let Some(inner) = w.upgrade() else { return };
        attempt_connect(&inner, e);
    });
}

impl ObjectStoreClient for StorageClient {
    fn name(&self) -> &'static str {
        "Replicated"
    }

    fn get(&self, engine: &Engine, key: &str, cb: FsCallback<Option<Vec<u8>>>) {
        self.kv_get(engine, key, cb);
    }

    fn put(&self, engine: &Engine, key: &str, data: Vec<u8>, cb: FsCallback<()>) {
        self.kv_write(
            engine,
            WriteOp::Put {
                key: key.to_string(),
                data,
            },
            cb,
        );
    }

    fn delete(&self, engine: &Engine, key: &str, cb: FsCallback<()>) {
        self.kv_write(
            engine,
            WriteOp::Delete {
                key: key.to_string(),
            },
            cb,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{StorageCluster, StorageConfig};
    use doppio_jsengine::Browser;
    use std::cell::Cell;

    fn put(c: &StorageClient, e: &Engine, key: &str, data: &[u8]) {
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        c.kv_write(
            e,
            WriteOp::Put {
                key: key.into(),
                data: data.to_vec(),
            },
            Box::new(move |_, r| {
                r.unwrap();
                o.set(true);
            }),
        );
        e.run_until_idle();
        assert!(ok.get());
    }

    fn get(c: &StorageClient, e: &Engine, key: &str) -> Option<Vec<u8>> {
        let out = Rc::new(RefCell::new(None));
        let o = out.clone();
        c.kv_get(
            e,
            key,
            Box::new(move |_, r| *o.borrow_mut() = Some(r.unwrap())),
        );
        e.run_until_idle();
        let v = out.borrow_mut().take().unwrap();
        v
    }

    #[test]
    fn cache_serves_repeat_reads_and_invalidation_evicts() {
        let engine = Engine::new(Browser::Chrome);
        let net = Network::new(&engine);
        let cluster = StorageCluster::launch(
            &engine,
            &net,
            StorageConfig {
                replicas: 1,
                ..StorageConfig::default()
            },
            None,
        );
        let a = cluster.client("a", true);
        let b = cluster.client("b", true);
        put(&a, &engine, "/k", b"v1");
        // a's write-through cache serves the read; miss count stays 0.
        assert_eq!(get(&a, &engine, "/k").unwrap(), b"v1");
        assert!(engine.metrics().counter("storage.cache.hit").get() >= 1);
        // b misses, fills, then hits.
        assert_eq!(get(&b, &engine, "/k").unwrap(), b"v1");
        assert_eq!(get(&b, &engine, "/k").unwrap(), b"v1");
        // a overwrites; the push invalidation must evict b's entry.
        put(&a, &engine, "/k", b"v2");
        assert_eq!(
            get(&b, &engine, "/k").unwrap(),
            b"v2",
            "stale cache served after invalidation"
        );
        assert!(engine.metrics().counter("storage.cache.invalidate").get() >= 1);
    }

    #[test]
    fn pending_ops_survive_a_primary_crash() {
        let engine = Engine::new(Browser::Chrome);
        let net = Network::new(&engine);
        let cluster = StorageCluster::launch(
            &engine,
            &net,
            StorageConfig {
                replicas: 2,
                ..StorageConfig::default()
            },
            None,
        );
        let c = cluster.client("t", false);
        put(&c, &engine, "/k", b"v");
        // Crash the primary, then immediately issue a get: the op rides
        // out the reconnect loop and completes after recovery.
        cluster.crash(0, 8_000_000);
        let out = Rc::new(RefCell::new(None));
        let o = out.clone();
        c.kv_get(
            &engine,
            "/k",
            Box::new(move |_, r| *o.borrow_mut() = Some(r.unwrap())),
        );
        engine.run_until_idle();
        assert_eq!(out.borrow().clone().unwrap().unwrap(), b"v");
        assert!(engine.metrics().counter("storage.client.reconnect").get() >= 1);
    }
}
