//! The compiler must never panic: any input yields Ok or a proper
//! CompileError. (Fixed-seed SplitMix64 fuzz loops; the build is
//! offline, so no proptest.)

use doppio_prng::SplitMix64;

/// A uniformly random Unicode scalar value (surrogates excluded).
fn random_char(rng: &mut SplitMix64) -> char {
    loop {
        if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
            return c;
        }
    }
}

#[test]
fn lexer_and_parser_never_panic() {
    let mut rng = SplitMix64::new(0x1e8e);
    for _ in 0..256 {
        let len = rng.gen_range(0usize..200);
        let src: String = (0..len).map(|_| random_char(&mut rng)).collect();
        let _ = doppio_minijava::compile(&src);
    }
}

#[test]
fn almost_java_never_panics() {
    const TOKENS: [&str; 21] = [
        "class", "{", "}", "(", ")", ";", "int", "static", "return", "if", "while", "=", "+",
        "Main", "x", "42", "\"s\"", "new", "[", "]", ".",
    ];
    let mut rng = SplitMix64::new(0xa1a);
    for _ in 0..256 {
        let len = rng.gen_range(0usize..60);
        let src = (0..len)
            .map(|_| TOKENS[rng.gen_range(0..TOKENS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = doppio_minijava::compile(&src);
    }
}
