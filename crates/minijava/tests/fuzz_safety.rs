//! The compiler must never panic: any input yields Ok or a proper
//! CompileError.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn lexer_and_parser_never_panic(src in "\\PC*") {
        let _ = doppio_minijava::compile(&src);
    }

    #[test]
    fn almost_java_never_panics(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("class".to_string()), Just("{".to_string()), Just("}".to_string()),
                Just("(".to_string()), Just(")".to_string()), Just(";".to_string()),
                Just("int".to_string()), Just("static".to_string()), Just("return".to_string()),
                Just("if".to_string()), Just("while".to_string()), Just("=".to_string()),
                Just("+".to_string()), Just("Main".to_string()), Just("x".to_string()),
                Just("42".to_string()), Just("\"s\"".to_string()), Just("new".to_string()),
                Just("[".to_string()), Just("]".to_string()), Just(".".to_string()),
            ],
            0..60,
        )
    ) {
        let src = tokens.join(" ");
        let _ = doppio_minijava::compile(&src);
    }
}
