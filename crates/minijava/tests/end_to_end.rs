//! End-to-end tests: MiniJava source → class files → DoppioJVM in the
//! simulated browser → observed output.

use doppio_fs::{backends, FileSystem};
use doppio_jsengine::{Browser, Engine};
use doppio_jvm::{fsutil, Jvm};
use doppio_minijava::compile_to_bytes;

/// Compile, mount, run `Main.main`, and return stdout.
fn run(src: &str) -> String {
    run_full(src).0
}

fn run_full(src: &str) -> (String, String, Option<String>) {
    let classes = compile_to_bytes(src).unwrap_or_else(|e| panic!("compile error: {e}"));
    let engine = Engine::new(Browser::Chrome);
    let fs = FileSystem::new(&engine, backends::in_memory(&engine));
    fsutil::mount_class_files(&engine, &fs, "/classes", &classes);
    let jvm = Jvm::new(&engine, fs);
    jvm.launch("Main", &[]);
    let r = jvm.run_to_completion().unwrap();
    (r.stdout, r.stderr, r.uncaught)
}

#[test]
fn hello_world() {
    let out = run(r#"
        class Main {
            static void main(String[] args) {
                System.out.println("Hello, MiniJava!");
            }
        }
    "#);
    assert_eq!(out, "Hello, MiniJava!\n");
}

#[test]
fn arithmetic_and_precedence() {
    let out = run(r#"
        class Main {
            static void main(String[] args) {
                System.out.println(2 + 3 * 4);
                System.out.println((2 + 3) * 4);
                System.out.println(17 / 5);
                System.out.println(17 % 5);
                System.out.println(-7 / 2);
                System.out.println(1 << 10);
                System.out.println(-16 >> 2);
                System.out.println(-16 >>> 28);
                System.out.println((6 & 3) | (8 ^ 1));
            }
        }
    "#);
    assert_eq!(out, "14\n20\n3\n2\n-3\n1024\n-4\n15\n11\n");
}

#[test]
fn long_and_double_arithmetic() {
    let out = run(r#"
        class Main {
            static void main(String[] args) {
                long big = 1L << 40;
                long r = big * 3L + 7L;
                System.out.println(r);
                double d = 1.5 * 4.0;
                System.out.println(d);
                System.out.println(Math.sqrt(144.0));
                int truncated = (int) 9.99;
                System.out.println(truncated);
                long fromInt = 41;
                System.out.println(fromInt + 1L);
            }
        }
    "#);
    assert_eq!(out, format!("{}\n6.0\n12.0\n9\n42\n", (1i64 << 40) * 3 + 7));
}

#[test]
fn control_flow_loops() {
    let out = run(r#"
        class Main {
            static void main(String[] args) {
                int acc = 0;
                for (int i = 0; i < 10; i++) {
                    if (i % 2 == 0) { continue; }
                    if (i == 9) { break; }
                    acc += i;
                }
                System.out.println(acc);
                int n = 0;
                while (n < 100) { n = n * 2 + 1; }
                System.out.println(n);
            }
        }
    "#);
    // odd i in 1..9 excluding 9: 1+3+5+7 = 16; n: 1,3,7,15,31,63,127
    assert_eq!(out, "16\n127\n");
}

#[test]
fn objects_inheritance_and_dispatch() {
    let out = run(r#"
        class Shape {
            String name;
            Shape(String n) { this.name = n; }
            double area() { return 0.0; }
            String describe() { return name + ": " + area(); }
        }
        class Square extends Shape {
            double side;
            Square(double s) { super("square"); this.side = s; }
            double area() { return side * side; }
        }
        class Circle extends Shape {
            double r;
            Circle(double r) { super("circle"); this.r = r; }
            double area() { return 3.0 * r * r; }
        }
        class Main {
            static void main(String[] args) {
                Shape[] shapes = new Shape[2];
                shapes[0] = new Square(4.0);
                shapes[1] = new Circle(2.0);
                for (int i = 0; i < shapes.length; i++) {
                    System.out.println(shapes[i].describe());
                }
            }
        }
    "#);
    assert_eq!(out, "square: 16.0\ncircle: 12.0\n");
}

#[test]
fn static_fields_and_initializers() {
    let out = run(r#"
        class Counter {
            static int count = 5;
            static int next() { count++; return count; }
        }
        class Main {
            static void main(String[] args) {
                System.out.println(Counter.next());
                System.out.println(Counter.next());
                System.out.println(Counter.count);
            }
        }
    "#);
    assert_eq!(out, "6\n7\n7\n");
}

#[test]
fn string_operations() {
    let out = run(r#"
        class Main {
            static void main(String[] args) {
                String s = "hello" + " " + "world";
                System.out.println(s.length());
                System.out.println(s.substring(0, 5));
                System.out.println(s.indexOf("world"));
                System.out.println(s.charAt(4));
                System.out.println("n=" + 42 + ", ok=" + true + ", pi=" + 3.5);
                System.out.println(s.equals("hello world"));
                System.out.println("abc".compareTo("abd") < 0);
            }
        }
    "#);
    assert_eq!(out, "11\nhello\n6\no\nn=42, ok=true, pi=3.5\ntrue\ntrue\n");
}

#[test]
fn arrays_and_sorting() {
    let out = run(r#"
        class Main {
            static void main(String[] args) {
                int[] a = new int[6];
                a[0] = 5; a[1] = 3; a[2] = 9; a[3] = 1; a[4] = 7; a[5] = 2;
                // bubble sort
                for (int i = 0; i < a.length; i++) {
                    for (int j = 0; j + 1 < a.length - i; j++) {
                        if (a[j] > a[j + 1]) {
                            int t = a[j]; a[j] = a[j + 1]; a[j + 1] = t;
                        }
                    }
                }
                String s = "";
                for (int i = 0; i < a.length; i++) { s = s + a[i] + " "; }
                System.out.println(s);
            }
        }
    "#);
    assert_eq!(out, "1 2 3 5 7 9 \n");
}

#[test]
fn recursion() {
    let out = run(r#"
        class Main {
            static int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            static void main(String[] args) {
                System.out.println(fib(15));
            }
        }
    "#);
    assert_eq!(out, "610\n");
}

#[test]
fn char_and_byte_handling() {
    let out = run(r#"
        class Main {
            static void main(String[] args) {
                char c = 'A';
                c = (char) (c + 2);
                System.out.println(c);
                byte[] bytes = new byte[3];
                bytes[0] = (byte) 72; bytes[1] = (byte) 105; bytes[2] = (byte) 33;
                int sum = 0;
                for (int i = 0; i < bytes.length; i++) { sum += bytes[i]; }
                System.out.println(sum);
            }
        }
    "#);
    assert_eq!(out, "C\n210\n");
}

#[test]
fn boolean_logic_short_circuits() {
    let out = run(r#"
        class Main {
            static int calls = 0;
            static boolean bump() { calls++; return true; }
            static void main(String[] args) {
                boolean a = false && bump();
                boolean b = true || bump();
                System.out.println(calls);
                System.out.println(a);
                System.out.println(b);
                System.out.println(!a && b);
            }
        }
    "#);
    assert_eq!(out, "0\nfalse\ntrue\ntrue\n");
}

#[test]
fn threads_from_minijava() {
    let out = run(r#"
        class Adder extends Thread {
            static int total = 0;
            void run() {
                for (int i = 0; i < 100; i++) { Adder.bump(); }
            }
            static void bump() { total++; }
        }
        class Main {
            static void main(String[] args) {
                Adder a = new Adder();
                Adder b = new Adder();
                a.start();
                b.start();
                a.join();
                b.join();
                System.out.println(Adder.total);
            }
        }
    "#);
    assert_eq!(out, "200\n");
}

#[test]
fn file_io_through_doppio_fs() {
    let out = run(r#"
        class Main {
            static void main(String[] args) {
                byte[] data = new byte[4];
                data[0] = (byte) 68; data[1] = (byte) 97; data[2] = (byte) 116; data[3] = (byte) 97;
                FileSystem.writeFileBytes("/classes/blob.bin", data);
                System.out.println(FileSystem.exists("/classes/blob.bin"));
                System.out.println(FileSystem.fileSize("/classes/blob.bin"));
                byte[] back = FileSystem.readFileBytes("/classes/blob.bin");
                int sum = 0;
                for (int i = 0; i < back.length; i++) { sum += back[i]; }
                System.out.println(sum);
            }
        }
    "#);
    assert_eq!(out, "true\n4\n378\n"); // 68+97+116+97
}

#[test]
fn uncaught_errors_surface() {
    let (_, stderr, uncaught) = run_full(
        r#"
        class Main {
            static void main(String[] args) {
                int[] a = new int[2];
                System.out.println(a[5]);
            }
        }
    "#,
    );
    assert!(uncaught
        .as_deref()
        .unwrap_or_default()
        .contains("ArrayIndexOutOfBoundsException"));
    assert!(stderr.contains("Exception in thread"));
}

#[test]
fn compile_errors_are_reported_with_lines() {
    let err = doppio_minijava::compile("class Main { static void main(String[] args) { x = 1; } }")
        .unwrap_err();
    assert!(err.to_string().contains("unknown variable x"));

    let err =
        doppio_minijava::compile("class Main { static int f() { return \"s\"; } }").unwrap_err();
    assert!(err.to_string().contains("assign"));
}

#[test]
fn stdout_matches_reference_for_nqueens_style_search() {
    // A miniature of the Kawa nqueens workload shape.
    let out = run(r#"
        class Main {
            static int solve(int n, int row, int cols, int diag1, int diag2) {
                if (row == n) { return 1; }
                int count = 0;
                for (int c = 0; c < n; c++) {
                    int colBit = 1 << c;
                    int d1 = 1 << (row + c);
                    int d2 = 1 << (row - c + n - 1);
                    if ((cols & colBit) == 0 && (diag1 & d1) == 0 && (diag2 & d2) == 0) {
                        count += solve(n, row + 1, cols | colBit, diag1 | d1, diag2 | d2);
                    }
                }
                return count;
            }
            static void main(String[] args) {
                System.out.println(solve(6, 0, 0, 0, 0));
                System.out.println(solve(8, 0, 0, 0, 0));
            }
        }
    "#);
    assert_eq!(out, "4\n92\n");
}

#[test]
fn wait_notify_producer_consumer() {
    // Object.wait/notifyAll + synchronized methods (§6.2): a classic
    // bounded-buffer handoff between two JVM threads.
    let out = run(r#"
        class Box {
            int value;
            boolean full;
            Box() { this.full = false; }
            synchronized void put(int v) {
                while (full) { this.wait(); }
                value = v;
                full = true;
                this.notifyAll();
            }
            synchronized int take() {
                while (!full) { this.wait(); }
                full = false;
                this.notifyAll();
                return value;
            }
        }
        class Producer extends Thread {
            Box box;
            Producer(Box b) { this.box = b; }
            void run() {
                for (int i = 1; i <= 10; i++) { box.put(i); }
            }
        }
        class Main {
            static void main(String[] args) {
                Box box = new Box();
                Producer p = new Producer(box);
                p.start();
                int sum = 0;
                for (int i = 0; i < 10; i++) { sum += box.take(); }
                p.join();
                System.out.println("sum=" + sum);
            }
        }
    "#);
    assert_eq!(out, "sum=55\n");
}

#[test]
fn compound_assignments_on_fields_and_arrays() {
    let out = run(r#"
        class Acc {
            int total;
            Acc() { this.total = 10; }
            void grow(int d) { total += d; total *= 2; }
        }
        class Main {
            static int counter = 0;
            static void main(String[] args) {
                Acc a = new Acc();
                a.grow(5);
                System.out.println(a.total);
                int[] xs = new int[3];
                xs[1] += 7;
                xs[1] *= 3;
                xs[2] -= 4;
                System.out.println(xs[1]);
                System.out.println(xs[2]);
                counter += 1;
                counter += 2;
                System.out.println(counter);
                int i = 5;
                i--;
                i--;
                System.out.println(i);
            }
        }
    "#);
    assert_eq!(out, "30\n21\n-4\n3\n3\n");
}

#[test]
fn doubles_flow_through_fields_params_and_arrays() {
    let out = run(r#"
        class Main {
            static double avg(double[] xs) {
                double sum = 0.0;
                for (int i = 0; i < xs.length; i++) { sum += xs[i]; }
                return sum / xs.length;
            }
            static void main(String[] args) {
                double[] xs = new double[4];
                xs[0] = 1.5; xs[1] = 2.5; xs[2] = 3.0; xs[3] = 5.0;
                System.out.println(avg(xs));
                System.out.println((int) avg(xs));
                long asLong = (long) (avg(xs) * 100.0);
                System.out.println(asLong);
            }
        }
    "#);
    assert_eq!(out, "3.0\n3\n300\n");
}

#[test]
fn sleep_interleaves_threads_in_time_order() {
    // Thread.sleep rides real (virtual) timers: the longer sleeper
    // prints later, regardless of spawn order.
    let out = run(r#"
        class Napper extends Thread {
            long ms;
            String tag;
            Napper(long ms, String tag) { this.ms = ms; this.tag = tag; }
            void run() {
                Thread.sleep(ms);
                System.out.println(tag);
            }
        }
        class Main {
            static void main(String[] args) {
                Napper slow = new Napper(80L, "slow");
                Napper fast = new Napper(10L, "fast");
                slow.start();
                fast.start();
                slow.join();
                fast.join();
                System.out.println("joined");
            }
        }
    "#);
    assert_eq!(out, "fast\nslow\njoined\n");
}
