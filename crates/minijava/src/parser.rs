//! Recursive-descent parser for MiniJava.

use crate::ast::*;
use crate::error::CompileError;
use crate::token::{Spanned, Tok};

/// Parse a compilation unit.
pub fn parse(tokens: Vec<Spanned>) -> Result<Program, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut classes = Vec::new();
    while p.peek() != &Tok::Eof {
        classes.push(p.class_decl()?);
    }
    Ok(Program { classes })
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        self.tokens
            .get(self.pos + n)
            .map(|s| &s.tok)
            .unwrap_or(&Tok::Eof)
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::parse(self.line(), msg.into())
    }

    fn expect(&mut self, want: Tok) -> Result<(), CompileError> {
        if self.peek() == &want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{want}`, found `{}`", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ---- declarations ----

    fn class_decl(&mut self) -> Result<ClassDecl, CompileError> {
        let line = self.line();
        if !self.eat_kw("class") {
            return Err(self.err("expected `class`"));
        }
        let name = self.expect_ident()?;
        let super_name = if self.eat_kw("extends") {
            Some(self.expect_ident()?)
        } else {
            None
        };
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        let mut ctors = Vec::new();
        while self.peek() != &Tok::RBrace {
            self.member(&name, &mut fields, &mut methods, &mut ctors)?;
        }
        self.expect(Tok::RBrace)?;
        Ok(ClassDecl {
            name,
            super_name,
            fields,
            methods,
            ctors,
            line,
        })
    }

    fn member(
        &mut self,
        class_name: &str,
        fields: &mut Vec<FieldDecl>,
        methods: &mut Vec<MethodDecl>,
        ctors: &mut Vec<CtorDecl>,
    ) -> Result<(), CompileError> {
        let line = self.line();
        // Ignore access modifiers (everything is public in MiniJava).
        loop {
            if self.eat_kw("public")
                || self.eat_kw("private")
                || self.eat_kw("protected")
                || self.eat_kw("final")
            {
                continue;
            }
            break;
        }
        let is_static = self.eat_kw("static");
        let is_synchronized = self.eat_kw("synchronized");

        // Constructor: ClassName (
        if let Tok::Ident(id) = self.peek() {
            if id == class_name && self.peek_at(1) == &Tok::LParen && !is_static {
                self.bump();
                let params = self.params()?;
                let (super_args, body) = self.ctor_body()?;
                ctors.push(CtorDecl {
                    params,
                    super_args,
                    body,
                    line,
                });
                return Ok(());
            }
        }

        let ty = self.parse_type()?;
        let name = self.expect_ident()?;
        if self.peek() == &Tok::LParen {
            let params = self.params()?;
            let body = self.block()?;
            methods.push(MethodDecl {
                is_static,
                is_synchronized,
                ret: ty,
                name,
                params,
                body,
                line,
            });
        } else {
            let init = if self.peek() == &Tok::Assign {
                self.bump();
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(Tok::Semi)?;
            fields.push(FieldDecl {
                is_static,
                ty,
                name,
                init,
                line,
            });
        }
        Ok(())
    }

    fn params(&mut self) -> Result<Vec<(Type, String)>, CompileError> {
        self.expect(Tok::LParen)?;
        let mut out = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let ty = self.parse_type()?;
                let name = self.expect_ident()?;
                out.push((ty, name));
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(out)
    }

    fn ctor_body(&mut self) -> Result<(Option<Vec<Expr>>, Vec<Stmt>), CompileError> {
        self.expect(Tok::LBrace)?;
        // Optional `super(args);` as the first statement.
        let super_args = if self.is_kw("super") && self.peek_at(1) == &Tok::LParen {
            self.bump();
            let args = self.call_args()?;
            self.expect(Tok::Semi)?;
            Some(args)
        } else {
            None
        };
        let mut body = Vec::new();
        while self.peek() != &Tok::RBrace {
            body.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok((super_args, body))
    }

    fn parse_type(&mut self) -> Result<Type, CompileError> {
        let base = match self.bump() {
            Tok::Ident(s) => match s.as_str() {
                "int" => Type::Int,
                "long" => Type::Long,
                "boolean" => Type::Boolean,
                "char" => Type::Char,
                "byte" => Type::Byte,
                "double" => Type::Double,
                "void" => Type::Void,
                "String" => Type::Str,
                _ => Type::Class(s),
            },
            other => return Err(self.err(format!("expected a type, found `{other}`"))),
        };
        let mut ty = base;
        while self.peek() == &Tok::LBracket && self.peek_at(1) == &Tok::RBracket {
            self.bump();
            self.bump();
            ty = Type::Array(Box::new(ty));
        }
        Ok(ty)
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(Tok::LBrace)?;
        let mut out = Vec::new();
        while self.peek() != &Tok::RBrace {
            out.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(out)
    }

    /// Does the token stream at the cursor start a variable declaration?
    fn starts_decl(&self) -> bool {
        match self.peek() {
            Tok::Ident(s) => {
                if matches!(
                    s.as_str(),
                    "int" | "long" | "boolean" | "char" | "byte" | "double" | "String"
                ) {
                    return true;
                }
                // `Foo x` or `Foo[] x`
                match (self.peek_at(1), self.peek_at(2), self.peek_at(3)) {
                    (Tok::Ident(_), _, _) => s.chars().next().is_some_and(char::is_uppercase),
                    (Tok::LBracket, Tok::RBracket, Tok::Ident(_)) => true,
                    _ => false,
                }
            }
            _ => false,
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::Ident(kw) => match kw.as_str() {
                "if" => {
                    self.bump();
                    self.expect(Tok::LParen)?;
                    let cond = self.expr()?;
                    self.expect(Tok::RParen)?;
                    let then = Box::new(self.stmt()?);
                    let els = if self.eat_kw("else") {
                        Some(Box::new(self.stmt()?))
                    } else {
                        None
                    };
                    Ok(Stmt::If {
                        cond,
                        then,
                        els,
                        line,
                    })
                }
                "while" => {
                    self.bump();
                    self.expect(Tok::LParen)?;
                    let cond = self.expr()?;
                    self.expect(Tok::RParen)?;
                    Ok(Stmt::While {
                        cond,
                        body: Box::new(self.stmt()?),
                        line,
                    })
                }
                "for" => {
                    self.bump();
                    self.expect(Tok::LParen)?;
                    let init = if self.peek() == &Tok::Semi {
                        self.bump();
                        None
                    } else {
                        let s = self.simple_stmt()?;
                        self.expect(Tok::Semi)?;
                        Some(Box::new(s))
                    };
                    let cond = if self.peek() == &Tok::Semi {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(Tok::Semi)?;
                    let update = if self.peek() == &Tok::RParen {
                        None
                    } else {
                        Some(Box::new(self.simple_stmt()?))
                    };
                    self.expect(Tok::RParen)?;
                    Ok(Stmt::For {
                        init,
                        cond,
                        update,
                        body: Box::new(self.stmt()?),
                        line,
                    })
                }
                "return" => {
                    self.bump();
                    let value = if self.peek() == &Tok::Semi {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Return { value, line })
                }
                "break" => {
                    self.bump();
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Break(line))
                }
                "continue" => {
                    self.bump();
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Continue(line))
                }
                _ => {
                    let s = self.simple_stmt()?;
                    self.expect(Tok::Semi)?;
                    Ok(s)
                }
            },
            _ => {
                let s = self.simple_stmt()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
        }
    }

    /// A declaration, assignment, inc/dec, or call — without the `;`.
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if self.starts_decl() {
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            let init = if self.peek() == &Tok::Assign {
                self.bump();
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::VarDecl {
                ty,
                name,
                init,
                line,
            });
        }
        let e = self.expr()?;
        match self.peek() {
            Tok::Assign | Tok::PlusAssign | Tok::MinusAssign | Tok::StarAssign => {
                let op = match self.bump() {
                    Tok::PlusAssign => Some(BinOp::Add),
                    Tok::MinusAssign => Some(BinOp::Sub),
                    Tok::StarAssign => Some(BinOp::Mul),
                    _ => None,
                };
                let value = self.expr()?;
                Ok(Stmt::Expr(Expr::Assign {
                    target: Box::new(e),
                    op,
                    value: Box::new(value),
                    line,
                }))
            }
            _ => Ok(Stmt::Expr(e)),
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut l = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            let line = self.line();
            self.bump();
            let r = self.and_expr()?;
            l = Expr::Binary {
                op: BinOp::LOr,
                l: Box::new(l),
                r: Box::new(r),
                line,
            };
        }
        Ok(l)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut l = self.bitor_expr()?;
        while self.peek() == &Tok::AndAnd {
            let line = self.line();
            self.bump();
            let r = self.bitor_expr()?;
            l = Expr::Binary {
                op: BinOp::LAnd,
                l: Box::new(l),
                r: Box::new(r),
                line,
            };
        }
        Ok(l)
    }

    fn bitor_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(Tok::Pipe, BinOp::Or)], Self::bitxor_expr)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(Tok::Caret, BinOp::Xor)], Self::bitand_expr)
    }

    fn bitand_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[(Tok::Amp, BinOp::And)], Self::eq_expr)
    }

    fn eq_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[(Tok::EqEq, BinOp::Eq), (Tok::Ne, BinOp::Ne)],
            Self::rel_expr,
        )
    }

    fn rel_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[
                (Tok::Lt, BinOp::Lt),
                (Tok::Le, BinOp::Le),
                (Tok::Gt, BinOp::Gt),
                (Tok::Ge, BinOp::Ge),
            ],
            Self::shift_expr,
        )
    }

    fn shift_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[
                (Tok::Shl, BinOp::Shl),
                (Tok::Shr, BinOp::Shr),
                (Tok::Ushr, BinOp::Ushr),
            ],
            Self::add_expr,
        )
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[(Tok::Plus, BinOp::Add), (Tok::Minus, BinOp::Sub)],
            Self::mul_expr,
        )
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[
                (Tok::Star, BinOp::Mul),
                (Tok::Slash, BinOp::Div),
                (Tok::Percent, BinOp::Rem),
            ],
            Self::unary_expr,
        )
    }

    fn binary_level(
        &mut self,
        ops: &[(Tok, BinOp)],
        next: fn(&mut Self) -> Result<Expr, CompileError>,
    ) -> Result<Expr, CompileError> {
        let mut l = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.peek() == tok {
                    let line = self.line();
                    self.bump();
                    let r = next(self)?;
                    l = Expr::Binary {
                        op: *op,
                        l: Box::new(l),
                        r: Box::new(r),
                        line,
                    };
                    continue 'outer;
                }
            }
            break;
        }
        Ok(l)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    e: Box::new(e),
                    line,
                })
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    e: Box::new(e),
                    line,
                })
            }
            // Primitive cast: `(int) e` etc.
            Tok::LParen => {
                if let Tok::Ident(s) = self.peek_at(1) {
                    if matches!(s.as_str(), "int" | "long" | "char" | "byte" | "double")
                        && self.peek_at(2) == &Tok::RParen
                    {
                        self.bump();
                        let ty = self.parse_type()?;
                        self.expect(Tok::RParen)?;
                        let e = self.unary_expr()?;
                        return Ok(Expr::Cast {
                            ty,
                            e: Box::new(e),
                            line,
                        });
                    }
                }
                self.postfix_expr()
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    let name = self.expect_ident()?;
                    if self.peek() == &Tok::LParen {
                        let args = self.call_args()?;
                        e = Expr::Call {
                            target: Some(Box::new(e)),
                            name,
                            args,
                            line,
                        };
                    } else {
                        e = Expr::Field {
                            target: Box::new(e),
                            name,
                            line,
                        };
                    }
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::Index {
                        array: Box::new(e),
                        index: Box::new(idx),
                        line,
                    };
                }
                Tok::PlusPlus => {
                    self.bump();
                    e = Expr::IncDec {
                        target: Box::new(e),
                        inc: true,
                        line,
                    };
                }
                Tok::MinusMinus => {
                    self.bump();
                    e = Expr::IncDec {
                        target: Box::new(e),
                        inc: false,
                        line,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, CompileError> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                args.push(self.expr()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::IntLit(v, line)),
            Tok::Long(v) => Ok(Expr::LongLit(v, line)),
            Tok::Double(v) => Ok(Expr::DoubleLit(v, line)),
            Tok::Char(c) => Ok(Expr::CharLit(c, line)),
            Tok::Str(s) => Ok(Expr::StrLit(s, line)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(id) => match id.as_str() {
                "true" => Ok(Expr::BoolLit(true, line)),
                "false" => Ok(Expr::BoolLit(false, line)),
                "null" => Ok(Expr::Null(line)),
                "this" => Ok(Expr::This(line)),
                "new" => {
                    let ty = self.parse_type_base()?;
                    if self.peek() == &Tok::LBracket {
                        self.bump();
                        let len = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        // `new T[n][]`... only single-dimension news.
                        Ok(Expr::NewArray {
                            ty,
                            len: Box::new(len),
                            line,
                        })
                    } else {
                        let class = match ty {
                            Type::Class(c) => c,
                            Type::Str => "String".to_string(),
                            other => {
                                return Err(self.err(format!("cannot construct {other:?} with new")))
                            }
                        };
                        let args = self.call_args()?;
                        Ok(Expr::New { class, args, line })
                    }
                }
                _ => {
                    if self.peek() == &Tok::LParen {
                        let args = self.call_args()?;
                        Ok(Expr::Call {
                            target: None,
                            name: id,
                            args,
                            line,
                        })
                    } else {
                        Ok(Expr::Var(id, line))
                    }
                }
            },
            other => Err(CompileError::parse(
                line,
                format!("unexpected token `{other}` in expression"),
            )),
        }
    }

    /// A type without trailing `[]` (for `new`).
    fn parse_type_base(&mut self) -> Result<Type, CompileError> {
        match self.bump() {
            Tok::Ident(s) => Ok(match s.as_str() {
                "int" => Type::Int,
                "long" => Type::Long,
                "boolean" => Type::Boolean,
                "char" => Type::Char,
                "byte" => Type::Byte,
                "double" => Type::Double,
                "String" => Type::Str,
                _ => Type::Class(s),
            }),
            other => Err(self.err(format!("expected a type after new, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_a_small_class() {
        let p = parse_src(
            "class Point {
                 int x;
                 static int count = 0;
                 Point(int x) { this.x = x; }
                 int getX() { return x; }
                 static void main(String[] args) {
                     Point p = new Point(3);
                     System.out.println(p.getX());
                 }
             }",
        );
        assert_eq!(p.classes.len(), 1);
        let c = &p.classes[0];
        assert_eq!(c.name, "Point");
        assert_eq!(c.fields.len(), 2);
        assert!(c.fields[1].is_static);
        assert!(c.fields[1].init.is_some());
        assert_eq!(c.ctors.len(), 1);
        assert_eq!(c.methods.len(), 2);
    }

    #[test]
    fn parses_inheritance_and_super() {
        let p = parse_src(
            "class B extends A {
                 B(int v) { super(v); this.w = v; }
                 int w;
             }",
        );
        let c = &p.classes[0];
        assert_eq!(c.super_name.as_deref(), Some("A"));
        assert!(c.ctors[0].super_args.is_some());
    }

    #[test]
    fn parses_control_flow() {
        let p = parse_src(
            "class C { static int f(int n) {
                 int acc = 0;
                 for (int i = 0; i < n; i++) {
                     if (i % 2 == 0) { acc += i; } else { acc -= 1; }
                     while (acc > 100) { acc = acc / 2; break; }
                 }
                 return acc;
             } }",
        );
        assert_eq!(p.classes[0].methods.len(), 1);
    }

    #[test]
    fn distinguishes_decl_from_index_assignment() {
        let p = parse_src(
            "class C { static void f() {
                 int[] a = new int[10];
                 a[0] = 1;
                 Foo b = null;
                 Foo[] cs = new Foo[2];
             } }",
        );
        let body = &p.classes[0].methods[0].body;
        assert!(matches!(body[0], Stmt::VarDecl { .. }));
        assert!(matches!(body[1], Stmt::Expr(Expr::Assign { .. })));
        assert!(matches!(body[2], Stmt::VarDecl { .. }));
        assert!(matches!(body[3], Stmt::VarDecl { .. }));
    }

    #[test]
    fn precedence_binds_correctly() {
        let p = parse_src(
            "class C { static int f() { return 1 + 2 * 3 << 1 < 4 == true && false || true; } }",
        );
        // Just ensure it parses into the expected top-level operator.
        let body = &p.classes[0].methods[0].body;
        let Stmt::Return { value: Some(e), .. } = &body[0] else {
            panic!("expected return")
        };
        assert!(matches!(e, Expr::Binary { op: BinOp::LOr, .. }));
    }

    #[test]
    fn parses_casts_and_string_literals() {
        let p = parse_src(
            "class C { static void f() {
                 long x = 5L;
                 int y = (int) x;
                 char c = (char) (y + 65);
                 String s = \"a\" + y + c;
             } }",
        );
        let body = &p.classes[0].methods[0].body;
        assert_eq!(body.len(), 4);
    }

    #[test]
    fn reports_errors_with_lines() {
        let err = parse(lex("class C {\n int f( { }\n}").unwrap()).unwrap_err();
        assert_eq!(err.line, 2);
    }
}
