//! Tokens of the MiniJava language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals
    /// Integer literal (no suffix).
    Int(i64),
    /// Long literal (`L` suffix).
    Long(i64),
    /// Double literal.
    Double(f64),
    /// Character literal.
    Char(char),
    /// String literal.
    Str(String),
    /// Identifier or keyword.
    Ident(String),
    // Punctuation and operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    Ushr,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Long(v) => write!(f, "{v}L"),
            Tok::Double(v) => write!(f, "{v}"),
            Tok::Char(c) => write!(f, "{c:?}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => write!(f, "{}", other.symbol()),
        }
    }
}

impl Tok {
    fn symbol(&self) -> &'static str {
        match self {
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Semi => ";",
            Tok::Comma => ",",
            Tok::Dot => ".",
            Tok::Assign => "=",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Bang => "!",
            Tok::Lt => "<",
            Tok::Gt => ">",
            Tok::Le => "<=",
            Tok::Ge => ">=",
            Tok::EqEq => "==",
            Tok::Ne => "!=",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::Amp => "&",
            Tok::Pipe => "|",
            Tok::Caret => "^",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::Ushr => ">>>",
            Tok::PlusPlus => "++",
            Tok::MinusMinus => "--",
            Tok::PlusAssign => "+=",
            Tok::MinusAssign => "-=",
            Tok::StarAssign => "*=",
            Tok::Eof => "<eof>",
            _ => "<tok>",
        }
    }
}

/// A token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}
