//! The class symbol table: declared classes, their members, and the
//! built-in runtime classes MiniJava programs may reference.

use std::collections::HashMap;

use crate::ast::{ClassDecl, Program, Type};
use crate::error::CompileError;

/// A method signature.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSig {
    /// `static`?
    pub is_static: bool,
    /// Name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

/// Information about one user class.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// Source name.
    pub name: String,
    /// Superclass source name (`None` = Object).
    pub super_name: Option<String>,
    /// Fields: (is_static, type, name).
    pub fields: Vec<(bool, Type, String)>,
    /// Methods.
    pub methods: Vec<MethodSig>,
    /// Constructor parameter lists.
    pub ctors: Vec<Vec<Type>>,
}

/// The symbol table of a compilation unit.
#[derive(Debug, Default)]
pub struct ClassTable {
    classes: HashMap<String, ClassInfo>,
}

impl ClassTable {
    /// Collect declarations from a parsed program.
    pub fn build(prog: &Program) -> Result<ClassTable, CompileError> {
        let mut t = ClassTable::default();
        for c in &prog.classes {
            if t.classes.contains_key(&c.name) {
                return Err(CompileError::check(
                    c.line,
                    format!("duplicate class {}", c.name),
                ));
            }
            t.classes.insert(c.name.clone(), Self::info_of(c));
        }
        // Validate superclasses exist (or are the builtin Thread/Object).
        for c in &prog.classes {
            if let Some(s) = &c.super_name {
                if !t.classes.contains_key(s) && !matches!(s.as_str(), "Thread" | "Object") {
                    return Err(CompileError::check(
                        c.line,
                        format!("unknown superclass {s}"),
                    ));
                }
            }
        }
        Ok(t)
    }

    fn info_of(c: &ClassDecl) -> ClassInfo {
        let mut ctors: Vec<Vec<Type>> = c
            .ctors
            .iter()
            .map(|k| k.params.iter().map(|(t, _)| t.clone()).collect())
            .collect();
        if ctors.is_empty() {
            ctors.push(Vec::new()); // implicit default constructor
        }
        ClassInfo {
            name: c.name.clone(),
            super_name: c.super_name.clone(),
            fields: c
                .fields
                .iter()
                .map(|f| (f.is_static, f.ty.clone(), f.name.clone()))
                .collect(),
            methods: c
                .methods
                .iter()
                .map(|m| MethodSig {
                    is_static: m.is_static,
                    name: m.name.clone(),
                    params: m.params.iter().map(|(t, _)| t.clone()).collect(),
                    ret: m.ret.clone(),
                })
                .collect(),
            ctors,
        }
    }

    /// Look up a user class.
    pub fn class(&self, name: &str) -> Option<&ClassInfo> {
        self.classes.get(name)
    }

    /// Whether `name` is a class the program can reference (user class
    /// or builtin service class).
    pub fn is_class_name(&self, name: &str) -> bool {
        self.classes.contains_key(name) || is_builtin_class(name)
    }

    /// Find an instance field, walking the superclass chain. Returns
    /// `(declaring source class, type, is_static)`.
    pub fn find_field(&self, class: &str, field: &str) -> Option<(String, Type, bool)> {
        let mut cur = Some(class.to_string());
        while let Some(cname) = cur {
            let info = self.classes.get(&cname)?;
            if let Some((is_static, ty, _)) = info.fields.iter().find(|(_, _, n)| n == field) {
                return Some((cname, ty.clone(), *is_static));
            }
            cur = info.super_name.clone();
        }
        None
    }

    /// Find a method by name and applicable argument types, walking the
    /// superclass chain. Returns `(declaring source class, signature)`.
    pub fn find_method(
        &self,
        class: &str,
        name: &str,
        args: &[Type],
    ) -> Option<(String, MethodSig)> {
        let mut cur = Some(class.to_string());
        while let Some(cname) = cur {
            let info = self.classes.get(&cname)?;
            for m in &info.methods {
                if m.name == name && params_applicable(self, &m.params, args) {
                    return Some((cname, m.clone()));
                }
            }
            cur = info.super_name.clone();
        }
        None
    }

    /// Find an applicable constructor.
    pub fn find_ctor(&self, class: &str, args: &[Type]) -> Option<Vec<Type>> {
        let info = self.classes.get(class)?;
        info.ctors
            .iter()
            .find(|p| params_applicable(self, p, args))
            .cloned()
    }

    /// Is `sub` (a source class name) a subclass of `sup`?
    pub fn is_subclass(&self, sub: &str, sup: &str) -> bool {
        if sup == "Object" {
            return true;
        }
        let mut cur = Some(sub.to_string());
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.classes.get(&c).and_then(|i| i.super_name.clone());
        }
        false
    }

    /// Can a value of `from` be passed where `to` is expected
    /// (identity, widening, subtyping, null)?
    pub fn assignable(&self, from: &Type, to: &Type) -> bool {
        if from == to {
            return true;
        }
        match (from, to) {
            (Type::Null, t) if t.is_reference() => true,
            // Widening primitive conversions.
            (Type::Int | Type::Char | Type::Byte, Type::Int) => true,
            (Type::Int | Type::Char | Type::Byte, Type::Long) => true,
            (Type::Int | Type::Char | Type::Byte | Type::Long, Type::Double) => true,
            (Type::Byte, Type::Char) | (Type::Char, Type::Byte) => false,
            (Type::Class(a), Type::Class(b)) => self.is_subclass(a, b),
            (Type::Str, Type::Class(b)) => b == "Object",
            (Type::Array(_), Type::Class(b)) => b == "Object",
            _ => false,
        }
    }
}

fn params_applicable(t: &ClassTable, params: &[Type], args: &[Type]) -> bool {
    params.len() == args.len() && params.iter().zip(args).all(|(p, a)| t.assignable(a, p))
}

/// Built-in service classes MiniJava programs may name.
pub fn is_builtin_class(name: &str) -> bool {
    matches!(
        name,
        "System"
            | "Math"
            | "Integer"
            | "Long"
            | "Double"
            | "String"
            | "StringBuilder"
            | "Thread"
            | "Object"
            | "Console"
            | "FileSystem"
            | "JS"
            | "Socket"
    )
}

/// Binary (JVM) name of a source class name.
pub fn binary_name(table: &ClassTable, name: &str) -> String {
    if table.class(name).is_some() {
        return name.to_string();
    }
    match name {
        "System" => "java/lang/System",
        "Math" => "java/lang/Math",
        "Integer" => "java/lang/Integer",
        "Long" => "java/lang/Long",
        "Double" => "java/lang/Double",
        "String" => "java/lang/String",
        "StringBuilder" => "java/lang/StringBuilder",
        "Thread" => "java/lang/Thread",
        "Object" => "java/lang/Object",
        "Console" => "doppio/runtime/Console",
        "FileSystem" => "doppio/runtime/FileSystem",
        "JS" => "doppio/runtime/JS",
        "Socket" => "doppio/net/Socket",
        other => other,
    }
    .to_string()
}

/// JVM descriptor of a MiniJava type.
pub fn descriptor(table: &ClassTable, ty: &Type) -> String {
    match ty {
        Type::Int => "I".into(),
        Type::Long => "J".into(),
        Type::Boolean => "Z".into(),
        Type::Char => "C".into(),
        Type::Byte => "B".into(),
        Type::Double => "D".into(),
        Type::Void => "V".into(),
        Type::Str => "Ljava/lang/String;".into(),
        Type::Null => "Ljava/lang/Object;".into(),
        Type::Class(c) => format!("L{};", binary_name(table, c)),
        Type::Array(t) => format!("[{}", descriptor(table, t)),
    }
}

/// Method descriptor from parameter and return types.
pub fn method_descriptor(table: &ClassTable, params: &[Type], ret: &Type) -> String {
    let mut s = String::from("(");
    for p in params {
        s.push_str(&descriptor(table, p));
    }
    s.push(')');
    s.push_str(&descriptor(table, ret));
    s
}
