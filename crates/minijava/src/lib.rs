//! MiniJava: a Java-subset compiler emitting real JVM class files.
//!
//! The Doppio paper's evaluation runs unmodified Java programs —
//! `javap`, `javac`, Rhino, Kawa, DeltaBlue, pidigits — on DoppioJVM.
//! Those programs need the (unavailable) OpenJDK toolchain to build,
//! so this crate supplies the replacement pipeline: benchmark workloads
//! are written in **MiniJava** (classes, single inheritance,
//! constructors, statics, `int`/`long`/`boolean`/`char`/`byte`/
//! `double`, `String`, arrays, the usual statements and operators,
//! string concatenation with `+`) and compiled here into genuine
//! `.class` files that DoppioJVM downloads and interprets exactly as
//! §6.4 describes.
//!
//! # Example
//!
//! ```
//! use doppio_minijava::compile;
//!
//! let classes = compile(
//!     "class Hello {
//!          static void main(String[] args) {
//!              System.out.println(6 * 7);
//!          }
//!      }",
//! )
//! .unwrap();
//! assert_eq!(classes.len(), 1);
//! assert_eq!(classes[0].name().unwrap(), "Hello");
//! assert!(classes[0].find_method("main", "([Ljava/lang/String;)V").is_some());
//! ```

pub mod ast;
pub mod codegen;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod table;
pub mod token;

pub use error::{CompileError, Phase};

use doppio_classfile::ClassFile;

/// Compile MiniJava source into JVM class files (one per class).
pub fn compile(source: &str) -> Result<Vec<ClassFile>, CompileError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(tokens)?;
    codegen::compile_program(&program)
}

/// Compile and serialize to `(binary name, bytes)` pairs, ready for
/// mounting on a Doppio file system.
pub fn compile_to_bytes(source: &str) -> Result<Vec<(String, Vec<u8>)>, CompileError> {
    Ok(compile(source)?
        .into_iter()
        .map(|cf| {
            let name = cf.name().expect("compiled class name").to_string();
            (name, cf.to_bytes())
        })
        .collect())
}
