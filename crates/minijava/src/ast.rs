//! The MiniJava abstract syntax tree.
//!
//! MiniJava is the Java subset the benchmark workloads are written in:
//! classes with single inheritance and constructors, static and
//! instance members, the primitive types `int`/`long`/`boolean`/
//! `char`/`byte`/`double`, `String`, arrays, and the usual statement
//! and expression forms. It compiles to genuine JVM class files.

/// A MiniJava type.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// `int`
    Int,
    /// `long`
    Long,
    /// `boolean`
    Boolean,
    /// `char`
    Char,
    /// `byte`
    Byte,
    /// `double`
    Double,
    /// `void`
    Void,
    /// `String`
    Str,
    /// A class type by source name.
    Class(String),
    /// `T[]`
    Array(Box<Type>),
    /// The type of `null` (assignable to any reference).
    Null,
}

impl Type {
    /// Whether this is a reference type.
    pub fn is_reference(&self) -> bool {
        matches!(
            self,
            Type::Str | Type::Class(_) | Type::Array(_) | Type::Null
        )
    }

    /// Whether this is a numeric primitive.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Type::Int | Type::Long | Type::Char | Type::Byte | Type::Double
        )
    }
}

/// A whole compilation unit (one or more classes).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The classes, in source order.
    pub classes: Vec<ClassDecl>,
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Source name (no packages in MiniJava).
    pub name: String,
    /// Superclass source name (`None` = `Object`).
    pub super_name: Option<String>,
    /// Fields.
    pub fields: Vec<FieldDecl>,
    /// Methods.
    pub methods: Vec<MethodDecl>,
    /// Constructors.
    pub ctors: Vec<CtorDecl>,
    /// Source line.
    pub line: u32,
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// `static`?
    pub is_static: bool,
    /// Declared type.
    pub ty: Type,
    /// Name.
    pub name: String,
    /// Initializer (static fields only).
    pub init: Option<Expr>,
    /// Source line.
    pub line: u32,
}

/// A method declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// `static`?
    pub is_static: bool,
    /// `synchronized`?
    pub is_synchronized: bool,
    /// Return type.
    pub ret: Type,
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(Type, String)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A constructor declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct CtorDecl {
    /// Parameters.
    pub params: Vec<(Type, String)>,
    /// Explicit `super(...)` arguments (default: zero-arg super).
    pub super_args: Option<Vec<Expr>>,
    /// Body (after the super call).
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `T x = e;`
    VarDecl {
        /// Declared type.
        ty: Type,
        /// Name.
        name: String,
        /// Initializer.
        init: Option<Expr>,
        /// Line.
        line: u32,
    },
    /// `if (c) s else s`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Else branch.
        els: Option<Box<Stmt>>,
        /// Line.
        line: u32,
    },
    /// `while (c) s`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Line.
        line: u32,
    },
    /// `for (init; cond; update) s`
    For {
        /// Initializer.
        init: Option<Box<Stmt>>,
        /// Condition.
        cond: Option<Expr>,
        /// Update.
        update: Option<Box<Stmt>>,
        /// Body.
        body: Box<Stmt>,
        /// Line.
        line: u32,
    },
    /// `return e;`
    Return {
        /// Value (None for void).
        value: Option<Expr>,
        /// Line.
        line: u32,
    },
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
    /// An expression statement (call, assignment, `x++`).
    Expr(Expr),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    Ushr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    LAnd,
    /// `||`
    LOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64, u32),
    /// Long literal.
    LongLit(i64, u32),
    /// Double literal.
    DoubleLit(f64, u32),
    /// Character literal.
    CharLit(char, u32),
    /// String literal.
    StrLit(String, u32),
    /// `true`/`false`.
    BoolLit(bool, u32),
    /// `null`.
    Null(u32),
    /// A bare name: local, field of `this`, or class reference.
    Var(String, u32),
    /// `this`.
    This(u32),
    /// `target.name` (field access, or static field via class name).
    Field {
        /// The receiver expression.
        target: Box<Expr>,
        /// Member name.
        name: String,
        /// Line.
        line: u32,
    },
    /// `array[index]`.
    Index {
        /// Array expression.
        array: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Line.
        line: u32,
    },
    /// `target.name(args)` or `name(args)`.
    Call {
        /// Receiver (None = implicit this / same-class static).
        target: Option<Box<Expr>>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Line.
        line: u32,
    },
    /// `new C(args)`.
    New {
        /// Class source name.
        class: String,
        /// Constructor arguments.
        args: Vec<Expr>,
        /// Line.
        line: u32,
    },
    /// `new T[len]`.
    NewArray {
        /// Element type.
        ty: Type,
        /// Length.
        len: Box<Expr>,
        /// Line.
        line: u32,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        e: Box<Expr>,
        /// Line.
        line: u32,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
        /// Line.
        line: u32,
    },
    /// Assignment (statement position only). `op` is the compound
    /// operator for `+=`/`-=`/`*=`.
    Assign {
        /// The lvalue (Var, Field, or Index).
        target: Box<Expr>,
        /// Compound operator.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Box<Expr>,
        /// Line.
        line: u32,
    },
    /// `x++` / `x--` (statement position only).
    IncDec {
        /// The lvalue.
        target: Box<Expr>,
        /// `true` = increment.
        inc: bool,
        /// Line.
        line: u32,
    },
    /// Primitive cast `(T) e`.
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        e: Box<Expr>,
        /// Line.
        line: u32,
    },
}

impl Expr {
    /// The source line of this expression.
    pub fn line(&self) -> u32 {
        match self {
            Expr::IntLit(_, l)
            | Expr::LongLit(_, l)
            | Expr::DoubleLit(_, l)
            | Expr::CharLit(_, l)
            | Expr::StrLit(_, l)
            | Expr::BoolLit(_, l)
            | Expr::Null(l)
            | Expr::Var(_, l)
            | Expr::This(l) => *l,
            Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Call { line, .. }
            | Expr::New { line, .. }
            | Expr::NewArray { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::IncDec { line, .. }
            | Expr::Cast { line, .. } => *line,
        }
    }
}
