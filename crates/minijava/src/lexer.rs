//! The MiniJava lexer.

use crate::error::CompileError;
use crate::token::{Spanned, Tok};

/// Tokenize MiniJava source.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let err = |line: u32, msg: String| CompileError::lex(line, msg);

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(err(line, "unterminated block comment".into()));
                }
                i += 2;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                let mut hex = false;
                if c == '0' && matches!(bytes.get(i + 1), Some('x') | Some('X')) {
                    hex = true;
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    if i < bytes.len()
                        && bytes[i] == '.'
                        && bytes.get(i + 1).is_some_and(char::is_ascii_digit)
                    {
                        is_float = true;
                        i += 1;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    if matches!(bytes.get(i), Some('e') | Some('E')) {
                        is_float = true;
                        i += 1;
                        if matches!(bytes.get(i), Some('+') | Some('-')) {
                            i += 1;
                        }
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| err(line, format!("bad double literal {text}")))?;
                    out.push(Spanned {
                        tok: Tok::Double(v),
                        line,
                    });
                } else {
                    let v = if hex {
                        i64::from_str_radix(&text[2..], 16)
                    } else {
                        text.parse()
                    }
                    .map_err(|_| err(line, format!("bad integer literal {text}")))?;
                    if matches!(bytes.get(i), Some('L') | Some('l')) {
                        i += 1;
                        out.push(Spanned {
                            tok: Tok::Long(v),
                            line,
                        });
                    } else {
                        out.push(Spanned {
                            tok: Tok::Int(v),
                            line,
                        });
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '$')
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.push(Spanned {
                    tok: Tok::Ident(text),
                    line,
                });
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None | Some('\n') => {
                            return Err(err(line, "unterminated string literal".into()))
                        }
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            i += 1;
                            let esc = bytes
                                .get(i)
                                .ok_or_else(|| err(line, "dangling escape".into()))?;
                            s.push(unescape(*esc, line)?);
                            i += 1;
                        }
                        Some(c2) => {
                            s.push(*c2);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line,
                });
            }
            '\'' => {
                i += 1;
                let c2 = *bytes
                    .get(i)
                    .ok_or_else(|| err(line, "unterminated char literal".into()))?;
                let value = if c2 == '\\' {
                    i += 1;
                    let esc = bytes
                        .get(i)
                        .ok_or_else(|| err(line, "dangling escape".into()))?;
                    unescape(*esc, line)?
                } else {
                    c2
                };
                i += 1;
                if bytes.get(i) != Some(&'\'') {
                    return Err(err(line, "unterminated char literal".into()));
                }
                i += 1;
                out.push(Spanned {
                    tok: Tok::Char(value),
                    line,
                });
            }
            _ => {
                let two: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
                let three: String = bytes[i..bytes.len().min(i + 3)].iter().collect();
                let (tok, width) = if three == ">>>" {
                    (Tok::Ushr, 3)
                } else {
                    match two.as_str() {
                        "<=" => (Tok::Le, 2),
                        ">=" => (Tok::Ge, 2),
                        "==" => (Tok::EqEq, 2),
                        "!=" => (Tok::Ne, 2),
                        "&&" => (Tok::AndAnd, 2),
                        "||" => (Tok::OrOr, 2),
                        "<<" => (Tok::Shl, 2),
                        ">>" => (Tok::Shr, 2),
                        "++" => (Tok::PlusPlus, 2),
                        "--" => (Tok::MinusMinus, 2),
                        "+=" => (Tok::PlusAssign, 2),
                        "-=" => (Tok::MinusAssign, 2),
                        "*=" => (Tok::StarAssign, 2),
                        _ => {
                            let t = match c {
                                '(' => Tok::LParen,
                                ')' => Tok::RParen,
                                '{' => Tok::LBrace,
                                '}' => Tok::RBrace,
                                '[' => Tok::LBracket,
                                ']' => Tok::RBracket,
                                ';' => Tok::Semi,
                                ',' => Tok::Comma,
                                '.' => Tok::Dot,
                                '=' => Tok::Assign,
                                '+' => Tok::Plus,
                                '-' => Tok::Minus,
                                '*' => Tok::Star,
                                '/' => Tok::Slash,
                                '%' => Tok::Percent,
                                '!' => Tok::Bang,
                                '<' => Tok::Lt,
                                '>' => Tok::Gt,
                                '&' => Tok::Amp,
                                '|' => Tok::Pipe,
                                '^' => Tok::Caret,
                                other => {
                                    return Err(err(
                                        line,
                                        format!("unexpected character {other:?}"),
                                    ))
                                }
                            };
                            (t, 1)
                        }
                    }
                };
                out.push(Spanned { tok, line });
                i += width;
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

fn unescape(c: char, line: u32) -> Result<char, CompileError> {
    Ok(match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        '\\' => '\\',
        '\'' => '\'',
        '"' => '"',
        other => return Err(CompileError::lex(line, format!("unknown escape \\{other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_literals() {
        assert_eq!(
            toks("42 7L 3.25 'x' \"hi\\n\" 0xFF"),
            vec![
                Tok::Int(42),
                Tok::Long(7),
                Tok::Double(3.25),
                Tok::Char('x'),
                Tok::Str("hi\n".into()),
                Tok::Int(255),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators_longest_first() {
        assert_eq!(
            toks("a >>> b >> c > d >= e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ushr,
                Tok::Ident("b".into()),
                Tok::Shr,
                Tok::Ident("c".into()),
                Tok::Gt,
                Tok::Ident("d".into()),
                Tok::Ge,
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_counts_lines() {
        let ts = lex("a // one\n/* two\nthree */ b").unwrap();
        assert_eq!(ts[0].tok, Tok::Ident("a".into()));
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].tok, Tok::Ident("b".into()));
        assert_eq!(ts[1].line, 3);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(lex("\"open").is_err());
        assert!(lex("'ab'").is_err());
        assert!(lex("#").is_err());
    }
}
