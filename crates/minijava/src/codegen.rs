//! Code generation: MiniJava AST → JVM class files.
//!
//! One pass per method: expressions are type-checked as they are
//! emitted (an internal `infer` helper resolves types without
//! emitting where generation order demands it, e.g. string
//! concatenation). Locals are allocated on the fly; `max_locals` is the
//! final watermark.

use doppio_classfile::access::{ACC_PUBLIC, ACC_STATIC, ACC_SUPER, ACC_SYNCHRONIZED};
use doppio_classfile::builder::{ClassBuilder, Label, MethodBuilder};
use doppio_classfile::opcodes as op;
use doppio_classfile::ClassFile;

use crate::ast::*;
use crate::error::CompileError;
use crate::table::{binary_name, descriptor, method_descriptor, ClassTable};

/// Compile a parsed program to class files.
pub fn compile_program(prog: &Program) -> Result<Vec<ClassFile>, CompileError> {
    let table = ClassTable::build(prog)?;
    prog.classes.iter().map(|c| gen_class(&table, c)).collect()
}

fn super_binary(table: &ClassTable, c: &ClassDecl) -> String {
    match &c.super_name {
        None => "java/lang/Object".to_string(),
        Some(s) => binary_name(table, s),
    }
}

fn gen_class(table: &ClassTable, c: &ClassDecl) -> Result<ClassFile, CompileError> {
    let super_bin = super_binary(table, c);
    let mut b = ClassBuilder::new(&c.name, &super_bin);
    b.set_access(ACC_PUBLIC | ACC_SUPER);

    for f in &c.fields {
        let flags = if f.is_static {
            ACC_PUBLIC | ACC_STATIC
        } else {
            ACC_PUBLIC
        };
        b.add_field(flags, &f.name, &descriptor(table, &f.ty));
        if f.init.is_some() && !f.is_static {
            return Err(CompileError::check(
                f.line,
                format!(
                    "instance field {} has an initializer; assign it in a constructor",
                    f.name
                ),
            ));
        }
    }

    // <clinit> from static field initializers.
    if c.fields.iter().any(|f| f.init.is_some()) {
        let mut g = Gen::new(
            table,
            c,
            MethodBuilder::new(ACC_STATIC, "<clinit>", "()V", 0),
            true,
            Type::Void,
        );
        for f in &c.fields {
            if let Some(init) = &f.init {
                let t = g.expr(init)?;
                g.coerce(&t, &f.ty, f.line)?;
                g.m.putstatic(&c.name, &f.name, &descriptor(table, &f.ty));
            }
        }
        g.m.return_void();
        g.finish(&mut b);
    }

    // Constructors (implicit default when none declared).
    if c.ctors.is_empty() {
        let mut m = MethodBuilder::new(ACC_PUBLIC, "<init>", "()V", 1);
        m.aload(0);
        m.invokespecial(&super_bin, "<init>", "()V");
        m.return_void();
        b.add_method(m);
    }
    for k in &c.ctors {
        gen_ctor(table, c, k, &super_bin, &mut b)?;
    }

    for m in &c.methods {
        gen_method(table, c, m, &mut b)?;
    }
    Ok(b.finish())
}

fn gen_ctor(
    table: &ClassTable,
    c: &ClassDecl,
    k: &CtorDecl,
    super_bin: &str,
    b: &mut ClassBuilder,
) -> Result<(), CompileError> {
    let params: Vec<Type> = k.params.iter().map(|(t, _)| t.clone()).collect();
    let desc = method_descriptor(table, &params, &Type::Void);
    let mut g = Gen::new(
        table,
        c,
        MethodBuilder::new(ACC_PUBLIC, "<init>", &desc, 0),
        false,
        Type::Void,
    );
    g.declare_this_and_params(&k.params);

    // super(...) call.
    g.m.aload(0);
    let super_arg_types: Vec<Type> = match &k.super_args {
        None => Vec::new(),
        Some(args) => {
            let mut ts = Vec::new();
            for a in args {
                ts.push(g.expr(a)?);
            }
            ts
        }
    };
    // Resolve the super constructor.
    let super_desc = match &c.super_name {
        Some(s) if table.class(s).is_some() => {
            let ctor = table.find_ctor(s, &super_arg_types).ok_or_else(|| {
                CompileError::check(k.line, format!("no matching super constructor in {s}"))
            })?;
            // Coercions for super args would need re-ordering; require
            // exact slots by re-checking assignability only.
            method_descriptor(table, &ctor, &Type::Void)
        }
        _ => {
            if !super_arg_types.is_empty() {
                return Err(CompileError::check(
                    k.line,
                    "super(...) with arguments requires a user-defined superclass".into(),
                ));
            }
            "()V".to_string()
        }
    };
    g.m.invokespecial(super_bin, "<init>", &super_desc);

    for s in &k.body {
        g.stmt(s)?;
    }
    g.m.return_void();
    g.finish(b);
    Ok(())
}

fn gen_method(
    table: &ClassTable,
    c: &ClassDecl,
    m: &MethodDecl,
    b: &mut ClassBuilder,
) -> Result<(), CompileError> {
    let params: Vec<Type> = m.params.iter().map(|(t, _)| t.clone()).collect();
    let desc = method_descriptor(table, &params, &m.ret);
    let mut flags = if m.is_static {
        ACC_PUBLIC | ACC_STATIC
    } else {
        ACC_PUBLIC
    };
    if m.is_synchronized {
        flags |= ACC_SYNCHRONIZED;
    }
    let mut g = Gen::new(
        table,
        c,
        MethodBuilder::new(flags, &m.name, &desc, 0),
        m.is_static,
        m.ret.clone(),
    );
    if m.is_static {
        g.declare_params(&m.params);
    } else {
        g.declare_this_and_params(&m.params);
    }
    for s in &m.body {
        g.stmt(s)?;
    }
    // Implicit return for void methods (and a safety net otherwise —
    // the JVM traps a fall-off as an error at runtime).
    if m.ret == Type::Void {
        g.m.return_void();
    } else {
        // Unreachable if the program returns on all paths; emit a
        // default return to satisfy the verifier-less interpreter.
        g.default_value(&m.ret);
        g.typed_return(&m.ret);
    }
    g.finish(b);
    Ok(())
}

/// Slots a type occupies.
fn slots(ty: &Type) -> u16 {
    match ty {
        Type::Long | Type::Double => 2,
        _ => 1,
    }
}

struct Gen<'a> {
    table: &'a ClassTable,
    class: &'a ClassDecl,
    m: MethodBuilder,
    scopes: Vec<Vec<(String, u16, Type)>>,
    next_local: u16,
    max_local: u16,
    is_static: bool,
    ret: Type,
    loops: Vec<(Label, Label)>, // (continue target, break target)
}

impl<'a> Gen<'a> {
    fn new(
        table: &'a ClassTable,
        class: &'a ClassDecl,
        m: MethodBuilder,
        is_static: bool,
        ret: Type,
    ) -> Gen<'a> {
        Gen {
            table,
            class,
            m,
            scopes: vec![Vec::new()],
            next_local: 0,
            max_local: 0,
            is_static,
            ret,
            loops: Vec::new(),
        }
    }

    fn finish(mut self, b: &mut ClassBuilder) {
        self.m
            .set_max_locals(self.max_local.max(self.next_local).max(1));
        b.add_method(self.m);
    }

    fn declare_this_and_params(&mut self, params: &[(Type, String)]) {
        self.next_local = 1; // slot 0 = this
        for (t, n) in params {
            let idx = self.next_local;
            self.next_local += slots(t);
            self.scopes[0].push((n.clone(), idx, t.clone()));
        }
        self.max_local = self.next_local;
    }

    fn declare_params(&mut self, params: &[(Type, String)]) {
        for (t, n) in params {
            let idx = self.next_local;
            self.next_local += slots(t);
            self.scopes[0].push((n.clone(), idx, t.clone()));
        }
        self.max_local = self.next_local;
    }

    fn declare(&mut self, name: &str, ty: &Type) -> u16 {
        let idx = self.next_local;
        self.next_local += slots(ty);
        self.max_local = self.max_local.max(self.next_local);
        self.scopes
            .last_mut()
            .expect("scope")
            .push((name.to_string(), idx, ty.clone()));
        idx
    }

    fn lookup_local(&self, name: &str) -> Option<(u16, Type)> {
        for scope in self.scopes.iter().rev() {
            for (n, idx, t) in scope.iter().rev() {
                if n == name {
                    return Some((*idx, t.clone()));
                }
            }
        }
        None
    }

    fn err(&self, line: u32, msg: impl Into<String>) -> CompileError {
        CompileError::check(line, msg.into())
    }

    // ---- statements ----

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Block(body) => {
                self.scopes.push(Vec::new());
                let saved = self.next_local;
                for st in body {
                    self.stmt(st)?;
                }
                self.scopes.pop();
                self.next_local = saved;
                Ok(())
            }
            Stmt::VarDecl {
                ty,
                name,
                init,
                line,
            } => {
                self.m.line(*line as u16);
                if self.lookup_local(name).is_some() {
                    return Err(self.err(*line, format!("duplicate local {name}")));
                }
                let idx = self.declare(name, ty);
                match init {
                    Some(e) => {
                        let t = self.expr(e)?;
                        self.coerce(&t, ty, *line)?;
                    }
                    None => self.default_value(ty),
                }
                self.store_local(idx, ty);
                Ok(())
            }
            Stmt::If {
                cond,
                then,
                els,
                line,
            } => {
                self.m.line(*line as u16);
                let else_l = self.m.new_label();
                let end_l = self.m.new_label();
                self.condition(cond, *line)?;
                self.m.branch(op::IFEQ, else_l);
                self.stmt(then)?;
                if els.is_some() {
                    self.m.goto_(end_l);
                }
                self.m.bind(else_l);
                if let Some(e) = els {
                    self.stmt(e)?;
                    self.m.bind(end_l);
                }
                Ok(())
            }
            Stmt::While { cond, body, line } => {
                self.m.line(*line as u16);
                let top = self.m.new_label();
                let done = self.m.new_label();
                self.m.bind(top);
                self.condition(cond, *line)?;
                self.m.branch(op::IFEQ, done);
                self.loops.push((top, done));
                self.stmt(body)?;
                self.loops.pop();
                self.m.goto_(top);
                self.m.bind(done);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
                line,
            } => {
                self.m.line(*line as u16);
                self.scopes.push(Vec::new());
                let saved = self.next_local;
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let top = self.m.new_label();
                let cont = self.m.new_label();
                let done = self.m.new_label();
                self.m.bind(top);
                if let Some(c) = cond {
                    self.condition(c, *line)?;
                    self.m.branch(op::IFEQ, done);
                }
                self.loops.push((cont, done));
                self.stmt(body)?;
                self.loops.pop();
                self.m.bind(cont);
                if let Some(u) = update {
                    self.stmt(u)?;
                }
                self.m.goto_(top);
                self.m.bind(done);
                self.scopes.pop();
                self.next_local = saved;
                Ok(())
            }
            Stmt::Return { value, line } => {
                self.m.line(*line as u16);
                match (&self.ret.clone(), value) {
                    (Type::Void, None) => self.m.return_void(),
                    (Type::Void, Some(_)) => {
                        return Err(self.err(*line, "void method returns a value"))
                    }
                    (_, None) => return Err(self.err(*line, "missing return value")),
                    (ret, Some(e)) => {
                        let t = self.expr(e)?;
                        let ret = ret.clone();
                        self.coerce(&t, &ret, *line)?;
                        self.typed_return(&ret);
                    }
                }
                Ok(())
            }
            Stmt::Break(line) => {
                let (_, brk) = *self
                    .loops
                    .last()
                    .ok_or_else(|| self.err(*line, "break outside a loop"))?;
                self.m.goto_(brk);
                Ok(())
            }
            Stmt::Continue(line) => {
                let (cont, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| self.err(*line, "continue outside a loop"))?;
                self.m.goto_(cont);
                Ok(())
            }
            Stmt::Expr(e) => {
                self.m.line(e.line() as u16);
                match e {
                    Expr::Assign { .. } | Expr::IncDec { .. } => {
                        self.assignment(e)?;
                    }
                    _ => {
                        let t = self.expr(e)?;
                        match slots(&t) {
                            _ if t == Type::Void => {}
                            2 => self.m.simple(op::POP2),
                            _ => self.m.pop(),
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Emit a boolean condition value.
    fn condition(&mut self, e: &Expr, line: u32) -> Result<(), CompileError> {
        let t = self.expr(e)?;
        if t != Type::Boolean {
            return Err(self.err(line, format!("condition is {t:?}, not boolean")));
        }
        Ok(())
    }

    fn default_value(&mut self, ty: &Type) {
        match ty {
            Type::Long => self.m.ldc_long(0),
            Type::Double => self.m.ldc_double(0.0),
            Type::Int | Type::Boolean | Type::Char | Type::Byte => self.m.ldc_int(0),
            _ => self.m.aconst_null(),
        }
    }

    fn typed_return(&mut self, ty: &Type) {
        match ty {
            Type::Long => self.m.lreturn(),
            Type::Double => self.m.dreturn(),
            Type::Int | Type::Boolean | Type::Char | Type::Byte => self.m.ireturn(),
            Type::Void => self.m.return_void(),
            _ => self.m.areturn(),
        }
    }

    fn store_local(&mut self, idx: u16, ty: &Type) {
        match ty {
            Type::Long => self.m.lstore(idx),
            Type::Double => self.m.dstore(idx),
            Type::Int | Type::Boolean | Type::Char | Type::Byte => self.m.istore(idx),
            _ => self.m.astore(idx),
        }
    }

    fn load_local(&mut self, idx: u16, ty: &Type) {
        match ty {
            Type::Long => self.m.lload(idx),
            Type::Double => self.m.dload(idx),
            Type::Int | Type::Boolean | Type::Char | Type::Byte => self.m.iload(idx),
            _ => self.m.aload(idx),
        }
    }

    /// Emit a widening conversion from `from` to `to`.
    fn coerce(&mut self, from: &Type, to: &Type, line: u32) -> Result<(), CompileError> {
        if from == to || !self.needs_conversion(from, to) {
            if self.table.assignable(from, to) || from == to {
                return Ok(());
            }
            return Err(self.err(line, format!("cannot assign {from:?} to {to:?}")));
        }
        match (from, to) {
            (Type::Int | Type::Char | Type::Byte | Type::Boolean, Type::Long) => {
                self.m.simple(op::I2L)
            }
            (Type::Int | Type::Char | Type::Byte, Type::Double) => self.m.simple(op::I2D),
            (Type::Long, Type::Double) => self.m.simple(op::L2D),
            _ => return Err(self.err(line, format!("cannot convert {from:?} to {to:?}"))),
        }
        Ok(())
    }

    fn needs_conversion(&self, from: &Type, to: &Type) -> bool {
        matches!(
            (from, to),
            (
                Type::Int | Type::Char | Type::Byte | Type::Boolean,
                Type::Long
            ) | (Type::Int | Type::Char | Type::Byte, Type::Double)
                | (Type::Long, Type::Double)
        )
    }

    // ---- assignments ----

    fn assignment(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::IncDec { target, inc, line } => {
                let delta = if *inc { 1i16 } else { -1 };
                // Fast path: integer local.
                if let Expr::Var(name, _) = target.as_ref() {
                    if let Some((idx, Type::Int)) = self.lookup_local(name) {
                        self.m.iinc(idx, delta);
                        return Ok(());
                    }
                }
                let value = Expr::Binary {
                    op: if *inc { BinOp::Add } else { BinOp::Sub },
                    l: target.clone(),
                    r: Box::new(Expr::IntLit(1, *line)),
                    line: *line,
                };
                self.assign_to(target, &value, *line)
            }
            Expr::Assign {
                target,
                op: Some(binop),
                value,
                line,
            } => {
                let combined = Expr::Binary {
                    op: *binop,
                    l: target.clone(),
                    r: value.clone(),
                    line: *line,
                };
                self.assign_to(target, &combined, *line)
            }
            Expr::Assign {
                target,
                op: None,
                value,
                line,
            } => self.assign_to(target, value, *line),
            _ => unreachable!("assignment() called on non-assignment"),
        }
    }

    fn assign_to(&mut self, target: &Expr, value: &Expr, line: u32) -> Result<(), CompileError> {
        match target {
            Expr::Var(name, _) => {
                if let Some((idx, ty)) = self.lookup_local(name) {
                    let t = self.expr(value)?;
                    self.coerce(&t, &ty, line)?;
                    self.store_local(idx, &ty);
                    return Ok(());
                }
                // Field of this / static field of this class.
                let (decl, ty, is_static) = self
                    .table
                    .find_field(&self.class.name, name)
                    .ok_or_else(|| self.err(line, format!("unknown variable {name}")))?;
                let desc = descriptor(self.table, &ty);
                if is_static {
                    let t = self.expr(value)?;
                    self.coerce(&t, &ty, line)?;
                    self.m.putstatic(&decl, name, &desc);
                } else {
                    if self.is_static {
                        return Err(
                            self.err(line, format!("instance field {name} in static context"))
                        );
                    }
                    self.m.aload(0);
                    let t = self.expr(value)?;
                    self.coerce(&t, &ty, line)?;
                    self.m.putfield(&decl, name, &desc);
                }
                Ok(())
            }
            Expr::Field {
                target: ftarget,
                name,
                line: fline,
            } => {
                // Static field via class name?
                if let Expr::Var(cls, _) = ftarget.as_ref() {
                    if self.lookup_local(cls).is_none() && self.table.class(cls).is_some() {
                        let (decl, ty, is_static) =
                            self.table.find_field(cls, name).ok_or_else(|| {
                                self.err(*fline, format!("unknown field {cls}.{name}"))
                            })?;
                        if !is_static {
                            return Err(self.err(*fline, format!("{cls}.{name} is not static")));
                        }
                        let t = self.expr(value)?;
                        self.coerce(&t, &ty, line)?;
                        let desc = descriptor(self.table, &ty);
                        self.m.putstatic(&decl, name, &desc);
                        return Ok(());
                    }
                }
                let tt = self.expr(ftarget)?;
                let Type::Class(cname) = &tt else {
                    return Err(self.err(*fline, format!("cannot assign field of {tt:?}")));
                };
                let (decl, ty, is_static) = self
                    .table
                    .find_field(cname, name)
                    .ok_or_else(|| self.err(*fline, format!("unknown field {cname}.{name}")))?;
                if is_static {
                    return Err(self.err(*fline, "static field via instance".to_string()));
                }
                let t = self.expr(value)?;
                self.coerce(&t, &ty, line)?;
                let desc = descriptor(self.table, &ty);
                self.m.putfield(&decl, name, &desc);
                Ok(())
            }
            Expr::Index {
                array,
                index,
                line: iline,
            } => {
                let at = self.expr(array)?;
                let Type::Array(elem) = at else {
                    return Err(self.err(*iline, format!("indexing non-array {at:?}")));
                };
                let it = self.expr(index)?;
                self.coerce(&it, &Type::Int, *iline)?;
                let t = self.expr(value)?;
                self.coerce(&t, &elem, line)?;
                self.array_store(&elem);
                Ok(())
            }
            _ => Err(self.err(line, "invalid assignment target")),
        }
    }

    fn array_store(&mut self, elem: &Type) {
        match elem {
            Type::Int => self.m.simple(op::IASTORE),
            Type::Long => self.m.simple(op::LASTORE),
            Type::Double => self.m.simple(op::DASTORE),
            Type::Char => self.m.simple(op::CASTORE),
            Type::Byte | Type::Boolean => self.m.simple(op::BASTORE),
            _ => self.m.simple(op::AASTORE),
        }
    }

    fn array_load(&mut self, elem: &Type) {
        match elem {
            Type::Int => self.m.simple(op::IALOAD),
            Type::Long => self.m.simple(op::LALOAD),
            Type::Double => self.m.simple(op::DALOAD),
            Type::Char => self.m.simple(op::CALOAD),
            Type::Byte | Type::Boolean => self.m.simple(op::BALOAD),
            _ => self.m.simple(op::AALOAD),
        }
    }

    // ---- type inference (no emission) ----

    /// The type an expression will have, without generating code.
    fn infer(&self, e: &Expr) -> Result<Type, CompileError> {
        Ok(match e {
            Expr::IntLit(..) => Type::Int,
            Expr::LongLit(..) => Type::Long,
            Expr::DoubleLit(..) => Type::Double,
            Expr::CharLit(..) => Type::Char,
            Expr::StrLit(..) => Type::Str,
            Expr::BoolLit(..) => Type::Boolean,
            Expr::Null(_) => Type::Null,
            Expr::This(line) => {
                if self.is_static {
                    return Err(self.err(*line, "this in a static context"));
                }
                Type::Class(self.class.name.clone())
            }
            Expr::Var(name, line) => {
                if let Some((_, t)) = self.lookup_local(name) {
                    t
                } else if let Some((_, t, _)) = self.table.find_field(&self.class.name, name) {
                    t
                } else {
                    return Err(self.err(*line, format!("unknown variable {name}")));
                }
            }
            Expr::Field { target, name, line } => {
                if name == "length" {
                    if let Ok(Type::Array(_)) = self.infer(target) {
                        return Ok(Type::Int);
                    }
                }
                if let Expr::Var(cls, _) = target.as_ref() {
                    if self.lookup_local(cls).is_none() && self.table.class(cls).is_some() {
                        if let Some((_, t, true)) = self.table.find_field(cls, name) {
                            return Ok(t);
                        }
                    }
                }
                let tt = self.infer(target)?;
                match &tt {
                    Type::Class(c) => self
                        .table
                        .find_field(c, name)
                        .map(|(_, t, _)| t)
                        .ok_or_else(|| self.err(*line, format!("unknown field {c}.{name}")))?,
                    other => return Err(self.err(*line, format!("no field {name} on {other:?}"))),
                }
            }
            Expr::Index { array, line, .. } => match self.infer(array)? {
                Type::Array(t) => *t,
                other => return Err(self.err(*line, format!("indexing non-array {other:?}"))),
            },
            Expr::Call { .. } => self.infer_call(e)?,
            Expr::New { class, line, .. } => {
                if class == "String" {
                    return Ok(Type::Str);
                }
                if self.table.class(class).is_none()
                    && class != "StringBuilder"
                    && class != "Object"
                    && class != "Thread"
                {
                    return Err(self.err(*line, format!("unknown class {class}")));
                }
                Type::Class(class.clone())
            }
            Expr::NewArray { ty, .. } => Type::Array(Box::new(ty.clone())),
            Expr::Unary { op: UnOp::Not, .. } => Type::Boolean,
            Expr::Unary {
                op: UnOp::Neg, e, ..
            } => self.infer(e)?,
            Expr::Binary { op, l, r, line } => match op {
                BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::LAnd
                | BinOp::LOr => Type::Boolean,
                BinOp::Add => {
                    let lt = self.infer(l)?;
                    let rt = self.infer(r)?;
                    if lt == Type::Str || rt == Type::Str {
                        Type::Str
                    } else {
                        self.promoted(&lt, &rt, *line)?
                    }
                }
                _ => {
                    let lt = self.infer(l)?;
                    let rt = self.infer(r)?;
                    if matches!(op, BinOp::Shl | BinOp::Shr | BinOp::Ushr) {
                        self.promote_shift(&lt)
                    } else {
                        self.promoted(&lt, &rt, *line)?
                    }
                }
            },
            Expr::Assign { .. } | Expr::IncDec { .. } => Type::Void,
            Expr::Cast { ty, .. } => ty.clone(),
        })
    }

    fn promote_shift(&self, lt: &Type) -> Type {
        if *lt == Type::Long {
            Type::Long
        } else {
            Type::Int
        }
    }

    fn promoted(&self, l: &Type, r: &Type, line: u32) -> Result<Type, CompileError> {
        use Type::*;
        Ok(match (l, r) {
            (Double, _) | (_, Double) if l.is_numeric() && r.is_numeric() => Double,
            (Long, _) | (_, Long) if l.is_numeric() && r.is_numeric() => Long,
            (a, b) if a.is_numeric() && b.is_numeric() => Int,
            (Boolean, Boolean) => Boolean, // & | ^ on booleans
            _ => return Err(self.err(line, format!("operator not applicable to {l:?} and {r:?}"))),
        })
    }

    // ---- expressions ----

    fn expr(&mut self, e: &Expr) -> Result<Type, CompileError> {
        match e {
            Expr::IntLit(v, _) => {
                self.m.ldc_int(*v as i32);
                Ok(Type::Int)
            }
            Expr::LongLit(v, _) => {
                self.m.ldc_long(*v);
                Ok(Type::Long)
            }
            Expr::DoubleLit(v, _) => {
                self.m.ldc_double(*v);
                Ok(Type::Double)
            }
            Expr::CharLit(c, _) => {
                self.m.ldc_int(*c as i32);
                Ok(Type::Char)
            }
            Expr::StrLit(s, _) => {
                self.m.ldc_string(s);
                Ok(Type::Str)
            }
            Expr::BoolLit(v, _) => {
                self.m.ldc_int(i32::from(*v));
                Ok(Type::Boolean)
            }
            Expr::Null(_) => {
                self.m.aconst_null();
                Ok(Type::Null)
            }
            Expr::This(line) => {
                if self.is_static {
                    return Err(self.err(*line, "this in a static context"));
                }
                self.m.aload(0);
                Ok(Type::Class(self.class.name.clone()))
            }
            Expr::Var(name, line) => {
                if let Some((idx, t)) = self.lookup_local(name) {
                    self.load_local(idx, &t);
                    return Ok(t);
                }
                let (decl, ty, is_static) = self
                    .table
                    .find_field(&self.class.name, name)
                    .ok_or_else(|| self.err(*line, format!("unknown variable {name}")))?;
                let desc = descriptor(self.table, &ty);
                if is_static {
                    self.m.getstatic(&decl, name, &desc);
                } else {
                    if self.is_static {
                        return Err(
                            self.err(*line, format!("instance field {name} in static context"))
                        );
                    }
                    self.m.aload(0);
                    self.m.getfield(&decl, name, &desc);
                }
                Ok(ty)
            }
            Expr::Field { target, name, line } => {
                // array.length
                if name == "length" {
                    if let Ok(Type::Array(_)) = self.infer(target) {
                        self.expr(target)?;
                        self.m.arraylength();
                        return Ok(Type::Int);
                    }
                }
                // Static field via class name.
                if let Expr::Var(cls, _) = target.as_ref() {
                    if self.lookup_local(cls).is_none() && self.table.class(cls).is_some() {
                        let (decl, ty, is_static) =
                            self.table.find_field(cls, name).ok_or_else(|| {
                                self.err(*line, format!("unknown field {cls}.{name}"))
                            })?;
                        if !is_static {
                            return Err(self.err(*line, format!("{cls}.{name} is not static")));
                        }
                        let desc = descriptor(self.table, &ty);
                        self.m.getstatic(&decl, name, &desc);
                        return Ok(ty);
                    }
                }
                let tt = self.expr(target)?;
                let Type::Class(cname) = &tt else {
                    return Err(self.err(*line, format!("no field {name} on {tt:?}")));
                };
                let (decl, ty, is_static) = self
                    .table
                    .find_field(cname, name)
                    .ok_or_else(|| self.err(*line, format!("unknown field {cname}.{name}")))?;
                if is_static {
                    return Err(self.err(*line, "static field via instance".to_string()));
                }
                let desc = descriptor(self.table, &ty);
                self.m.getfield(&decl, name, &desc);
                Ok(ty)
            }
            Expr::Index { array, index, line } => {
                let at = self.expr(array)?;
                let Type::Array(elem) = at else {
                    return Err(self.err(*line, format!("indexing non-array {at:?}")));
                };
                let it = self.expr(index)?;
                self.coerce(&it, &Type::Int, *line)?;
                self.array_load(&elem);
                Ok(*elem)
            }
            Expr::New { class, args, line } => {
                let bin = binary_name(self.table, class);
                self.m.new_object(&bin);
                self.m.dup();
                if let Some(info) = self.table.class(class) {
                    let arg_types = self.infer_args(args)?;
                    let ctor = self.table.find_ctor(class, &arg_types).ok_or_else(|| {
                        self.err(*line, format!("no matching constructor for {class}"))
                    })?;
                    for (a, want) in args.iter().zip(&ctor) {
                        let t = self.expr(a)?;
                        self.coerce(&t, want, *line)?;
                    }
                    let desc = method_descriptor(self.table, &ctor, &Type::Void);
                    self.m.invokespecial(&info.name, "<init>", &desc);
                } else {
                    // Builtin constructible classes.
                    match (class.as_str(), args.len()) {
                        ("StringBuilder", 0) | ("Object", 0) | ("Thread", 0) => {
                            self.m.invokespecial(&bin, "<init>", "()V");
                        }
                        ("String", 1) => {
                            let t = self.expr(&args[0])?;
                            let desc = match &t {
                                Type::Array(e) if **e == Type::Byte => "([B)V",
                                Type::Array(e) if **e == Type::Char => "([C)V",
                                other => {
                                    return Err(self.err(
                                        *line,
                                        format!(
                                            "new String(...) takes byte[] or char[], got {other:?}"
                                        ),
                                    ))
                                }
                            };
                            self.m.invokespecial(&bin, "<init>", desc);
                            return Ok(Type::Str);
                        }
                        _ => {
                            return Err(self.err(
                                *line,
                                format!("cannot construct {class} with {} args", args.len()),
                            ))
                        }
                    }
                }
                Ok(Type::Class(class.clone()))
            }
            Expr::NewArray { ty, len, line } => {
                let lt = self.expr(len)?;
                self.coerce(&lt, &Type::Int, *line)?;
                match ty {
                    Type::Int => self.m.newarray(10),
                    Type::Long => self.m.newarray(11),
                    Type::Double => self.m.newarray(7),
                    Type::Char => self.m.newarray(5),
                    Type::Byte => self.m.newarray(8),
                    Type::Boolean => self.m.newarray(4),
                    Type::Str => self.m.anewarray("java/lang/String"),
                    Type::Class(c) => {
                        let bin = binary_name(self.table, c);
                        self.m.anewarray(&bin);
                    }
                    other => {
                        return Err(self.err(*line, format!("cannot allocate array of {other:?}")))
                    }
                }
                Ok(Type::Array(Box::new(ty.clone())))
            }
            Expr::Unary { op, e, line } => match op {
                UnOp::Neg => {
                    let t = self.expr(e)?;
                    match t {
                        Type::Int | Type::Char | Type::Byte => {
                            self.m.ineg();
                            Ok(Type::Int)
                        }
                        Type::Long => {
                            self.m.simple(op::LNEG);
                            Ok(Type::Long)
                        }
                        Type::Double => {
                            self.m.simple(op::DNEG);
                            Ok(Type::Double)
                        }
                        other => Err(self.err(*line, format!("cannot negate {other:?}"))),
                    }
                }
                UnOp::Not => {
                    let t = self.expr(e)?;
                    if t != Type::Boolean {
                        return Err(self.err(*line, format!("! on {t:?}")));
                    }
                    self.m.ldc_int(1);
                    self.m.simple(op::IXOR);
                    Ok(Type::Boolean)
                }
            },
            Expr::Binary { op, l, r, line } => self.binary(*op, l, r, *line),
            Expr::Call { .. } => self.call(e),
            Expr::Cast { ty, e, line } => {
                let from = self.expr(e)?;
                self.primitive_cast(&from, ty, *line)?;
                Ok(ty.clone())
            }
            Expr::Assign { line, .. } | Expr::IncDec { line, .. } => Err(self.err(
                *line,
                "assignment is a statement in MiniJava, not an expression",
            )),
        }
    }

    fn primitive_cast(&mut self, from: &Type, to: &Type, line: u32) -> Result<(), CompileError> {
        use Type::*;
        let e = |g: &Gen<'_>| g.err(line, format!("cannot cast {from:?} to {to:?}"));
        // Normalize the source to int/long/double category first.
        match (from, to) {
            (a, b) if a == b => {}
            (Int | Char | Byte | Boolean, Int) => {}
            (Int | Char | Byte, Long) => self.m.simple(op::I2L),
            (Int | Char | Byte, Double) => self.m.simple(op::I2D),
            (Int | Byte, Char) => self.m.simple(op::I2C),
            (Int | Char, Byte) => self.m.simple(op::I2B),
            (Long, Int) => self.m.simple(op::L2I),
            (Long, Double) => self.m.simple(op::L2D),
            (Long, Char) => {
                self.m.simple(op::L2I);
                self.m.simple(op::I2C);
            }
            (Long, Byte) => {
                self.m.simple(op::L2I);
                self.m.simple(op::I2B);
            }
            (Double, Int) => self.m.simple(op::D2I),
            (Double, Long) => self.m.simple(op::D2L),
            (Double, Char) => {
                self.m.simple(op::D2I);
                self.m.simple(op::I2C);
            }
            _ => return Err(e(self)),
        }
        Ok(())
    }

    fn binary(&mut self, bop: BinOp, l: &Expr, r: &Expr, line: u32) -> Result<Type, CompileError> {
        use BinOp::*;
        match bop {
            LAnd | LOr => {
                // Short circuit, producing a boolean value.
                let short = self.m.new_label();
                let end = self.m.new_label();
                let lt = self.expr(l)?;
                if lt != Type::Boolean {
                    return Err(self.err(line, format!("&&/|| on {lt:?}")));
                }
                let branch_op = if bop == LAnd { op::IFEQ } else { op::IFNE };
                self.m.branch(branch_op, short);
                let rt = self.expr(r)?;
                if rt != Type::Boolean {
                    return Err(self.err(line, format!("&&/|| on {rt:?}")));
                }
                self.m.goto_(end);
                self.m.bind(short);
                self.m.ldc_int(i32::from(bop == LOr));
                self.m.bind(end);
                Ok(Type::Boolean)
            }
            Add => {
                let lt = self.infer(l)?;
                let rt = self.infer(r)?;
                if lt == Type::Str || rt == Type::Str {
                    return self.concat(l, r);
                }
                self.arith(bop, l, r, line)
            }
            Sub | Mul | Div | Rem | And | Or | Xor => self.arith(bop, l, r, line),
            Shl | Shr | Ushr => {
                let lt = self.expr(l)?;
                let result = self.promote_shift(&lt);
                if lt != result {
                    self.coerce(&lt, &result, line)?;
                }
                let rt = self.expr(r)?;
                // Shift distance is always int.
                if rt == Type::Long {
                    self.m.simple(op::L2I);
                } else if !matches!(rt, Type::Int | Type::Char | Type::Byte) {
                    return Err(self.err(line, format!("shift distance is {rt:?}")));
                }
                let code = match (bop, &result) {
                    (Shl, Type::Int) => op::ISHL,
                    (Shr, Type::Int) => op::ISHR,
                    (Ushr, Type::Int) => op::IUSHR,
                    (Shl, _) => op::LSHL,
                    (Shr, _) => op::LSHR,
                    (Ushr, _) => op::LUSHR,
                    _ => unreachable!(),
                };
                self.m.simple(code);
                Ok(result)
            }
            Lt | Le | Gt | Ge | Eq | Ne => self.comparison(bop, l, r, line),
        }
    }

    fn arith(&mut self, bop: BinOp, l: &Expr, r: &Expr, line: u32) -> Result<Type, CompileError> {
        use BinOp::*;
        let lt0 = self.infer(l)?;
        let rt0 = self.infer(r)?;
        let result = self.promoted(&lt0, &rt0, line)?;
        let lt = self.expr(l)?;
        self.coerce(&lt, &result, line).or_else(|_| {
            if lt == result {
                Ok(())
            } else {
                Err(self.err(line, format!("operand {lt:?} vs {result:?}")))
            }
        })?;
        let rt = self.expr(r)?;
        self.coerce(&rt, &result, line).or_else(|_| {
            if rt == result {
                Ok(())
            } else {
                Err(self.err(line, format!("operand {rt:?} vs {result:?}")))
            }
        })?;
        let code = match (&result, bop) {
            (Type::Int | Type::Boolean, Add) => op::IADD,
            (Type::Int | Type::Boolean, Sub) => op::ISUB,
            (Type::Int | Type::Boolean, Mul) => op::IMUL,
            (Type::Int | Type::Boolean, Div) => op::IDIV,
            (Type::Int | Type::Boolean, Rem) => op::IREM,
            (Type::Int | Type::Boolean, And) => op::IAND,
            (Type::Int | Type::Boolean, Or) => op::IOR,
            (Type::Int | Type::Boolean, Xor) => op::IXOR,
            (Type::Long, Add) => op::LADD,
            (Type::Long, Sub) => op::LSUB,
            (Type::Long, Mul) => op::LMUL,
            (Type::Long, Div) => op::LDIV,
            (Type::Long, Rem) => op::LREM,
            (Type::Long, And) => op::LAND,
            (Type::Long, Or) => op::LOR,
            (Type::Long, Xor) => op::LXOR,
            (Type::Double, Add) => op::DADD,
            (Type::Double, Sub) => op::DSUB,
            (Type::Double, Mul) => op::DMUL,
            (Type::Double, Div) => op::DDIV,
            (Type::Double, Rem) => op::DREM,
            _ => {
                return Err(self.err(
                    line,
                    format!("operator {bop:?} not applicable to {result:?}"),
                ))
            }
        };
        self.m.simple(code);
        Ok(if result == Type::Boolean {
            Type::Boolean
        } else {
            result
        })
    }

    fn comparison(
        &mut self,
        bop: BinOp,
        l: &Expr,
        r: &Expr,
        line: u32,
    ) -> Result<Type, CompileError> {
        use BinOp::*;
        let lt0 = self.infer(l)?;
        let rt0 = self.infer(r)?;
        let truel = self.m.new_label();
        let end = self.m.new_label();
        if lt0.is_reference() || rt0.is_reference() || lt0 == Type::Null || rt0 == Type::Null {
            if !matches!(bop, Eq | Ne) {
                return Err(self.err(line, "ordering comparison on references".to_string()));
            }
            self.expr(l)?;
            self.expr(r)?;
            let code = if bop == Eq {
                op::IF_ACMPEQ
            } else {
                op::IF_ACMPNE
            };
            self.m.branch(code, truel);
        } else if lt0 == Type::Boolean && rt0 == Type::Boolean {
            if !matches!(bop, Eq | Ne) {
                return Err(self.err(line, "ordering comparison on booleans".to_string()));
            }
            self.expr(l)?;
            self.expr(r)?;
            let code = if bop == Eq {
                op::IF_ICMPEQ
            } else {
                op::IF_ICMPNE
            };
            self.m.branch(code, truel);
        } else {
            let prom = self.promoted(&lt0, &rt0, line)?;
            let lt = self.expr(l)?;
            self.coerce(&lt, &prom, line).ok();
            let rt = self.expr(r)?;
            self.coerce(&rt, &prom, line).ok();
            match prom {
                Type::Long => {
                    self.m.simple(op::LCMP);
                    self.m.branch(zero_branch(bop), truel);
                }
                Type::Double => {
                    self.m.simple(op::DCMPL);
                    self.m.branch(zero_branch(bop), truel);
                }
                _ => {
                    self.m.branch(icmp_branch(bop), truel);
                }
            }
        }
        self.m.ldc_int(0);
        self.m.goto_(end);
        self.m.bind(truel);
        self.m.ldc_int(1);
        self.m.bind(end);
        Ok(Type::Boolean)
    }

    fn concat(&mut self, l: &Expr, r: &Expr) -> Result<Type, CompileError> {
        const SB: &str = "java/lang/StringBuilder";
        self.m.new_object(SB);
        self.m.dup();
        self.m.invokespecial(SB, "<init>", "()V");
        for side in [l, r] {
            let t = self.expr(side)?;
            let desc = match t {
                Type::Str => "(Ljava/lang/String;)Ljava/lang/StringBuilder;",
                Type::Int | Type::Byte => "(I)Ljava/lang/StringBuilder;",
                Type::Char => "(C)Ljava/lang/StringBuilder;",
                Type::Boolean => "(Z)Ljava/lang/StringBuilder;",
                Type::Long => "(J)Ljava/lang/StringBuilder;",
                Type::Double => "(D)Ljava/lang/StringBuilder;",
                _ => "(Ljava/lang/Object;)Ljava/lang/StringBuilder;",
            };
            self.m.invokevirtual(SB, "append", desc);
        }
        self.m.invokevirtual(SB, "toString", "()Ljava/lang/String;");
        Ok(Type::Str)
    }

    fn infer_args(&self, args: &[Expr]) -> Result<Vec<Type>, CompileError> {
        args.iter().map(|a| self.infer(a)).collect()
    }

    fn infer_call(&self, e: &Expr) -> Result<Type, CompileError> {
        let Expr::Call {
            target,
            name,
            args,
            line,
        } = e
        else {
            unreachable!()
        };
        let arg_types = self.infer_args(args)?;
        // System.out.println / print
        if let Some(t) = target {
            if is_system_out(t) {
                return Ok(Type::Void);
            }
            if let Expr::Var(cls, _) = t.as_ref() {
                if self.lookup_local(cls).is_none() && self.table.is_class_name(cls) {
                    if let Some((_, sig)) = self.table.find_method(cls, name, &arg_types) {
                        return Ok(sig.ret);
                    }
                    if let Some((_, _, _, ret)) = builtin_static(cls, name, &arg_types) {
                        return Ok(ret);
                    }
                    return Err(self.err(*line, format!("unknown method {cls}.{name}")));
                }
            }
            let tt = self.infer(t)?;
            return self.infer_instance_call(&tt, name, &arg_types, *line);
        }
        if let Some((_, sig)) = self.table.find_method(&self.class.name, name, &arg_types) {
            return Ok(sig.ret);
        }
        Err(self.err(*line, format!("unknown method {name}")))
    }

    fn infer_instance_call(
        &self,
        recv: &Type,
        name: &str,
        args: &[Type],
        line: u32,
    ) -> Result<Type, CompileError> {
        match recv {
            Type::Str => builtin_string_method(name, args)
                .map(|(_, _, ret)| ret)
                .ok_or_else(|| self.err(line, format!("unknown String method {name}"))),
            Type::Class(c) => {
                if let Some((_, sig)) = self.table.find_method(c, name, args) {
                    return Ok(sig.ret);
                }
                if let Some((_, _, ret)) = builtin_instance(self.table, c, name, args) {
                    return Ok(ret);
                }
                Err(self.err(line, format!("unknown method {c}.{name}")))
            }
            other => Err(self.err(line, format!("no method {name} on {other:?}"))),
        }
    }

    fn call(&mut self, e: &Expr) -> Result<Type, CompileError> {
        let Expr::Call {
            target,
            name,
            args,
            line,
        } = e
        else {
            unreachable!()
        };
        let line = *line;
        let arg_types = self.infer_args(args)?;

        if let Some(t) = target {
            // System.out.println(x) and friends.
            if is_system_out(t) {
                return self.system_out_call(t, name, args, line);
            }
            // Static call via class name.
            if let Expr::Var(cls, _) = t.as_ref() {
                if self.lookup_local(cls).is_none() && self.table.is_class_name(cls) {
                    // User static method.
                    if let Some((decl, sig)) = self.table.find_method(cls, name, &arg_types) {
                        if !sig.is_static {
                            return Err(self.err(line, format!("{cls}.{name} is not static")));
                        }
                        self.emit_args(args, &sig.params, line)?;
                        let desc = method_descriptor(self.table, &sig.params, &sig.ret);
                        self.m.invokestatic(&decl, name, &desc);
                        return Ok(sig.ret);
                    }
                    // Builtin static.
                    if let Some((bin, desc, params, ret)) = builtin_static(cls, name, &arg_types) {
                        self.emit_args(args, &params, line)?;
                        self.m.invokestatic(&bin, name, &desc);
                        return Ok(ret);
                    }
                    return Err(self.err(line, format!("unknown method {cls}.{name}")));
                }
            }
            // Instance call.
            let tt = self.expr(t)?;
            return self.instance_call(&tt, name, args, &arg_types, line);
        }

        // Unqualified call: method of the current class.
        let (decl, sig) = self
            .table
            .find_method(&self.class.name, name, &arg_types)
            .ok_or_else(|| self.err(line, format!("unknown method {name}")))?;
        if sig.is_static {
            self.emit_args(args, &sig.params, line)?;
            let desc = method_descriptor(self.table, &sig.params, &sig.ret);
            self.m.invokestatic(&decl, name, &desc);
        } else {
            if self.is_static {
                return Err(self.err(line, format!("instance method {name} in static context")));
            }
            self.m.aload(0);
            self.emit_args(args, &sig.params, line)?;
            let desc = method_descriptor(self.table, &sig.params, &sig.ret);
            self.m.invokevirtual(&decl, name, &desc);
        }
        Ok(sig.ret)
    }

    fn emit_args(&mut self, args: &[Expr], params: &[Type], line: u32) -> Result<(), CompileError> {
        if args.len() != params.len() {
            return Err(self.err(line, "argument count mismatch".to_string()));
        }
        for (a, p) in args.iter().zip(params) {
            let t = self.expr(a)?;
            self.coerce(&t, p, line)?;
        }
        Ok(())
    }

    fn system_out_call(
        &mut self,
        target: &Expr,
        name: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<Type, CompileError> {
        let Expr::Field { name: stream, .. } = target else {
            unreachable!()
        };
        if name != "println" && name != "print" {
            return Err(self.err(line, format!("unknown PrintStream method {name}")));
        }
        self.m
            .getstatic("java/lang/System", stream, "Ljava/io/PrintStream;");
        let desc = match args.len() {
            0 => {
                if name != "println" {
                    return Err(self.err(line, "print() needs an argument".to_string()));
                }
                "()V".to_string()
            }
            1 => {
                let t = self.expr(&args[0])?;
                match t {
                    Type::Str => "(Ljava/lang/String;)V",
                    Type::Int | Type::Byte => "(I)V",
                    Type::Char => "(C)V",
                    Type::Boolean => "(Z)V",
                    Type::Long => "(J)V",
                    Type::Double => "(D)V",
                    _ => "(Ljava/lang/Object;)V",
                }
                .to_string()
            }
            _ => return Err(self.err(line, "too many arguments".to_string())),
        };
        self.m.invokevirtual("java/io/PrintStream", name, &desc);
        Ok(Type::Void)
    }

    fn instance_call(
        &mut self,
        recv: &Type,
        name: &str,
        args: &[Expr],
        arg_types: &[Type],
        line: u32,
    ) -> Result<Type, CompileError> {
        match recv {
            Type::Str => {
                let (desc, params, ret) = builtin_string_method(name, arg_types)
                    .ok_or_else(|| self.err(line, format!("unknown String method {name}")))?;
                self.emit_args(args, &params, line)?;
                self.m.invokevirtual("java/lang/String", name, &desc);
                Ok(ret)
            }
            Type::Class(c) => {
                // User method (walking the chain).
                if let Some((decl, sig)) = self.table.find_method(c, name, arg_types) {
                    if sig.is_static {
                        return Err(self.err(line, format!("static method {name} via instance")));
                    }
                    self.emit_args(args, &sig.params, line)?;
                    let desc = method_descriptor(self.table, &sig.params, &sig.ret);
                    self.m.invokevirtual(&decl, name, &desc);
                    return Ok(sig.ret);
                }
                // Builtin instance methods (Object/Thread/StringBuilder).
                if let Some((bin_and_desc, params, ret)) =
                    builtin_instance(self.table, c, name, arg_types)
                {
                    self.emit_args(args, &params, line)?;
                    let (bin, desc) = bin_and_desc;
                    self.m.invokevirtual(&bin, name, &desc);
                    return Ok(ret);
                }
                Err(self.err(line, format!("unknown method {c}.{name}")))
            }
            other => Err(self.err(line, format!("no method {name} on {other:?}"))),
        }
    }
}

fn is_system_out(e: &Expr) -> bool {
    matches!(e, Expr::Field { target, name, .. }
        if matches!(target.as_ref(), Expr::Var(v, _) if v == "System")
            && (name == "out" || name == "err"))
}

fn icmp_branch(bop: BinOp) -> u8 {
    match bop {
        BinOp::Lt => op::IF_ICMPLT,
        BinOp::Le => op::IF_ICMPLE,
        BinOp::Gt => op::IF_ICMPGT,
        BinOp::Ge => op::IF_ICMPGE,
        BinOp::Eq => op::IF_ICMPEQ,
        _ => op::IF_ICMPNE,
    }
}

fn zero_branch(bop: BinOp) -> u8 {
    match bop {
        BinOp::Lt => op::IFLT,
        BinOp::Le => op::IFLE,
        BinOp::Gt => op::IFGT,
        BinOp::Ge => op::IFGE,
        BinOp::Eq => op::IFEQ,
        _ => op::IFNE,
    }
}

/// Built-in static methods: `(binary class, descriptor, params, ret)`.
fn builtin_static(
    cls: &str,
    name: &str,
    args: &[Type],
) -> Option<(String, String, Vec<Type>, Type)> {
    use Type::*;
    let numeric = |t: &Type| -> Type {
        match t {
            Double => Double,
            Long => Long,
            _ => Int,
        }
    };
    let r = |bin: &str, desc: &str, params: Vec<Type>, ret: Type| {
        Some((bin.to_string(), desc.to_string(), params, ret))
    };
    match (cls, name) {
        ("Math", "sqrt") => r("java/lang/Math", "(D)D", vec![Double], Double),
        ("Math", "floor") => r("java/lang/Math", "(D)D", vec![Double], Double),
        ("Math", "ceil") => r("java/lang/Math", "(D)D", vec![Double], Double),
        ("Math", "log") => r("java/lang/Math", "(D)D", vec![Double], Double),
        ("Math", "sin") => r("java/lang/Math", "(D)D", vec![Double], Double),
        ("Math", "cos") => r("java/lang/Math", "(D)D", vec![Double], Double),
        ("Math", "pow") => r("java/lang/Math", "(DD)D", vec![Double, Double], Double),
        ("Math", "random") => r("java/lang/Math", "()D", vec![], Double),
        ("Math", "abs") => {
            let t = numeric(args.first()?);
            let d = match t {
                Double => "(D)D",
                Long => "(J)J",
                _ => "(I)I",
            };
            r("java/lang/Math", d, vec![t.clone()], t)
        }
        ("Math", "max") | ("Math", "min") => {
            let t = match (numeric(args.first()?), numeric(args.get(1)?)) {
                (Double, _) | (_, Double) => Double,
                (Long, _) | (_, Long) => Long,
                _ => Int,
            };
            let d = match t {
                Double => "(DD)D",
                Long => "(JJ)J",
                _ => "(II)I",
            };
            r("java/lang/Math", d, vec![t.clone(), t.clone()], t)
        }
        ("Integer", "parseInt") => r("java/lang/Integer", "(Ljava/lang/String;)I", vec![Str], Int),
        ("Integer", "toString") => r("java/lang/Integer", "(I)Ljava/lang/String;", vec![Int], Str),
        ("Integer", "toHexString") => {
            r("java/lang/Integer", "(I)Ljava/lang/String;", vec![Int], Str)
        }
        ("Long", "parseLong") => r("java/lang/Long", "(Ljava/lang/String;)J", vec![Str], Long),
        ("Long", "toString") => r("java/lang/Long", "(J)Ljava/lang/String;", vec![Long], Str),
        ("Double", "parseDouble") => r(
            "java/lang/Double",
            "(Ljava/lang/String;)D",
            vec![Str],
            Double,
        ),
        ("Double", "toString") => r(
            "java/lang/Double",
            "(D)Ljava/lang/String;",
            vec![Double],
            Str,
        ),
        ("String", "valueOf") => {
            let t = args.first()?;
            let (d, p) = match t {
                Int | Byte => ("(I)Ljava/lang/String;", Int),
                Char => ("(C)Ljava/lang/String;", Char),
                Boolean => ("(Z)Ljava/lang/String;", Boolean),
                Long => ("(J)Ljava/lang/String;", Long),
                Double => ("(D)Ljava/lang/String;", Double),
                _ => return None,
            };
            r("java/lang/String", d, vec![p], Str)
        }
        ("System", "currentTimeMillis") => r("java/lang/System", "()J", vec![], Long),
        ("System", "nanoTime") => r("java/lang/System", "()J", vec![], Long),
        ("System", "exit") => r("java/lang/System", "(I)V", vec![Int], Void),
        ("System", "arraycopy") => {
            let arr = args.first()?.clone();
            r(
                "java/lang/System",
                "(Ljava/lang/Object;ILjava/lang/Object;II)V",
                vec![arr.clone(), Int, arr, Int, Int],
                Void,
            )
        }
        ("Thread", "sleep") => r("java/lang/Thread", "(J)V", vec![Long], Void),
        ("Thread", "yield") => r("java/lang/Thread", "()V", vec![], Void),
        ("Thread", "currentThread") => r(
            "java/lang/Thread",
            "()Ljava/lang/Thread;",
            vec![],
            Class("Thread".into()),
        ),
        ("Console", "readLine") => r(
            "doppio/runtime/Console",
            "()Ljava/lang/String;",
            vec![],
            Str,
        ),
        ("Console", "readByte") => r("doppio/runtime/Console", "()I", vec![], Int),
        ("FileSystem", "readFileBytes") => r(
            "doppio/runtime/FileSystem",
            "(Ljava/lang/String;)[B",
            vec![Str],
            Array(Box::new(Byte)),
        ),
        ("FileSystem", "writeFileBytes") => r(
            "doppio/runtime/FileSystem",
            "(Ljava/lang/String;[B)V",
            vec![Str, Array(Box::new(Byte))],
            Void,
        ),
        ("FileSystem", "listDir") => r(
            "doppio/runtime/FileSystem",
            "(Ljava/lang/String;)[Ljava/lang/String;",
            vec![Str],
            Array(Box::new(Str)),
        ),
        ("FileSystem", "exists") => r(
            "doppio/runtime/FileSystem",
            "(Ljava/lang/String;)Z",
            vec![Str],
            Boolean,
        ),
        ("FileSystem", "fileSize") => r(
            "doppio/runtime/FileSystem",
            "(Ljava/lang/String;)I",
            vec![Str],
            Int,
        ),
        ("FileSystem", "mkdir") => r(
            "doppio/runtime/FileSystem",
            "(Ljava/lang/String;)V",
            vec![Str],
            Void,
        ),
        ("FileSystem", "unlink") => r(
            "doppio/runtime/FileSystem",
            "(Ljava/lang/String;)V",
            vec![Str],
            Void,
        ),
        ("JS", "eval") => r(
            "doppio/runtime/JS",
            "(Ljava/lang/String;)Ljava/lang/String;",
            vec![Str],
            Str,
        ),
        ("Socket", "connect") => r(
            "doppio/net/Socket",
            "(Ljava/lang/String;I)I",
            vec![Str, Int],
            Int,
        ),
        ("Socket", "write") => r(
            "doppio/net/Socket",
            "(I[B)V",
            vec![Int, Array(Box::new(Byte))],
            Void,
        ),
        ("Socket", "available") => r("doppio/net/Socket", "(I)I", vec![Int], Int),
        ("Socket", "read") => r(
            "doppio/net/Socket",
            "(II)[B",
            vec![Int, Int],
            Array(Box::new(Byte)),
        ),
        ("Socket", "close") => r("doppio/net/Socket", "(I)V", vec![Int], Void),
        _ => None,
    }
}

/// Built-in `String` instance methods: `(descriptor, params, ret)`.
fn builtin_string_method(name: &str, args: &[Type]) -> Option<(String, Vec<Type>, Type)> {
    use Type::*;
    let r = |d: &str, p: Vec<Type>, ret: Type| Some((d.to_string(), p, ret));
    match (name, args.len()) {
        ("length", 0) => r("()I", vec![], Int),
        ("hashCode", 0) => r("()I", vec![], Int),
        ("charAt", 1) => r("(I)C", vec![Int], Char),
        ("equals", 1) => r("(Ljava/lang/Object;)Z", vec![args[0].clone()], Boolean),
        ("compareTo", 1) => r("(Ljava/lang/String;)I", vec![Str], Int),
        ("concat", 1) => r("(Ljava/lang/String;)Ljava/lang/String;", vec![Str], Str),
        ("substring", 1) => r("(I)Ljava/lang/String;", vec![Int], Str),
        ("substring", 2) => r("(II)Ljava/lang/String;", vec![Int, Int], Str),
        ("startsWith", 1) => r("(Ljava/lang/String;)Z", vec![Str], Boolean),
        ("indexOf", 1) => match args[0] {
            Str => r("(Ljava/lang/String;)I", vec![Str], Int),
            _ => r("(I)I", vec![Int], Int),
        },
        ("toCharArray", 0) => r("()[C", vec![], Array(Box::new(Char))),
        ("getBytes", 0) => r("()[B", vec![], Array(Box::new(Byte))),
        ("intern", 0) => r("()Ljava/lang/String;", vec![], Str),
        ("toString", 0) => r("()Ljava/lang/String;", vec![], Str),
        _ => None,
    }
}

/// Built-in instance methods on class types: `((binary class,
/// descriptor), params, ret)`.
fn builtin_instance(
    table: &ClassTable,
    cls: &str,
    name: &str,
    args: &[Type],
) -> Option<((String, String), Vec<Type>, Type)> {
    use Type::*;
    let r = |bin: &str, d: &str, p: Vec<Type>, ret: Type| {
        Some(((bin.to_string(), d.to_string()), p, ret))
    };
    // Thread methods, available on Thread and its user subclasses.
    let is_threadish = cls == "Thread"
        || table.is_subclass(cls, "Thread")
        || table
            .class(cls)
            .map(|_| {
                // user class whose chain ends in "Thread"
                let mut cur = Some(cls.to_string());
                while let Some(c) = cur {
                    match table.class(&c) {
                        Some(i) => cur = i.super_name.clone(),
                        None => return c == "Thread",
                    }
                }
                false
            })
            .unwrap_or(false);
    if is_threadish {
        match (name, args.len()) {
            ("start", 0) => return r("java/lang/Thread", "()V", vec![], Void),
            ("join", 0) => return r("java/lang/Thread", "()V", vec![], Void),
            ("isAlive", 0) => return r("java/lang/Thread", "()Z", vec![], Boolean),
            ("run", 0) => return r("java/lang/Thread", "()V", vec![], Void),
            _ => {}
        }
    }
    if cls == "StringBuilder" {
        match (name, args.first()) {
            ("toString", None) => {
                return r(
                    "java/lang/StringBuilder",
                    "()Ljava/lang/String;",
                    vec![],
                    Str,
                )
            }
            ("length", None) => return r("java/lang/StringBuilder", "()I", vec![], Int),
            ("append", Some(t)) => {
                let sb = Class("StringBuilder".into());
                let (d, p) = match t {
                    Str => ("(Ljava/lang/String;)Ljava/lang/StringBuilder;", Str),
                    Int | Byte => ("(I)Ljava/lang/StringBuilder;", Int),
                    Char => ("(C)Ljava/lang/StringBuilder;", Char),
                    Boolean => ("(Z)Ljava/lang/StringBuilder;", Boolean),
                    Long => ("(J)Ljava/lang/StringBuilder;", Long),
                    Double => ("(D)Ljava/lang/StringBuilder;", Double),
                    other => (
                        "(Ljava/lang/Object;)Ljava/lang/StringBuilder;",
                        other.clone(),
                    ),
                };
                return r("java/lang/StringBuilder", d, vec![p], sb);
            }
            _ => {}
        }
    }
    // Object methods, on any class type.
    match (name, args.len()) {
        ("hashCode", 0) => r("java/lang/Object", "()I", vec![], Int),
        ("toString", 0) => r("java/lang/Object", "()Ljava/lang/String;", vec![], Str),
        ("equals", 1) => r(
            "java/lang/Object",
            "(Ljava/lang/Object;)Z",
            vec![args[0].clone()],
            Boolean,
        ),
        ("wait", 0) => r("java/lang/Object", "()V", vec![], Void),
        ("notify", 0) => r("java/lang/Object", "()V", vec![], Void),
        ("notifyAll", 0) => r("java/lang/Object", "()V", vec![], Void),
        _ => None,
    }
}
