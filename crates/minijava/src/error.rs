//! Compiler errors.

use std::fmt;

/// Compilation phase that produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Lexing.
    Lex,
    /// Parsing.
    Parse,
    /// Type checking / resolution.
    Check,
    /// Code generation.
    Codegen,
}

/// A MiniJava compilation error.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// The phase.
    pub phase: Phase,
    /// 1-based source line (0 = unknown).
    pub line: u32,
    /// Message.
    pub message: String,
}

impl CompileError {
    /// Lexer error.
    pub fn lex(line: u32, message: String) -> CompileError {
        CompileError {
            phase: Phase::Lex,
            line,
            message,
        }
    }

    /// Parser error.
    pub fn parse(line: u32, message: String) -> CompileError {
        CompileError {
            phase: Phase::Parse,
            line,
            message,
        }
    }

    /// Type/resolution error.
    pub fn check(line: u32, message: String) -> CompileError {
        CompileError {
            phase: Phase::Check,
            line,
            message,
        }
    }

    /// Code generation error.
    pub fn codegen(line: u32, message: String) -> CompileError {
        CompileError {
            phase: Phase::Codegen,
            line,
            message,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Check => "type",
            Phase::Codegen => "codegen",
        };
        if self.line > 0 {
            write!(f, "{phase} error at line {}: {}", self.line, self.message)
        } else {
            write!(f, "{phase} error: {}", self.message)
        }
    }
}

impl std::error::Error for CompileError {}
