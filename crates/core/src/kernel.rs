//! The Doppio kernel: a Browsix-style process layer over one engine.
//!
//! The paper's endgame is an in-browser OS substrate: many guest
//! programs sharing one event loop, file system, and network. The
//! [`Kernel`] is that substrate's core. It owns the virtual event loop
//! (an [`Engine`]), one [`DoppioRuntime`] whose wait-for graph spans
//! every guest, and a process table. Today's single-JVM embedding
//! becomes just one kind of [`Process`] spawned on it:
//!
//! * [`Kernel::spawn`] starts a guest (any [`GuestThread`] — a JVM
//!   main thread, a JS-style closure) with a pid, argv, and
//!   environment. Threads the guest spawns inherit its pid.
//! * [`Kernel::pipe`] creates a bounded byte pipe; [`SpawnOptions`]
//!   wires pipes as a process's stdin/stdout. Reads block on empty,
//!   writes block on full (backpressure), closing the write end
//!   delivers EOF, and a process's ends are released at exit.
//! * [`Kernel::kill`] delivers signals, [`Kernel::waitpid`] collects
//!   an [`ExitStatus`] and reaps the zombie.
//!
//! Everything is scheduled deterministically on the shared virtual
//! clock: same seed, same schedule, byte-identical transcripts. And
//! because every guest blocks through the one shared [`WaitGraph`],
//! deadlock blame crosses process boundaries — a pipe-full writer
//! stuck on a reader that is `waitpid`-ing the writer is reported as a
//! cycle naming both pids (see
//! [`Resource::PipeWrite`]/[`Resource::Child`]).

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::{Rc, Weak};

use doppio_faults::{FaultPlan, FsFault};
use doppio_jsengine::{Browser, Engine, EngineBuilder, ObservabilityOptions};
use doppio_trace::{cat, ArgValue, SpanContext};

use crate::runtime::{
    DoppioRuntime, GuestThread, RuntimeError, ThreadContext, ThreadId, ThreadStep,
};
use crate::waitgraph::Resource;

/// Default pipe buffer size, in bytes (the traditional 64 KiB).
pub const DEFAULT_PIPE_CAPACITY: usize = 65536;

/// Why a kernel call could not be carried out.
///
/// These are the *user-reachable* failure modes — a stale [`Pid`]
/// held after the child was reaped, a forged or long-gone [`PipeId`],
/// a double-closed host pipe end. They used to panic; a multi-tenant
/// host must instead see them as ordinary errors (the POSIX analogs
/// are `ESRCH`, `ECHILD`, `EBADF`). Genuine host programming errors
/// (e.g. attaching two engines) still panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelError {
    /// No process with this pid was ever spawned on this kernel.
    UnknownPid(Pid),
    /// The process has already exited (it cannot be signalled or
    /// exited again).
    AlreadyExited(Pid),
    /// The child's status was already collected by an earlier
    /// `waitpid` (the POSIX `ECHILD` case).
    AlreadyReaped(Pid),
    /// No pipe with this id was ever created on this kernel.
    UnknownPipe(PipeId),
    /// The host end of the pipe was already closed, or was released
    /// to a process by spawn wiring.
    PipeEndClosed(PipeId),
    /// An injected transient fault (see [`Kernel::set_pipe_faults`]):
    /// the operation failed spuriously and may be retried, like a
    /// driver-level `EIO`.
    TransientFault(PipeId),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnknownPid(p) => write!(f, "unknown pid {p}"),
            KernelError::AlreadyExited(p) => write!(f, "process {p} has already exited"),
            KernelError::AlreadyReaped(p) => {
                write!(f, "pid {p} was already reaped by an earlier waitpid")
            }
            KernelError::UnknownPipe(p) => write!(f, "unknown {p}"),
            KernelError::PipeEndClosed(p) => {
                write!(f, "host end of {p} already closed or released")
            }
            KernelError::TransientFault(p) => {
                write!(f, "transient I/O fault injected on {p}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// A process identifier. Pids start at 1 and are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The signals the kernel can deliver. All of them terminate the
/// process (there are no guest-installable handlers); they differ in
/// how the [`ExitStatus`] reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Interrupt (Ctrl-C).
    Int,
    /// Polite termination request.
    Term,
    /// Immediate, unconditional kill.
    Kill,
    /// Wrote to a pipe with no readers.
    Pipe,
}

impl Signal {
    /// Conventional name (`SIGKILL`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            Signal::Int => "SIGINT",
            Signal::Term => "SIGTERM",
            Signal::Kill => "SIGKILL",
            Signal::Pipe => "SIGPIPE",
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a process ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitStatus {
    /// Ran to completion (or called `exit`) with this code.
    Exited(i32),
    /// Terminated by a signal.
    Signaled(Signal),
}

impl ExitStatus {
    /// The exit code, if the process exited normally.
    pub fn code(&self) -> Option<i32> {
        match self {
            ExitStatus::Exited(c) => Some(*c),
            ExitStatus::Signaled(_) => None,
        }
    }

    /// Shell-style success: exited with code 0.
    pub fn success(&self) -> bool {
        matches!(self, ExitStatus::Exited(0))
    }
}

impl fmt::Display for ExitStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitStatus::Exited(c) => write!(f, "exit({c})"),
            ExitStatus::Signaled(s) => write!(f, "killed({s})"),
        }
    }
}

/// Identifies a kernel pipe. Both "ends" are operations on the same
/// id; end *ownership* (who counts as a reader/writer for EOF and
/// broken-pipe purposes) is established by [`SpawnOptions`] wiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PipeId(pub u64);

impl fmt::Display for PipeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipe#{}", self.0)
    }
}

/// What a process is spawned with: its name, argv, environment, the
/// process group whose FS namespace it shares, and stdin/stdout pipe
/// wiring.
#[derive(Debug, Clone, Default)]
pub struct SpawnOptions {
    /// Process name (shows up in trace lanes, blame lines, reports).
    pub name: String,
    /// Arguments (`args` of the guest's `main`).
    pub argv: Vec<String>,
    /// Environment variables.
    pub env: Vec<(String, String)>,
    /// Process group. Processes in one group share a mountable FS
    /// namespace (see `doppio_fs::FsNamespaces`).
    pub group: Option<String>,
    /// Pipe to read standard input from. The process becomes a holder
    /// of the read end (the host's implicit read end is released).
    pub stdin: Option<PipeId>,
    /// Pipe standard output writes to. The process becomes a holder
    /// of the write end (the host's implicit write end is released).
    pub stdout: Option<PipeId>,
}

impl SpawnOptions {
    /// Options for a process called `name`, no argv/env/wiring.
    pub fn new(name: impl Into<String>) -> SpawnOptions {
        SpawnOptions {
            name: name.into(),
            ..SpawnOptions::default()
        }
    }

    /// Append one argument.
    pub fn arg(mut self, a: impl Into<String>) -> SpawnOptions {
        self.argv.push(a.into());
        self
    }

    /// Set an environment variable.
    pub fn env(mut self, k: impl Into<String>, v: impl Into<String>) -> SpawnOptions {
        self.env.push((k.into(), v.into()));
        self
    }

    /// Join a process group (shared FS namespace).
    pub fn group(mut self, g: impl Into<String>) -> SpawnOptions {
        self.group = Some(g.into());
        self
    }

    /// Wire standard input to `pipe`.
    pub fn stdin(mut self, pipe: PipeId) -> SpawnOptions {
        self.stdin = Some(pipe);
        self
    }

    /// Wire standard output to `pipe`.
    pub fn stdout(mut self, pipe: PipeId) -> SpawnOptions {
        self.stdout = Some(pipe);
        self
    }
}

/// Outcome of a guest pipe read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipeRead {
    /// Bytes were available (up to the requested max).
    Data(Vec<u8>),
    /// The buffer is empty and every write end is closed.
    Eof,
    /// The buffer is empty but writers remain: the calling thread has
    /// been registered as a waiter and must return
    /// [`ThreadStep::Blocked`].
    WouldBlock,
}

/// Outcome of a guest pipe write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeWrite {
    /// This many bytes were accepted (possibly fewer than offered).
    Wrote(usize),
    /// The buffer is full: the calling thread has been registered as
    /// a waiter and must return [`ThreadStep::Blocked`].
    WouldBlock,
    /// Every read end is closed; the bytes can never be consumed.
    Broken,
}

/// Outcome of a guest `waitpid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPid {
    /// The child has exited; its zombie has been reaped.
    Exited(ExitStatus),
    /// The child is still running: the calling thread has been
    /// registered as a waiter and must return
    /// [`ThreadStep::Blocked`].
    WouldBlock,
}

/// One row of the kernel's process table, for reports.
#[derive(Debug, Clone)]
pub struct ProcessSummary {
    /// Process id.
    pub pid: u32,
    /// Process name.
    pub name: String,
    /// Arguments it was spawned with.
    pub argv: Vec<String>,
    /// Process group, if any.
    pub group: Option<String>,
    /// Rendered exit status (`exit(0)`, `killed(SIGKILL)`), or
    /// `running`.
    pub status: String,
    /// Main-thread slices executed.
    pub slices: u64,
    /// Bytes this process read from pipes.
    pub pipe_in: u64,
    /// Bytes this process wrote to pipes.
    pub pipe_out: u64,
    /// Virtual time of the spawn.
    pub spawned_at_ns: u64,
    /// Virtual time of the exit, if it happened.
    pub exited_at_ns: Option<u64>,
}

type ExitProbe = Rc<dyn Fn() -> Option<ExitStatus>>;

struct Proc {
    name: String,
    argv: Vec<String>,
    #[allow(dead_code)]
    env: Vec<(String, String)>,
    group: Option<String>,
    main: ThreadId,
    status: Option<ExitStatus>,
    reaped: bool,
    wait_waiters: Vec<ThreadId>,
    exit_probe: Option<ExitProbe>,
    /// Exit code requested via [`Kernel::exit`] before all threads
    /// finished (closure guests have no other channel for it).
    exit_code: Option<i32>,
    stdout: Option<u64>,
    slices: u64,
    pipe_in: u64,
    pipe_out: u64,
    spawned_at_ns: u64,
    exited_at_ns: Option<u64>,
    /// Causal root of the process's request trace (None when causal
    /// tracing is off).
    ctx: Option<SpanContext>,
    /// Tail of the main thread's slice-span chain; the parent of the
    /// next slice span, so inter-slice gaps are attributable edges.
    last_span: Option<SpanContext>,
    /// Pending spawn flow edge, consumed by the first main slice.
    spawn_flow: Option<u64>,
    /// Pending exit flow edge, consumed by the reaping `waitpid`.
    exit_flow: Option<u64>,
}

struct PipeState {
    buf: VecDeque<u8>,
    capacity: usize,
    /// Pids holding the write end.
    writers: Vec<u32>,
    /// Pids holding the read end.
    readers: Vec<u32>,
    /// The host still holds this end (true until a process claims it
    /// via spawn wiring, or the host closes it explicitly).
    host_write: bool,
    host_read: bool,
    read_waiters: Vec<ThreadId>,
    write_waiters: Vec<ThreadId>,
    /// Bytes ever written (diagnostics).
    total_in: u64,
    /// Pending causal flow tokens: one per traced write, consumed (in
    /// order) by reads. Bounded so a never-read pipe cannot grow it.
    flows: VecDeque<(u64, SpanContext)>,
}

/// Cap on un-consumed causal flow tokens per pipe; beyond it new
/// writes stop minting edges (the DAG loses precision, never memory).
const PIPE_FLOW_TOKEN_CAP: usize = 64;

impl PipeState {
    fn write_closed(&self) -> bool {
        self.writers.is_empty() && !self.host_write
    }

    fn read_closed(&self) -> bool {
        self.readers.is_empty() && !self.host_read
    }
}

struct Host {
    engine: Engine,
    runtime: DoppioRuntime,
}

struct KernelInner {
    host: Option<Host>,
    obs: ObservabilityOptions,
    next_pid: u32,
    next_pipe: u64,
    procs: BTreeMap<u32, Proc>,
    pipes: BTreeMap<u64, PipeState>,
    pipe_faults: Option<FaultPlan>,
    /// Why each thread last blocked, by thread id — consumed when the
    /// thread's next slice begins and recorded as that slice span's
    /// `wait` category (pipe backpressure, a child, a fault delay).
    wait_reasons: BTreeMap<usize, &'static str>,
}

/// The process host. Cheaply cloneable handle; strictly
/// single-threaded, like everything on the simulated browser thread.
///
/// A kernel starts engine-less: attach one with
/// [`EngineBuilder::build_on`](BuildOnKernel::build_on) (full builder
/// configuration) or [`Kernel::on_engine`] (an engine you already
/// have). A kernel that is used without either lazily creates a stock
/// Chrome engine carrying the kernel's [`ObservabilityOptions`].
#[derive(Clone)]
pub struct Kernel {
    inner: Rc<RefCell<KernelInner>>,
}

impl Default for Kernel {
    fn default() -> Kernel {
        Kernel::new()
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Kernel")
            .field("processes", &inner.procs.len())
            .field("pipes", &inner.pipes.len())
            .field("attached", &inner.host.is_some())
            .finish()
    }
}

impl Kernel {
    /// An engine-less kernel. The engine attaches on first use (see
    /// the type docs).
    pub fn new() -> Kernel {
        Kernel {
            inner: Rc::new(RefCell::new(KernelInner {
                host: None,
                obs: ObservabilityOptions::default(),
                next_pid: 1,
                next_pipe: 1,
                procs: BTreeMap::new(),
                pipes: BTreeMap::new(),
                pipe_faults: None,
                wait_reasons: BTreeMap::new(),
            })),
        }
    }

    /// A kernel hosting its processes on an existing engine.
    pub fn on_engine(engine: &Engine) -> Kernel {
        let k = Kernel::new();
        k.attach_engine(engine.clone());
        k
    }

    /// Set the kernel-level [`ObservabilityOptions`]. They apply to
    /// the lazily-created default engine, and act as fallback defaults
    /// for [`build_on`](BuildOnKernel::build_on). Must be called
    /// before the engine attaches.
    pub fn observability(self, obs: ObservabilityOptions) -> Kernel {
        {
            let mut inner = self.inner.borrow_mut();
            assert!(
                inner.host.is_none(),
                "Kernel::observability must be set before the engine attaches"
            );
            inner.obs = obs;
        }
        self
    }

    fn attach_engine(&self, engine: Engine) {
        let mut inner = self.inner.borrow_mut();
        assert!(inner.host.is_none(), "kernel already has an engine");
        let runtime = DoppioRuntime::new(&engine);
        let weak: Weak<RefCell<KernelInner>> = Rc::downgrade(&self.inner);
        runtime.set_thread_exit_hook(move |tid, tag| {
            if let Some(inner) = weak.upgrade() {
                Kernel { inner }.on_thread_finished(tid, tag);
            }
        });
        inner.host = Some(Host { engine, runtime });
    }

    fn ensure_host(&self) {
        let (needs, obs) = {
            let inner = self.inner.borrow();
            (inner.host.is_none(), inner.obs.clone())
        };
        if needs {
            let engine = EngineBuilder::new(Browser::Chrome)
                .observability(obs)
                .build();
            self.attach_engine(engine);
        }
    }

    /// The engine whose event loop hosts every process.
    pub fn engine(&self) -> Engine {
        self.ensure_host();
        self.inner.borrow().host.as_ref().unwrap().engine.clone()
    }

    /// The shared runtime (schedule-exploration harnesses install
    /// seeded/replay schedulers here before spawning).
    pub fn runtime(&self) -> DoppioRuntime {
        self.ensure_host();
        self.inner.borrow().host.as_ref().unwrap().runtime.clone()
    }

    // ------------------------------------------------------------
    // Pipes
    // ------------------------------------------------------------

    /// Inject faults into guest pipe operations. Each `read_pipe` /
    /// `write_pipe` call consults the plan (drawing from the fs
    /// probability fields and budget): a transient `EIO` surfaces as
    /// [`KernelError::TransientFault`], a slow completion parks the
    /// calling thread for the drawn virtual delay before it retries.
    /// Opt-in: a kernel without a plan never draws.
    pub fn set_pipe_faults(&self, plan: FaultPlan) {
        self.inner.borrow_mut().pipe_faults = Some(plan);
    }

    /// Consult the fault plan for one guest pipe op on a pipe that is
    /// known to exist. `Err` means fail the op; `Ok(true)` means the
    /// caller must report WouldBlock (the thread sleeps out the
    /// injected delay on a timer); `Ok(false)` is normal service.
    fn draw_pipe_fault(
        &self,
        ctx: &mut ThreadContext<'_>,
        op: &'static str,
        pipe: PipeId,
    ) -> Result<bool, KernelError> {
        let plan = {
            let inner = self.inner.borrow();
            match &inner.pipe_faults {
                Some(p) if inner.pipes.contains_key(&pipe.0) => p.clone(),
                _ => return Ok(false),
            }
        };
        match plan.pipe_fault(&self.engine(), op, pipe.0) {
            None => Ok(false),
            Some(FsFault::TransientEio) => Err(KernelError::TransientFault(pipe)),
            Some(FsFault::SlowCompletion(ns)) => {
                // Park the thread on a timer instead of the pipe's
                // waiter list: nothing about the pipe's state will
                // change, the delay itself is what it waits for. The
                // Async resource has no owner, so the wait-for graph
                // never sees a spurious deadlock cycle.
                ctx.note_block(
                    Resource::Async(format!("pipe.fault({pipe})")),
                    format!("pipe.{op}({pipe})"),
                );
                let rt = ctx.runtime().clone();
                let me = ctx.thread_id();
                self.note_wait_reason(me, "wait.fault");
                self.engine()
                    .set_timeout(ns as f64 / 1e6, move |_| rt.wake(me));
                Ok(true)
            }
            Some(FsFault::QuotaExceeded) => Ok(false), // pipes have no quota
        }
    }

    /// Create a pipe with the default capacity. Both ends start held
    /// by the host; spawn wiring transfers them to processes.
    pub fn pipe(&self) -> PipeId {
        self.pipe_with_capacity(DEFAULT_PIPE_CAPACITY)
    }

    /// Create a pipe with an explicit buffer capacity (small
    /// capacities make backpressure easy to exercise in tests).
    pub fn pipe_with_capacity(&self, capacity: usize) -> PipeId {
        assert!(capacity > 0, "pipe capacity must be positive");
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_pipe;
        inner.next_pipe += 1;
        inner.pipes.insert(
            id,
            PipeState {
                buf: VecDeque::new(),
                capacity,
                writers: Vec::new(),
                readers: Vec::new(),
                host_write: true,
                host_read: true,
                read_waiters: Vec::new(),
                write_waiters: Vec::new(),
                total_in: 0,
                flows: VecDeque::new(),
            },
        );
        PipeId(id)
    }

    /// Guest-side pipe read (called from inside a slice). On
    /// [`PipeRead::WouldBlock`] the calling thread has been registered
    /// as a waiter and its wait-for edge recorded; it must return
    /// [`ThreadStep::Blocked`]. Errors on a pipe id this kernel never
    /// created.
    pub fn read_pipe(
        &self,
        ctx: &mut ThreadContext<'_>,
        pipe: PipeId,
        max: usize,
    ) -> Result<PipeRead, KernelError> {
        let me = ctx.thread_id();
        let my_pid = ctx.runtime().thread_tag(me);
        if self.draw_pipe_fault(ctx, "read", pipe)? {
            return Ok(PipeRead::WouldBlock);
        }
        let (result, wakes, flow_tokens) = {
            let mut inner = self.inner.borrow_mut();
            let p = inner
                .pipes
                .get_mut(&pipe.0)
                .ok_or(KernelError::UnknownPipe(pipe))?;
            if !p.buf.is_empty() {
                let n = max.min(p.buf.len());
                let data: Vec<u8> = p.buf.drain(..n).collect();
                // The read consumes every pending causal write token:
                // byte-precise matching is not worth tracking — any
                // writer whose bytes are still buffered happened-before
                // this read.
                let tokens: Vec<(u64, SpanContext)> = p.flows.drain(..).collect();
                let wakes = if p.buf.len() < p.capacity {
                    std::mem::take(&mut p.write_waiters)
                } else {
                    Vec::new()
                };
                if let Some(pid) = my_pid {
                    if let Some(proc) = inner.procs.get_mut(&(pid as u32)) {
                        proc.pipe_in += n as u64;
                    }
                }
                (PipeRead::Data(data), wakes, tokens)
            } else if p.write_closed() {
                (PipeRead::Eof, Vec::new(), Vec::new())
            } else {
                p.read_waiters.push(me);
                (PipeRead::WouldBlock, Vec::new(), Vec::new())
            }
        };
        if matches!(result, PipeRead::WouldBlock) {
            ctx.note_block(Resource::PipeRead(pipe.0), format!("pipe.read({pipe})"));
            self.note_wait_reason(me, "wait.pipe.read");
        }
        if !flow_tokens.is_empty() {
            let engine = self.engine();
            let causal = engine.causal();
            if let Some(dst) = causal.current() {
                let now = engine.now_ns();
                for (fid, _src) in flow_tokens {
                    causal.flow_end("pipe", fid, dst, now, me.0 as u32 + 2);
                }
            }
        }
        let rt = ctx.runtime().clone();
        for w in wakes {
            rt.wake(w);
        }
        Ok(result)
    }

    /// Guest-side pipe write. Accepts as many bytes as fit
    /// ([`PipeWrite::Wrote`] may be a short count — loop to finish).
    /// On [`PipeWrite::WouldBlock`] the thread must return
    /// [`ThreadStep::Blocked`]; it is woken when a reader drains the
    /// buffer. [`PipeWrite::Broken`] means every read end is closed.
    /// Errors on a pipe id this kernel never created.
    pub fn write_pipe(
        &self,
        ctx: &mut ThreadContext<'_>,
        pipe: PipeId,
        data: &[u8],
    ) -> Result<PipeWrite, KernelError> {
        let me = ctx.thread_id();
        let my_pid = ctx.runtime().thread_tag(me);
        if self.draw_pipe_fault(ctx, "write", pipe)? {
            return Ok(PipeWrite::WouldBlock);
        }
        let (result, wakes) = {
            let mut inner = self.inner.borrow_mut();
            let p = inner
                .pipes
                .get_mut(&pipe.0)
                .ok_or(KernelError::UnknownPipe(pipe))?;
            if p.read_closed() {
                (PipeWrite::Broken, Vec::new())
            } else {
                let space = p.capacity.saturating_sub(p.buf.len());
                if space == 0 {
                    p.write_waiters.push(me);
                    (PipeWrite::WouldBlock, Vec::new())
                } else {
                    let n = space.min(data.len());
                    p.buf.extend(&data[..n]);
                    p.total_in += n as u64;
                    let wakes = std::mem::take(&mut p.read_waiters);
                    if let Some(pid) = my_pid {
                        if let Some(proc) = inner.procs.get_mut(&(pid as u32)) {
                            proc.pipe_out += n as u64;
                        }
                    }
                    (PipeWrite::Wrote(n), wakes)
                }
            }
        };
        if matches!(result, PipeWrite::WouldBlock) {
            ctx.note_block(Resource::PipeWrite(pipe.0), format!("pipe.write({pipe})"));
            self.note_wait_reason(me, "wait.pipe.write");
        }
        if matches!(result, PipeWrite::Wrote(n) if n > 0) {
            self.push_pipe_flow(pipe, me.0 as u32 + 2);
        }
        let rt = ctx.runtime().clone();
        for w in wakes {
            rt.wake(w);
        }
        Ok(result)
    }

    /// Mint a causal `pipe` flow edge for bytes just written, leaving
    /// the ambient request context, and queue its token on the pipe
    /// for whichever read consumes it. No-op when causal tracing is
    /// off, no request is ambient, or the pipe's token queue is full.
    fn push_pipe_flow(&self, pipe: PipeId, lane: u32) {
        let engine = {
            let inner = self.inner.borrow();
            match inner.host.as_ref() {
                Some(h) if h.engine.causal().enabled() => h.engine.clone(),
                _ => return,
            }
        };
        let causal = engine.causal();
        let Some(src) = causal.current() else { return };
        {
            let inner = self.inner.borrow();
            match inner.pipes.get(&pipe.0) {
                Some(p) if p.flows.len() < PIPE_FLOW_TOKEN_CAP => {}
                _ => return,
            }
        }
        let fid = causal.flow_start("pipe", src, engine.now_ns(), lane);
        if let Some(p) = self.inner.borrow_mut().pipes.get_mut(&pipe.0) {
            p.flows.push_back((fid, src));
        }
    }

    /// Append bytes on behalf of `pid` without blocking (used by
    /// stdout hooks that run mid-interpretation and cannot yield).
    /// The buffer may transiently exceed capacity; backpressure is
    /// applied at the next slice boundary of the feeding process.
    /// Errors on a pipe id this kernel never created.
    pub fn feed_pipe(&self, pid: Pid, pipe: PipeId, data: &[u8]) -> Result<(), KernelError> {
        let (wakes, rt) = {
            let mut inner = self.inner.borrow_mut();
            let p = inner
                .pipes
                .get_mut(&pipe.0)
                .ok_or(KernelError::UnknownPipe(pipe))?;
            if p.read_closed() {
                // Nobody will ever read it; drop the bytes.
                return Ok(());
            }
            p.buf.extend(data);
            p.total_in += data.len() as u64;
            let wakes = std::mem::take(&mut p.read_waiters);
            if let Some(proc) = inner.procs.get_mut(&pid.0) {
                proc.pipe_out += data.len() as u64;
            }
            (wakes, inner.host.as_ref().map(|h| h.runtime.clone()))
        };
        if !data.is_empty() {
            // The stdout hook runs inside the feeding process's slice,
            // so the ambient context is that slice's span.
            self.push_pipe_flow(pipe, 1);
        }
        if let Some(rt) = rt {
            for w in wakes {
                rt.wake(w);
            }
        }
        Ok(())
    }

    /// Host-side write (feeding a process's stdin from outside).
    /// Unbounded: the host cannot block. Errors if the pipe is
    /// unknown, or the host's write end was closed or released to a
    /// process.
    pub fn host_write(&self, pipe: PipeId, data: &[u8]) -> Result<(), KernelError> {
        let (wakes, rt) = {
            let mut inner = self.inner.borrow_mut();
            let p = inner
                .pipes
                .get_mut(&pipe.0)
                .ok_or(KernelError::UnknownPipe(pipe))?;
            if !p.host_write {
                return Err(KernelError::PipeEndClosed(pipe));
            }
            p.buf.extend(data);
            p.total_in += data.len() as u64;
            (
                std::mem::take(&mut p.read_waiters),
                inner.host.as_ref().map(|h| h.runtime.clone()),
            )
        };
        if let Some(rt) = rt {
            for w in wakes {
                rt.wake(w);
            }
        }
        Ok(())
    }

    /// Close the host's write end. When no process holds one either,
    /// readers see EOF. Errors if the pipe is unknown or the end was
    /// already closed/released (the double-close case).
    pub fn host_close_write(&self, pipe: PipeId) -> Result<(), KernelError> {
        let (wakes, rt) = {
            let mut inner = self.inner.borrow_mut();
            let p = inner
                .pipes
                .get_mut(&pipe.0)
                .ok_or(KernelError::UnknownPipe(pipe))?;
            if !p.host_write {
                return Err(KernelError::PipeEndClosed(pipe));
            }
            p.host_write = false;
            let wakes = if p.write_closed() {
                std::mem::take(&mut p.read_waiters)
            } else {
                Vec::new()
            };
            (wakes, inner.host.as_ref().map(|h| h.runtime.clone()))
        };
        if let Some(rt) = rt {
            for w in wakes {
                rt.wake(w);
            }
        }
        Ok(())
    }

    /// Close the host's read end. When no process holds one either,
    /// writers see [`PipeWrite::Broken`]. Errors if the pipe is
    /// unknown or the end was already closed/released (the
    /// double-close case).
    pub fn host_close_read(&self, pipe: PipeId) -> Result<(), KernelError> {
        let (wakes, rt) = {
            let mut inner = self.inner.borrow_mut();
            let p = inner
                .pipes
                .get_mut(&pipe.0)
                .ok_or(KernelError::UnknownPipe(pipe))?;
            if !p.host_read {
                return Err(KernelError::PipeEndClosed(pipe));
            }
            p.host_read = false;
            let wakes = if p.read_closed() {
                // Blocked writers must wake to observe Broken.
                std::mem::take(&mut p.write_waiters)
            } else {
                Vec::new()
            };
            (wakes, inner.host.as_ref().map(|h| h.runtime.clone()))
        };
        if let Some(rt) = rt {
            for w in wakes {
                rt.wake(w);
            }
        }
        Ok(())
    }

    /// Drain everything currently buffered (host-side collection of a
    /// pipeline's final output). Wakes blocked writers. Errors on a
    /// pipe id this kernel never created.
    pub fn host_read(&self, pipe: PipeId) -> Result<Vec<u8>, KernelError> {
        let (data, wakes, rt) = {
            let mut inner = self.inner.borrow_mut();
            let p = inner
                .pipes
                .get_mut(&pipe.0)
                .ok_or(KernelError::UnknownPipe(pipe))?;
            let data: Vec<u8> = p.buf.drain(..).collect();
            // The host has no causal context; pending write tokens are
            // consumed without an edge rather than left to dangle.
            p.flows.clear();
            (
                data,
                std::mem::take(&mut p.write_waiters),
                inner.host.as_ref().map(|h| h.runtime.clone()),
            )
        };
        if let Some(rt) = rt {
            for w in wakes {
                rt.wake(w);
            }
        }
        Ok(data)
    }

    /// Bytes currently buffered in `pipe`.
    pub fn pipe_len(&self, pipe: PipeId) -> Result<usize, KernelError> {
        self.inner
            .borrow()
            .pipes
            .get(&pipe.0)
            .map(|p| p.buf.len())
            .ok_or(KernelError::UnknownPipe(pipe))
    }

    /// Whether every write end of `pipe` is closed (readers see EOF
    /// once the buffer drains).
    pub fn pipe_write_closed(&self, pipe: PipeId) -> Result<bool, KernelError> {
        self.inner
            .borrow()
            .pipes
            .get(&pipe.0)
            .map(|p| p.write_closed())
            .ok_or(KernelError::UnknownPipe(pipe))
    }

    /// Re-derive the wait-graph owner edges of one pipe from its
    /// current end holders: the write-end holder's main thread
    /// resolves blocked reads, the read-end holder's resolves blocked
    /// writes. (With several holders the first — lowest-pid — is
    /// blamed; any of them could resolve the wait.)
    fn refresh_pipe_owners(&self, pipe: u64) {
        let (rt, read_owner, write_owner) = {
            let inner = self.inner.borrow();
            let Some(host) = inner.host.as_ref() else {
                return;
            };
            let p = &inner.pipes[&pipe];
            let main_of = |pids: &[u32]| {
                pids.iter()
                    .filter_map(|pid| inner.procs.get(pid))
                    .filter(|pr| pr.status.is_none())
                    .map(|pr| pr.main)
                    .next()
            };
            (
                host.runtime.clone(),
                main_of(&p.writers),
                main_of(&p.readers),
            )
        };
        match read_owner {
            Some(t) => rt.set_resource_owner(Resource::PipeRead(pipe), t),
            None => rt.clear_resource_owner(&Resource::PipeRead(pipe)),
        }
        match write_owner {
            Some(t) => rt.set_resource_owner(Resource::PipeWrite(pipe), t),
            None => rt.clear_resource_owner(&Resource::PipeWrite(pipe)),
        }
    }

    // ------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------

    /// Spawn a guest process: `main` becomes the process's main
    /// thread, tagged with a fresh pid (threads it spawns inherit the
    /// tag). The process exits when its exit probe reports completion
    /// (see [`set_exit_probe`](Self::set_exit_probe)), when every
    /// tagged thread finishes, or when [`exit`](Self::exit) /
    /// [`kill`](Self::kill) end it early.
    ///
    /// Panics on stdin/stdout wiring naming a pipe this kernel never
    /// created — a host programming error. Use
    /// [`try_spawn`](Self::try_spawn) to get an `Err` instead.
    pub fn spawn(&self, opts: SpawnOptions, main: Box<dyn GuestThread>) -> Process {
        match self.try_spawn(opts, main) {
            Ok(p) => p,
            Err(e) => panic!("spawn: {e}"),
        }
    }

    /// [`spawn`](Self::spawn), reporting bad pipe wiring as an error
    /// instead of panicking. On `Err` no pid is allocated and no pipe
    /// end changes hands.
    pub fn try_spawn(
        &self,
        opts: SpawnOptions,
        main: Box<dyn GuestThread>,
    ) -> Result<Process, KernelError> {
        self.ensure_host();
        let (rt, engine, pid) = {
            let mut inner = self.inner.borrow_mut();
            // Validate the wiring before allocating the pid or moving
            // any pipe end.
            for p in [opts.stdin, opts.stdout].into_iter().flatten() {
                if !inner.pipes.contains_key(&p.0) {
                    return Err(KernelError::UnknownPipe(p));
                }
            }
            let pid = inner.next_pid;
            inner.next_pid += 1;
            // Transfer pipe ends from the host to the process.
            if let Some(p) = opts.stdin {
                let pipe = inner.pipes.get_mut(&p.0).expect("validated above");
                pipe.readers.push(pid);
                pipe.host_read = false;
            }
            if let Some(p) = opts.stdout {
                let pipe = inner.pipes.get_mut(&p.0).expect("validated above");
                pipe.writers.push(pid);
                pipe.host_write = false;
            }
            let host = inner.host.as_ref().unwrap();
            (host.runtime.clone(), host.engine.clone(), pid)
        };
        // Kernel spawn is a causal ingress point: a spawn with no
        // ambient request roots a fresh `proc:<name>` trace; a spawn
        // performed on behalf of a request joins that request's trace.
        // Either way a `spawn` flow edge connects the spawner to the
        // child's first slice.
        let causal = engine.causal();
        let (causal_ctx, spawn_flow) = if causal.enabled() {
            let now = engine.now_ns();
            let (root, src) = match causal.current() {
                Some(parent) => (causal.child(parent), parent),
                None => {
                    let root = causal.begin_request(format!("proc:{}", opts.name), now);
                    (root, root)
                }
            };
            let fid = causal.flow_start("spawn", src, now, 1);
            (Some(root), Some(fid))
        } else {
            (None, None)
        };
        let wrapper = ProcThread {
            kernel: self.clone(),
            pid,
            name: opts.name.clone(),
            inner: main,
        };
        let tid = rt.spawn_tagged(
            format!("pid {pid} {}", opts.name),
            pid as u64,
            Box::new(wrapper),
        );
        {
            let mut inner = self.inner.borrow_mut();
            inner.procs.insert(
                pid,
                Proc {
                    name: opts.name.clone(),
                    argv: opts.argv.clone(),
                    env: opts.env.clone(),
                    group: opts.group.clone(),
                    main: tid,
                    status: None,
                    reaped: false,
                    wait_waiters: Vec::new(),
                    exit_probe: None,
                    exit_code: None,
                    stdout: opts.stdout.map(|p| p.0),
                    slices: 0,
                    pipe_in: 0,
                    pipe_out: 0,
                    spawned_at_ns: engine.now_ns(),
                    exited_at_ns: None,
                    ctx: causal_ctx,
                    last_span: None,
                    spawn_flow,
                    exit_flow: None,
                },
            );
        }
        // waitpid on this pid resolves through the child's main thread.
        rt.set_resource_owner(Resource::Child(pid as u64), tid);
        if let Some(p) = opts.stdin {
            self.refresh_pipe_owners(p.0);
        }
        if let Some(p) = opts.stdout {
            self.refresh_pipe_owners(p.0);
        }
        engine.metrics().counter("proc.spawned").inc();
        let tracer = engine.tracer();
        if tracer.enabled() {
            tracer.instant(
                cat::PROC,
                "proc.spawn",
                engine.now_ns(),
                tid.0 as u32 + 2, // the process's thread lane
                vec![
                    ("pid", ArgValue::U64(pid as u64)),
                    ("name", ArgValue::Str(opts.name.into())),
                    ("argv", ArgValue::Str(opts.argv.join(" ").into())),
                ],
            );
        }
        Ok(Process {
            kernel: self.clone(),
            pid: Pid(pid),
        })
    }

    /// [`spawn`](Self::spawn) for a closure guest (the "JS process"
    /// form): `f` is called once per slice, exactly like
    /// [`FnThread`](crate::FnThread).
    pub fn spawn_fn(
        &self,
        opts: SpawnOptions,
        f: impl FnMut(&mut ThreadContext<'_>) -> ThreadStep + 'static,
    ) -> Process {
        let name = opts.name.clone();
        self.spawn(opts, Box::new(crate::FnThread::named(name, f)))
    }

    /// Add an auxiliary thread to an existing process (e.g. an stdin
    /// pump). It is tagged with the pid and killed with the process,
    /// but does not keep the process alive on its own once an exit
    /// probe reports completion.
    pub fn spawn_aux(
        &self,
        pid: Pid,
        name: impl Into<String>,
        thread: Box<dyn GuestThread>,
    ) -> ThreadId {
        let rt = self.runtime();
        let name = name.into();
        let wrapper = AuxSliceThread {
            kernel: self.clone(),
            pid: pid.0,
            inner: thread,
            last: None,
        };
        rt.spawn_tagged(format!("pid {pid} {name}"), pid.0 as u64, Box::new(wrapper))
    }

    /// [`spawn_aux`](Self::spawn_aux) for a closure thread.
    pub fn spawn_fn_aux(
        &self,
        pid: Pid,
        name: impl Into<String>,
        f: impl FnMut(&mut ThreadContext<'_>) -> ThreadStep + 'static,
    ) -> ThreadId {
        let name = name.into();
        self.spawn_aux(pid, name.clone(), Box::new(crate::FnThread::named(name, f)))
    }

    /// Install the process's exit probe: consulted after every
    /// main-thread slice and whenever one of the process's threads
    /// finishes. Returning `Some(status)` ends the process (remaining
    /// threads are killed). Guest runtimes with their own lifecycle —
    /// the JVM's `System.exit`, live-thread accounting — report
    /// completion through this.
    /// Errors on an unknown pid.
    pub fn set_exit_probe(
        &self,
        pid: Pid,
        probe: impl Fn() -> Option<ExitStatus> + 'static,
    ) -> Result<(), KernelError> {
        let mut inner = self.inner.borrow_mut();
        let proc = inner
            .procs
            .get_mut(&pid.0)
            .ok_or(KernelError::UnknownPid(pid))?;
        proc.exit_probe = Some(Rc::new(probe));
        Ok(())
    }

    /// End `pid` with `code` (the `exit(2)` analog; also the way
    /// closure guests report a nonzero status). Remaining threads are
    /// killed, pipe ends released, waiters woken. Errors on an
    /// unknown pid or a process that already exited.
    pub fn exit(&self, pid: Pid, code: i32) -> Result<(), KernelError> {
        self.check_live(pid)?;
        self.finish_process(pid, ExitStatus::Exited(code));
        Ok(())
    }

    /// `Err` unless `pid` names a spawned, still-running process.
    fn check_live(&self, pid: Pid) -> Result<(), KernelError> {
        let inner = self.inner.borrow();
        let proc = inner
            .procs
            .get(&pid.0)
            .ok_or(KernelError::UnknownPid(pid))?;
        if proc.status.is_some() {
            return Err(KernelError::AlreadyExited(pid));
        }
        Ok(())
    }

    /// Deliver a signal. Every signal terminates the process (no
    /// guest handlers); `waitpid` observes `killed(SIG…)`. Errors on
    /// an unknown pid or a process that already exited.
    pub fn kill(&self, pid: Pid, signal: Signal) -> Result<(), KernelError> {
        self.check_live(pid)?;
        {
            let inner = self.inner.borrow();
            if let Some(host) = inner.host.as_ref() {
                let tracer = host.engine.tracer();
                if tracer.enabled() {
                    tracer.instant(
                        cat::PROC,
                        "proc.signal",
                        host.engine.now_ns(),
                        1,
                        vec![
                            ("pid", ArgValue::U64(pid.0 as u64)),
                            ("signal", ArgValue::from(signal.name())),
                        ],
                    );
                }
                host.engine.metrics().counter("proc.signaled").inc();
            }
        }
        // Signal delivery is a causal edge from the sender's ambient
        // context to the victim's slice chain; termination is
        // synchronous here, so the edge begins and ends at `now`.
        {
            let (engine, victim) = {
                let inner = self.inner.borrow();
                let host = inner.host.as_ref();
                let victim = inner.procs.get(&pid.0).and_then(|p| p.last_span.or(p.ctx));
                (host.map(|h| h.engine.clone()), victim)
            };
            if let (Some(engine), Some(victim)) = (engine, victim) {
                let causal = engine.causal();
                if let Some(src) = causal.current() {
                    let now = engine.now_ns();
                    let fid = causal.flow_start("signal", src, now, 1);
                    causal.flow_end("signal", fid, victim, now, 1);
                }
            }
        }
        self.finish_process(pid, ExitStatus::Signaled(signal));
        Ok(())
    }

    /// Guest-side wait for a child (called from inside a slice). On
    /// [`WaitPid::WouldBlock`] the thread must return
    /// [`ThreadStep::Blocked`]; it is woken when the child exits. On
    /// [`WaitPid::Exited`] the zombie has been reaped. Errors on an
    /// unknown pid, or a child whose status an earlier `waitpid`
    /// already collected (the `ECHILD` analog).
    pub fn waitpid(&self, ctx: &mut ThreadContext<'_>, pid: Pid) -> Result<WaitPid, KernelError> {
        let (result, exit_flow) = {
            let mut inner = self.inner.borrow_mut();
            let proc = inner
                .procs
                .get_mut(&pid.0)
                .ok_or(KernelError::UnknownPid(pid))?;
            match proc.status {
                Some(status) => {
                    if proc.reaped {
                        return Err(KernelError::AlreadyReaped(pid));
                    }
                    proc.reaped = true;
                    (WaitPid::Exited(status), proc.exit_flow.take())
                }
                None => {
                    proc.wait_waiters.push(ctx.thread_id());
                    (WaitPid::WouldBlock, None)
                }
            }
        };
        if matches!(result, WaitPid::WouldBlock) {
            ctx.note_block(Resource::Child(pid.0 as u64), format!("waitpid({pid})"));
            self.note_wait_reason(ctx.thread_id(), "wait.child");
        }
        if let Some(fid) = exit_flow {
            // The reap closes the child's exit flow at the waiter: the
            // child's last slice happened-before this waitpid return.
            let engine = self.engine();
            let causal = engine.causal();
            if let Some(dst) = causal.current() {
                causal.flow_end(
                    "exit",
                    fid,
                    dst,
                    engine.now_ns(),
                    ctx.thread_id().0 as u32 + 2,
                );
            }
        }
        Ok(result)
    }

    /// Host-side status peek (does not reap).
    pub fn status(&self, pid: Pid) -> Option<ExitStatus> {
        self.inner.borrow().procs.get(&pid.0).and_then(|p| p.status)
    }

    /// Exited-but-unreaped processes, in pid order.
    pub fn zombies(&self) -> Vec<Pid> {
        self.inner
            .borrow()
            .procs
            .iter()
            .filter(|(_, p)| p.status.is_some() && !p.reaped)
            .map(|(pid, _)| Pid(*pid))
            .collect()
    }

    /// The process table, in pid order (feeds the per-process
    /// [`RunReport`](crate::report::RunReport) section).
    pub fn process_table(&self) -> Vec<ProcessSummary> {
        self.inner
            .borrow()
            .procs
            .iter()
            .map(|(pid, p)| ProcessSummary {
                pid: *pid,
                name: p.name.clone(),
                argv: p.argv.clone(),
                group: p.group.clone(),
                status: p
                    .status
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "running".to_string()),
                slices: p.slices,
                pipe_in: p.pipe_in,
                pipe_out: p.pipe_out,
                spawned_at_ns: p.spawned_at_ns,
                exited_at_ns: p.exited_at_ns,
            })
            .collect()
    }

    /// Whether every spawned process has exited.
    pub fn all_exited(&self) -> bool {
        self.inner
            .borrow()
            .procs
            .values()
            .all(|p| p.status.is_some())
    }

    /// Drive the event loop until every process has exited. Errors
    /// with per-pid blame if the wait-for graph latches a cycle or the
    /// loop drains with live processes blocked.
    pub fn run(&self) -> Result<(), RuntimeError> {
        self.ensure_host();
        let (engine, rt) = (self.engine(), self.runtime());
        rt.start();
        loop {
            if self.all_exited() {
                return Ok(());
            }
            if rt.deadlock_report().is_some() {
                return Err(rt.deadlock_error());
            }
            if !engine.run_one() {
                if self.all_exited() {
                    return Ok(());
                }
                return Err(rt.deadlock_error());
            }
        }
    }

    /// Drive the event loop until `pid` exits (other processes keep
    /// running as their events interleave).
    pub fn run_until_exit(&self, pid: Pid) -> Result<ExitStatus, RuntimeError> {
        self.ensure_host();
        let (engine, rt) = (self.engine(), self.runtime());
        rt.start();
        loop {
            if let Some(status) = self.status(pid) {
                return Ok(status);
            }
            if rt.deadlock_report().is_some() {
                return Err(rt.deadlock_error());
            }
            if !engine.run_one() {
                if let Some(status) = self.status(pid) {
                    return Ok(status);
                }
                return Err(rt.deadlock_error());
            }
        }
    }

    // ------------------------------------------------------------
    // Lifecycle internals
    // ------------------------------------------------------------

    /// Record why `tid` is about to block; its next slice span carries
    /// the reason, so the critical-path walk can attribute the gap.
    fn note_wait_reason(&self, tid: ThreadId, reason: &'static str) {
        let inner = self.inner.borrow();
        if let Some(host) = inner.host.as_ref() {
            if host.engine.causal().enabled() {
                drop(inner);
                self.inner.borrow_mut().wait_reasons.insert(tid.0, reason);
            }
        }
    }

    /// Begin the causal slice span for a thread of `pid`: mint a child
    /// span of the process trace (chained off `local_last`, or the
    /// proc's main chain when `main`), install it as the ambient
    /// context, and consume any pending spawn flow. Returns `None`
    /// when causal tracing is off or the pid is untracked.
    fn causal_slice_begin(
        &self,
        pid: u32,
        local_last: Option<SpanContext>,
        tid: ThreadId,
        main: bool,
    ) -> Option<SliceSpan> {
        let engine = {
            let inner = self.inner.borrow();
            let host = inner.host.as_ref()?;
            if !host.engine.causal().enabled() {
                return None;
            }
            host.engine.clone()
        };
        let (root, tail, spawn_flow, wait) = {
            let mut inner = self.inner.borrow_mut();
            let wait = inner.wait_reasons.remove(&tid.0);
            let proc = inner.procs.get_mut(&pid)?;
            let root = proc.ctx?;
            let tail = if main { proc.last_span } else { local_last };
            let spawn_flow = if main { proc.spawn_flow.take() } else { None };
            (root, tail.unwrap_or(root), spawn_flow, wait)
        };
        let causal = engine.causal();
        let span = causal.child(root);
        let prev = causal.set_current(Some(span));
        let now = engine.now_ns();
        let lane = tid.0 as u32 + 2;
        if let Some(fid) = spawn_flow {
            causal.flow_end("spawn", fid, span, now, lane);
        }
        Some(SliceSpan {
            ctx: span,
            parent: tail.span_id,
            start_ns: now,
            wait,
            prev,
            lane,
            main,
        })
    }

    /// Close the slice span opened by [`causal_slice_begin`]: emit the
    /// attributed `interp` span, restore the ambient context, and
    /// advance the chain tail.
    fn causal_slice_end(
        &self,
        pid: u32,
        slice: Option<SliceSpan>,
        local_last: &mut Option<SpanContext>,
    ) {
        let Some(s) = slice else { return };
        let engine = self.engine();
        let causal = engine.causal();
        causal.span(
            "interp",
            s.ctx,
            s.parent,
            s.start_ns,
            engine.now_ns(),
            s.lane,
            s.wait,
        );
        causal.set_current(s.prev);
        if s.main {
            if let Some(p) = self.inner.borrow_mut().procs.get_mut(&pid) {
                p.last_span = Some(s.ctx);
            }
        } else {
            *local_last = Some(s.ctx);
        }
    }

    /// Per-slice bookkeeping for a process main thread: slice count,
    /// exit-probe check, and stdout backpressure (a process whose
    /// stdout pipe is at/over capacity parks until a reader drains
    /// it — flow control at slice granularity for guests whose output
    /// hooks cannot block mid-interpretation).
    fn after_main_slice(
        &self,
        pid: u32,
        ctx: &mut ThreadContext<'_>,
        step: ThreadStep,
    ) -> ThreadStep {
        let probe = {
            let mut inner = self.inner.borrow_mut();
            match inner.procs.get_mut(&pid) {
                Some(p) => {
                    p.slices += 1;
                    p.exit_probe.clone()
                }
                None => None,
            }
        };
        if let Some(probe) = probe {
            if let Some(status) = probe() {
                self.finish_process(Pid(pid), status);
                return ThreadStep::Finished;
            }
        }
        if step == ThreadStep::Yielded {
            let park_on = {
                let mut inner = self.inner.borrow_mut();
                let stdout = inner.procs.get(&pid).and_then(|p| p.stdout);
                match stdout.and_then(|out| inner.pipes.get_mut(&out).map(|p| (out, p))) {
                    Some((out, p)) => {
                        if p.buf.len() >= p.capacity && !p.read_closed() {
                            p.write_waiters.push(ctx.thread_id());
                            Some(out)
                        } else {
                            None
                        }
                    }
                    None => None,
                }
            };
            if let Some(out) = park_on {
                ctx.note_block(Resource::PipeWrite(out), "stdout");
                self.note_wait_reason(ctx.thread_id(), "wait.pipe.write");
                return ThreadStep::Blocked;
            }
        }
        step
    }

    /// The runtime's thread-exit hook: when a tagged thread finishes,
    /// consult the process's exit probe; absent a probe, the process
    /// exits once every tagged thread has finished.
    fn on_thread_finished(&self, _tid: ThreadId, tag: Option<u64>) {
        let Some(tag) = tag else { return };
        let pid = tag as u32;
        let (probe, default_code, rt) = {
            let inner = self.inner.borrow();
            let Some(proc) = inner.procs.get(&pid) else {
                return;
            };
            if proc.status.is_some() {
                return;
            }
            (
                proc.exit_probe.clone(),
                proc.exit_code.unwrap_or(0),
                inner.host.as_ref().map(|h| h.runtime.clone()),
            )
        };
        if let Some(probe) = probe {
            if let Some(status) = probe() {
                self.finish_process(Pid(pid), status);
            }
            return;
        }
        if let Some(rt) = rt {
            if rt.tag_all_finished(tag) {
                self.finish_process(Pid(pid), ExitStatus::Exited(default_code));
            }
        }
    }

    /// Terminate a process: record its status (first writer wins),
    /// kill its remaining threads, release its pipe ends (EOF for
    /// readers, broken pipe for writers), and wake `waitpid` waiters.
    fn finish_process(&self, pid: Pid, status: ExitStatus) {
        let Some((rt, engine, threads, wait_waiters, pipe_wakes, touched_pipes, causal_tail)) = ({
            let mut inner = self.inner.borrow_mut();
            let Some(host) = inner.host.as_ref() else {
                return;
            };
            let (rt, engine) = (host.runtime.clone(), host.engine.clone());
            let now = engine.now_ns();
            let Some(proc) = inner.procs.get_mut(&pid.0) else {
                return;
            };
            if proc.status.is_some() {
                return;
            }
            proc.status = Some(status);
            proc.exited_at_ns = Some(now);
            let causal_tail = proc.ctx.map(|root| (root, proc.last_span.unwrap_or(root)));
            let wait_waiters = std::mem::take(&mut proc.wait_waiters);
            let threads = rt.tagged_threads(pid.0 as u64);
            // Release the process's pipe ends.
            let mut pipe_wakes = Vec::new();
            let mut touched = Vec::new();
            for (id, p) in inner.pipes.iter_mut() {
                let held_w = p.writers.contains(&pid.0);
                let held_r = p.readers.contains(&pid.0);
                if !held_w && !held_r {
                    continue;
                }
                p.writers.retain(|&w| w != pid.0);
                p.readers.retain(|&r| r != pid.0);
                touched.push(*id);
                if held_w && p.write_closed() {
                    // Blocked readers must wake to observe EOF.
                    pipe_wakes.append(&mut p.read_waiters);
                }
                if held_r && p.read_closed() {
                    // Blocked writers must wake to observe Broken.
                    pipe_wakes.append(&mut p.write_waiters);
                }
            }
            Some((
                rt,
                engine,
                threads,
                wait_waiters,
                pipe_wakes,
                touched,
                causal_tail,
            ))
        }) else {
            return;
        };
        for t in threads {
            // Reentrant exit-hook calls land in on_thread_finished /
            // finish_process, which both return early now that the
            // status is set.
            rt.kill(t);
        }
        rt.clear_resource_owner(&Resource::Child(pid.0 as u64));
        for p in touched_pipes {
            self.refresh_pipe_owners(p);
        }
        for w in pipe_wakes {
            rt.wake(w);
        }
        for w in wait_waiters {
            rt.wake(w);
        }
        engine.metrics().counter("proc.exited").inc();
        let tracer = engine.tracer();
        if tracer.enabled() {
            tracer.instant(
                cat::PROC,
                "proc.exit",
                engine.now_ns(),
                1,
                vec![
                    ("pid", ArgValue::U64(pid.0 as u64)),
                    ("status", ArgValue::Str(status.to_string().into())),
                ],
            );
        }
        if let Some((root, tail)) = causal_tail {
            let causal = engine.causal();
            if causal.enabled() {
                let now = engine.now_ns();
                // The process request ends here; the exit flow edge
                // stays open until a waitpid reaps the zombie.
                causal.end_request(root, now);
                let fid = causal.flow_start("exit", tail, now, 1);
                if let Some(p) = self.inner.borrow_mut().procs.get_mut(&pid.0) {
                    p.exit_flow = Some(fid);
                }
            }
        }
    }
}

/// An open causal slice span (see [`Kernel::causal_slice_begin`]).
struct SliceSpan {
    ctx: SpanContext,
    parent: u64,
    start_ns: u64,
    wait: Option<&'static str>,
    prev: Option<SpanContext>,
    lane: u32,
    main: bool,
}

/// The wrapper every process main thread runs in: delegates the slice
/// to the guest, then lets the kernel do per-slice bookkeeping.
struct ProcThread {
    kernel: Kernel,
    pid: u32,
    name: String,
    inner: Box<dyn GuestThread>,
}

impl GuestThread for ProcThread {
    fn run(&mut self, ctx: &mut ThreadContext<'_>) -> ThreadStep {
        let slice = self
            .kernel
            .causal_slice_begin(self.pid, None, ctx.thread_id(), true);
        let step = self.inner.run(ctx);
        let step = self.kernel.after_main_slice(self.pid, ctx, step);
        self.kernel.causal_slice_end(self.pid, slice, &mut None);
        step
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The wrapper for auxiliary process threads (stdin pumps and the
/// like): each slice gets its own attributed causal span, chained
/// per-thread off the process root.
struct AuxSliceThread {
    kernel: Kernel,
    pid: u32,
    inner: Box<dyn GuestThread>,
    last: Option<SpanContext>,
}

impl GuestThread for AuxSliceThread {
    fn run(&mut self, ctx: &mut ThreadContext<'_>) -> ThreadStep {
        let slice = self
            .kernel
            .causal_slice_begin(self.pid, self.last, ctx.thread_id(), false);
        let step = self.inner.run(ctx);
        self.kernel
            .causal_slice_end(self.pid, slice, &mut self.last);
        step
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// A handle to a spawned process.
#[derive(Clone)]
pub struct Process {
    kernel: Kernel,
    pid: Pid,
}

impl fmt::Debug for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid.0)
            .field("status", &self.status())
            .finish()
    }
}

impl Process {
    /// The process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The kernel hosting this process.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Current exit status, if the process has exited (does not reap).
    pub fn status(&self) -> Option<ExitStatus> {
        self.kernel.status(self.pid)
    }

    /// Deliver a signal. Errors if the process already exited.
    pub fn kill(&self, signal: Signal) -> Result<(), KernelError> {
        self.kernel.kill(self.pid, signal)
    }

    /// Drive the event loop until this process exits (host-side
    /// blocking wait).
    pub fn wait(&self) -> Result<ExitStatus, RuntimeError> {
        self.kernel.run_until_exit(self.pid)
    }
}

/// Builds an [`Engine`] directly onto a [`Kernel`]: the engine is
/// constructed with the builder's full configuration (plus the
/// kernel's [`ObservabilityOptions`] as fallback defaults) and
/// installed as the kernel's event loop.
///
/// ```
/// use doppio_core::{BuildOnKernel, Kernel};
/// use doppio_jsengine::{Browser, EngineBuilder};
///
/// let kernel = Kernel::new();
/// let engine = EngineBuilder::new(Browser::Chrome)
///     .rng_seed(7)
///     .build_on(&kernel);
/// assert_eq!(engine.browser(), kernel.engine().browser());
/// ```
pub trait BuildOnKernel {
    /// Build the engine and attach it to `kernel`. Panics if the
    /// kernel already has one.
    fn build_on(self, kernel: &Kernel) -> Engine;
}

impl BuildOnKernel for EngineBuilder {
    fn build_on(self, kernel: &Kernel) -> Engine {
        let obs = kernel.inner.borrow().obs.clone();
        let engine = self.observability_fallback(&obs).build();
        kernel.attach_engine(engine.clone());
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn stock_kernel() -> Kernel {
        Kernel::new()
    }

    /// A reader guest: drains `pipe` to `out` until EOF, then
    /// finishes.
    fn reader_proc(
        kernel: &Kernel,
        pipe: PipeId,
        out: Rc<RefCell<Vec<u8>>>,
        name: &str,
    ) -> Process {
        let k = kernel.clone();
        kernel.spawn_fn(SpawnOptions::new(name).stdin(pipe), move |ctx| {
            match k.read_pipe(ctx, pipe, 1024).expect("live pipe") {
                PipeRead::Data(d) => {
                    out.borrow_mut().extend_from_slice(&d);
                    ThreadStep::Yielded
                }
                PipeRead::WouldBlock => ThreadStep::Blocked,
                PipeRead::Eof => ThreadStep::Finished,
            }
        })
    }

    #[test]
    fn spawn_run_exit_zero() {
        let kernel = stock_kernel();
        let mut n = 3;
        let p = kernel.spawn_fn(SpawnOptions::new("worker"), move |_| {
            n -= 1;
            if n == 0 {
                ThreadStep::Finished
            } else {
                ThreadStep::Yielded
            }
        });
        kernel.run().unwrap();
        assert_eq!(p.status(), Some(ExitStatus::Exited(0)));
        assert!(p.status().unwrap().success());
    }

    #[test]
    fn explicit_exit_code_propagates() {
        let kernel = stock_kernel();
        let k = kernel.clone();
        let p = kernel.spawn_fn(SpawnOptions::new("failing"), move |ctx| {
            let pid = Pid(ctx.runtime().thread_tag(ctx.thread_id()).unwrap() as u32);
            k.exit(pid, 3).unwrap();
            ThreadStep::Finished
        });
        kernel.run().unwrap();
        assert_eq!(p.status(), Some(ExitStatus::Exited(3)));
    }

    #[test]
    fn pipe_data_flows_and_eof_on_writer_exit() {
        let kernel = stock_kernel();
        let pipe = kernel.pipe();
        let out = Rc::new(RefCell::new(Vec::new()));
        let _r = reader_proc(&kernel, pipe, out.clone(), "reader");
        let k = kernel.clone();
        let mut sent = false;
        let w = kernel.spawn_fn(SpawnOptions::new("writer").stdout(pipe), move |ctx| {
            if sent {
                return ThreadStep::Finished;
            }
            sent = true;
            match k.write_pipe(ctx, pipe, b"hello pipes").expect("live pipe") {
                PipeWrite::Wrote(n) => {
                    assert_eq!(n, 11);
                    ThreadStep::Yielded
                }
                other => panic!("{other:?}"),
            }
        });
        kernel.run().unwrap();
        assert_eq!(out.borrow().as_slice(), b"hello pipes");
        assert!(w.status().unwrap().success());
    }

    #[test]
    fn full_pipe_applies_backpressure() {
        let kernel = stock_kernel();
        let pipe = kernel.pipe_with_capacity(4);
        let out = Rc::new(RefCell::new(Vec::new()));
        let k = kernel.clone();
        let mut remaining: Vec<u8> = b"0123456789".to_vec();
        kernel.spawn_fn(SpawnOptions::new("writer").stdout(pipe), move |ctx| {
            if remaining.is_empty() {
                return ThreadStep::Finished;
            }
            match k.write_pipe(ctx, pipe, &remaining).expect("live pipe") {
                PipeWrite::Wrote(n) => {
                    assert!(n <= 4, "never more than capacity: {n}");
                    remaining.drain(..n);
                    ThreadStep::Yielded
                }
                PipeWrite::WouldBlock => ThreadStep::Blocked,
                PipeWrite::Broken => panic!("reader vanished"),
            }
        });
        let _r = reader_proc(&kernel, pipe, out.clone(), "reader");
        kernel.run().unwrap();
        assert_eq!(out.borrow().as_slice(), b"0123456789");
    }

    #[test]
    fn sigkill_breaks_the_pipe_for_the_reader() {
        let kernel = stock_kernel();
        let pipe = kernel.pipe();
        let out = Rc::new(RefCell::new(Vec::new()));
        let r = reader_proc(&kernel, pipe, out.clone(), "reader");
        // A writer that never finishes on its own: one byte per slice.
        let k = kernel.clone();
        let w = kernel.spawn_fn(SpawnOptions::new("writer").stdout(pipe), move |ctx| match k
            .write_pipe(ctx, pipe, b"x")
            .expect("live pipe")
        {
            PipeWrite::Wrote(_) => ThreadStep::Yielded,
            PipeWrite::WouldBlock => ThreadStep::Blocked,
            PipeWrite::Broken => ThreadStep::Finished,
        });
        // Let it produce a little, then kill it mid-stream.
        let engine = kernel.engine();
        kernel.runtime().start();
        for _ in 0..12 {
            engine.run_one();
        }
        w.kill(Signal::Kill).unwrap();
        kernel.run().unwrap();
        assert_eq!(w.status(), Some(ExitStatus::Signaled(Signal::Kill)));
        // The reader saw EOF (writer's end released at kill) and
        // finished normally with whatever had been written.
        assert_eq!(r.status(), Some(ExitStatus::Exited(0)));
        assert!(!out.borrow().is_empty());
    }

    #[test]
    fn waitpid_reaps_zombies_and_propagates_codes() {
        let kernel = stock_kernel();
        let k = kernel.clone();
        let child = kernel.spawn_fn(SpawnOptions::new("child"), move |ctx| {
            let pid = Pid(ctx.runtime().thread_tag(ctx.thread_id()).unwrap() as u32);
            k.exit(pid, 42).unwrap();
            ThreadStep::Finished
        });
        let child_pid = child.pid();
        // Run the child to completion first: it becomes a zombie.
        kernel.run_until_exit(child_pid).unwrap();
        assert_eq!(kernel.zombies(), vec![child_pid]);

        let k = kernel.clone();
        let seen = Rc::new(RefCell::new(None));
        let s = seen.clone();
        kernel.spawn_fn(SpawnOptions::new("parent"), move |ctx| {
            match k.waitpid(ctx, child_pid).expect("known child") {
                WaitPid::Exited(status) => {
                    *s.borrow_mut() = Some(status);
                    ThreadStep::Finished
                }
                WaitPid::WouldBlock => ThreadStep::Blocked,
            }
        });
        kernel.run().unwrap();
        assert_eq!(*seen.borrow(), Some(ExitStatus::Exited(42)));
        // The child was reaped; the parent (which nobody waits on) is
        // the only zombie left.
        assert!(
            !kernel.zombies().contains(&child_pid),
            "waitpid reaped the zombie"
        );
    }

    #[test]
    fn cross_process_deadlock_is_blamed_per_pid() {
        // The acceptance scenario: a writer fills a tiny pipe and
        // blocks; the reader, instead of draining, waitpids the
        // writer. The wait-for graph must close the cycle and name
        // both pids.
        let kernel = stock_kernel();
        let pipe = kernel.pipe_with_capacity(2);
        let k = kernel.clone();
        let writer = kernel.spawn_fn(SpawnOptions::new("writer").stdout(pipe), move |ctx| match k
            .write_pipe(ctx, pipe, b"xx")
            .expect("live pipe")
        {
            PipeWrite::Wrote(_) => ThreadStep::Yielded,
            PipeWrite::WouldBlock => ThreadStep::Blocked,
            PipeWrite::Broken => ThreadStep::Finished,
        });
        let wpid = writer.pid();
        let k = kernel.clone();
        kernel.spawn_fn(
            SpawnOptions::new("impatient").stdin(pipe),
            move |ctx| match k.waitpid(ctx, wpid).expect("known child") {
                WaitPid::Exited(_) => ThreadStep::Finished,
                WaitPid::WouldBlock => ThreadStep::Blocked,
            },
        );
        let err = kernel.run().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("pid 1 writer"), "{msg}");
        assert!(msg.contains("pid 2 impatient"), "{msg}");
        assert!(msg.contains("(write)"), "{msg}");
        assert!(msg.contains("child pid 1"), "{msg}");
        let RuntimeError::Deadlock { report, .. } = &err;
        assert_eq!(report.as_ref().expect("cycle").cycle.len(), 2);
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let run = || {
            let kernel = Kernel::new();
            let pipe = kernel.pipe_with_capacity(8);
            let out = Rc::new(RefCell::new(Vec::new()));
            let k = kernel.clone();
            let mut remaining: Vec<u8> = (0u8..64).collect();
            kernel.spawn_fn(SpawnOptions::new("producer").stdout(pipe), move |ctx| {
                if remaining.is_empty() {
                    return ThreadStep::Finished;
                }
                match k.write_pipe(ctx, pipe, &remaining).expect("live pipe") {
                    PipeWrite::Wrote(n) => {
                        remaining.drain(..n);
                        ThreadStep::Yielded
                    }
                    PipeWrite::WouldBlock => ThreadStep::Blocked,
                    PipeWrite::Broken => ThreadStep::Finished,
                }
            });
            let _ = reader_proc(&kernel, pipe, out.clone(), "consumer");
            kernel.run().unwrap();
            let table = kernel
                .process_table()
                .into_iter()
                .map(|p| {
                    format!(
                        "{} {} {} {} {}",
                        p.pid, p.name, p.status, p.pipe_in, p.pipe_out
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            let fingerprint = (out.borrow().clone(), table, kernel.engine().now_ns());
            fingerprint
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn host_surfaces_error_on_unknown_ids_instead_of_panicking() {
        let kernel = stock_kernel();
        let bogus = PipeId(999);
        assert_eq!(
            kernel.host_write(bogus, b"x"),
            Err(KernelError::UnknownPipe(bogus))
        );
        assert_eq!(
            kernel.host_close_write(bogus),
            Err(KernelError::UnknownPipe(bogus))
        );
        assert_eq!(
            kernel.host_close_read(bogus),
            Err(KernelError::UnknownPipe(bogus))
        );
        assert_eq!(
            kernel.host_read(bogus),
            Err(KernelError::UnknownPipe(bogus))
        );
        assert_eq!(kernel.pipe_len(bogus), Err(KernelError::UnknownPipe(bogus)));
        assert_eq!(
            kernel.pipe_write_closed(bogus),
            Err(KernelError::UnknownPipe(bogus))
        );
        assert_eq!(
            kernel.feed_pipe(Pid(1), bogus, b"x"),
            Err(KernelError::UnknownPipe(bogus))
        );
        let ghost = Pid(7);
        assert_eq!(kernel.exit(ghost, 0), Err(KernelError::UnknownPid(ghost)));
        assert_eq!(
            kernel.kill(ghost, Signal::Kill),
            Err(KernelError::UnknownPid(ghost))
        );
        assert_eq!(
            kernel.set_exit_probe(ghost, || None),
            Err(KernelError::UnknownPid(ghost))
        );
    }

    #[test]
    fn double_close_and_released_pipe_ends_error() {
        let kernel = stock_kernel();
        let pipe = kernel.pipe();
        kernel.host_write(pipe, b"hi").unwrap();
        kernel.host_close_write(pipe).unwrap();
        // Double close, and writing after close, both report.
        assert_eq!(
            kernel.host_close_write(pipe),
            Err(KernelError::PipeEndClosed(pipe))
        );
        assert_eq!(
            kernel.host_write(pipe, b"more"),
            Err(KernelError::PipeEndClosed(pipe))
        );
        kernel.host_close_read(pipe).unwrap();
        assert_eq!(
            kernel.host_close_read(pipe),
            Err(KernelError::PipeEndClosed(pipe))
        );
        // An end released to a process by spawn wiring behaves like a
        // closed end for the host.
        let stdout = kernel.pipe();
        let _p = kernel.spawn_fn(SpawnOptions::new("w").stdout(stdout), |_| {
            ThreadStep::Finished
        });
        assert_eq!(
            kernel.host_write(stdout, b"x"),
            Err(KernelError::PipeEndClosed(stdout))
        );
    }

    #[test]
    fn host_close_read_breaks_the_pipe_for_writers() {
        let kernel = stock_kernel();
        let pipe = kernel.pipe();
        let k = kernel.clone();
        let seen = Rc::new(RefCell::new(None));
        let s = seen.clone();
        kernel.spawn_fn(SpawnOptions::new("writer").stdout(pipe), move |ctx| match k
            .write_pipe(ctx, pipe, b"x")
            .expect("live pipe")
        {
            PipeWrite::Broken => {
                *s.borrow_mut() = Some(PipeWrite::Broken);
                ThreadStep::Finished
            }
            _ => ThreadStep::Yielded,
        });
        kernel.host_close_read(pipe).unwrap();
        kernel.run().unwrap();
        assert_eq!(*seen.borrow(), Some(PipeWrite::Broken));
    }

    #[test]
    fn signalling_an_exited_process_errors() {
        let kernel = stock_kernel();
        let p = kernel.spawn_fn(SpawnOptions::new("short"), |_| ThreadStep::Finished);
        kernel.run().unwrap();
        assert_eq!(
            kernel.kill(p.pid(), Signal::Term),
            Err(KernelError::AlreadyExited(p.pid()))
        );
        assert_eq!(
            p.kill(Signal::Kill),
            Err(KernelError::AlreadyExited(p.pid()))
        );
        assert_eq!(
            kernel.exit(p.pid(), 1),
            Err(KernelError::AlreadyExited(p.pid()))
        );
        // The recorded status is untouched.
        assert_eq!(p.status(), Some(ExitStatus::Exited(0)));
    }

    #[test]
    fn waitpid_unknown_and_already_reaped_error() {
        let kernel = stock_kernel();
        let child = kernel.spawn_fn(SpawnOptions::new("child"), |_| ThreadStep::Finished);
        let child_pid = child.pid();
        kernel.run_until_exit(child_pid).unwrap();

        let k = kernel.clone();
        let seen: Rc<RefCell<Vec<Result<(), KernelError>>>> = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        kernel.spawn_fn(SpawnOptions::new("parent"), move |ctx| {
            s.borrow_mut().push(k.waitpid(ctx, Pid(99)).map(|_| ()));
            s.borrow_mut().push(k.waitpid(ctx, child_pid).map(|_| ()));
            s.borrow_mut().push(k.waitpid(ctx, child_pid).map(|_| ()));
            ThreadStep::Finished
        });
        kernel.run().unwrap();
        let seen = seen.borrow();
        assert_eq!(seen[0], Err(KernelError::UnknownPid(Pid(99))));
        assert_eq!(seen[1], Ok(()), "first waitpid reaps");
        assert_eq!(seen[2], Err(KernelError::AlreadyReaped(child_pid)));
    }

    #[test]
    fn guest_pipe_ops_on_unknown_pipe_error() {
        let kernel = stock_kernel();
        let k = kernel.clone();
        let forged = PipeId(77);
        let seen = Rc::new(RefCell::new(None));
        let s = seen.clone();
        kernel.spawn_fn(SpawnOptions::new("g"), move |ctx| {
            let r = k.read_pipe(ctx, forged, 8);
            let w = k.write_pipe(ctx, forged, b"x");
            *s.borrow_mut() = Some((r, w));
            ThreadStep::Finished
        });
        kernel.run().unwrap();
        let (r, w) = seen.borrow().clone().unwrap();
        assert_eq!(r, Err(KernelError::UnknownPipe(forged)));
        assert_eq!(w, Err(KernelError::UnknownPipe(forged)));
    }

    #[test]
    fn try_spawn_rejects_unknown_pipe_wiring() {
        let kernel = stock_kernel();
        let bogus = PipeId(42);
        let err = kernel
            .try_spawn(
                SpawnOptions::new("w").stdin(bogus),
                Box::new(crate::FnThread::new(|_| ThreadStep::Finished)),
            )
            .unwrap_err();
        assert_eq!(err, KernelError::UnknownPipe(bogus));
        // No pid was burned and no process row appeared.
        assert!(kernel.process_table().is_empty());
        let ok = kernel.spawn_fn(SpawnOptions::new("first"), |_| ThreadStep::Finished);
        assert_eq!(ok.pid(), Pid(1));
    }

    #[test]
    fn build_on_attaches_builder_configuration() {
        use doppio_jsengine::{Browser, EngineBuilder};
        let kernel = Kernel::new().observability(ObservabilityOptions::new().histograms(true));
        let engine = EngineBuilder::new(Browser::Firefox)
            .rng_seed(9)
            .build_on(&kernel);
        assert_eq!(engine.browser(), Browser::Firefox);
        // The kernel's observability defaults flowed into the engine.
        assert!(engine.metrics().histograms_enabled());
        assert_eq!(kernel.engine().browser(), Browser::Firefox);
    }
}
