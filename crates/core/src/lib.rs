//! The Doppio execution environment (§4 of the paper).
//!
//! Browsers run JavaScript as a sequence of finite-duration events on a
//! single thread; long computations freeze the page and are eventually
//! killed by the watchdog, and the asynchronous-only browser APIs can
//! never be wrapped synchronously *in JavaScript* (§3). Doppio's answer
//! is an execution environment in which hosted programs:
//!
//! * keep their call stacks in explicit heap objects,
//! * periodically perform **suspend checks** driven by an adaptive
//!   counter ([`suspend::SuspendTimer`]), and yield the JavaScript
//!   thread when one fires — *automatic event segmentation* (§4.1),
//! * emulate **synchronous source-language APIs** over asynchronous
//!   browser APIs by blocking the *guest* thread while the JavaScript
//!   thread keeps servicing events (§4.2), and
//! * gain **multithreading** from a pool of explicit stacks plus a
//!   scheduler — cooperative in JavaScript, preemptive in the source
//!   language's semantics (§4.3).
//!
//! Resumption callbacks travel through the fastest asynchronous
//! mechanism the active browser offers: `setImmediate`, else
//! `sendMessage`, else clamped `setTimeout` (§4.4).
//!
//! # Example: segmented execution stays responsive
//!
//! ```
//! use doppio_jsengine::{Browser, Engine};
//! use doppio_core::{DoppioRuntime, FnThread, ThreadStep};
//!
//! let engine = Engine::new(Browser::Chrome);
//! let runtime = DoppioRuntime::new(&engine);
//!
//! // A "long" computation: 200k work units, segmented automatically.
//! let mut remaining = 200_000u64;
//! runtime.spawn(
//!     "compute",
//!     Box::new(FnThread::new(move |ctx| {
//!         while remaining > 0 {
//!             ctx.engine().charge(doppio_jsengine::Cost::IntOp);
//!             remaining -= 1;
//!             if ctx.should_suspend() {
//!                 return ThreadStep::Yielded;
//!             }
//!         }
//!         ThreadStep::Finished
//!     })),
//! );
//! let stats = runtime.run_to_completion().unwrap();
//! assert!(stats.wall_ns() > 0);
//! // The watchdog never fired: every event stayed finite.
//! assert_eq!(engine.stats().watchdog_kills, 0);
//! ```

pub mod kernel;
pub mod report;
pub mod runtime;
pub mod suspend;
pub mod waitgraph;

pub use kernel::{
    BuildOnKernel, ExitStatus, Kernel, KernelError, Pid, PipeId, PipeRead, PipeWrite, Process,
    ProcessSummary, Signal, SpawnOptions, WaitPid, DEFAULT_PIPE_CAPACITY,
};
pub use report::RunReport;
pub use runtime::{
    AsyncCell, AsyncResolver, BlockTimeout, DoppioRuntime, GuestThread, RoundRobinScheduler,
    RuntimeError, RuntimeStats, Scheduler, ThreadContext, ThreadId, ThreadState, ThreadStep,
};
pub use suspend::{SuspendTimer, DEFAULT_TIME_SLICE_NS};
pub use waitgraph::{
    BlockEdge, DeadlockReport, DeadlockThread, LockOrderWarning, Resource, WaitGraph,
};

/// Adapts a closure into a [`GuestThread`].
///
/// The closure is the thread's whole program: it is called once per
/// slice and must keep its resumption state in captured variables (the
/// explicit-stack requirement of §4.1).
pub struct FnThread<F: FnMut(&mut ThreadContext<'_>) -> ThreadStep> {
    f: F,
    name: String,
}

impl<F: FnMut(&mut ThreadContext<'_>) -> ThreadStep> FnThread<F> {
    /// Wrap a closure as a guest thread.
    pub fn new(f: F) -> FnThread<F> {
        FnThread {
            f,
            name: "fn-thread".to_string(),
        }
    }

    /// Wrap a closure with a diagnostic name.
    pub fn named(name: impl Into<String>, f: F) -> FnThread<F> {
        FnThread {
            f,
            name: name.into(),
        }
    }
}

impl<F: FnMut(&mut ThreadContext<'_>) -> ThreadStep> GuestThread for FnThread<F> {
    fn run(&mut self, ctx: &mut ThreadContext<'_>) -> ThreadStep {
        (self.f)(ctx)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_jsengine::{Browser, Cost, Engine};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A compute-bound guest: `units` work items, suspend checks every
    /// item (a tight "call boundary" model).
    fn compute_thread(units: u64, cost: Cost) -> impl FnMut(&mut ThreadContext<'_>) -> ThreadStep {
        let mut remaining = units;
        move |ctx| {
            while remaining > 0 {
                ctx.engine().charge(cost);
                remaining -= 1;
                if ctx.should_suspend() {
                    return ThreadStep::Yielded;
                }
            }
            ThreadStep::Finished
        }
    }

    #[test]
    fn long_computation_never_trips_the_watchdog() {
        let engine = Engine::new(Browser::Chrome);
        let rt = DoppioRuntime::new(&engine);
        // ~1.2 virtual seconds of work at 60ns dispatch — enough for
        // hundreds of time slices.
        rt.spawn(
            "main",
            Box::new(FnThread::new(compute_thread(20_000_000, Cost::Dispatch))),
        );
        let stats = rt.run_to_completion().unwrap();
        assert!(stats.suspensions > 100, "suspended {}", stats.suspensions);
        let es = engine.stats();
        assert_eq!(es.watchdog_kills, 0);
        // Every event stayed within ~2 time slices.
        assert!(es.max_event_ns < 3 * DEFAULT_TIME_SLICE_NS);
    }

    #[test]
    fn without_segmentation_the_watchdog_kills_the_page() {
        // The §3 problem, demonstrated: ~6 virtual seconds of work
        // (past the 5 s watchdog limit) as one monolithic event.
        let engine = Engine::new(Browser::Chrome);
        engine.send_message(|e| {
            e.charge_n(Cost::Dispatch, 100_000_000);
        });
        engine.run_until_idle();
        assert_eq!(engine.stats().watchdog_kills, 1);
    }

    #[test]
    fn user_input_is_serviced_during_computation() {
        let engine = Engine::new(Browser::Chrome);
        let rt = DoppioRuntime::new(&engine);
        rt.spawn(
            "main",
            Box::new(FnThread::new(compute_thread(5_000_000, Cost::Dispatch))),
        );
        rt.start();
        // Let the computation get going, then inject user input.
        for _ in 0..4 {
            engine.run_one();
        }
        let input_latency = Rc::new(RefCell::new(None));
        let (lat, t0) = (input_latency.clone(), engine.now_ns());
        engine.inject_user_input(move |e| {
            *lat.borrow_mut() = Some(e.now_ns() - t0);
        });
        engine.run_until_idle();
        assert!(rt.is_finished());
        let latency = input_latency.borrow().expect("input ran");
        // Input was handled within roughly one time slice, not after
        // the whole multi-second computation.
        assert!(
            latency < 3 * DEFAULT_TIME_SLICE_NS,
            "input latency {latency} ns"
        );
    }

    #[test]
    fn threads_interleave_round_robin() {
        let engine = Engine::new(Browser::Chrome);
        let rt = DoppioRuntime::new(&engine);
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        for (name, tag) in [("a", "a"), ("b", "b")] {
            let log = log.clone();
            let mut remaining = 3_000_000u64;
            rt.spawn(
                name,
                Box::new(FnThread::new(move |ctx| {
                    log.borrow_mut().push(tag);
                    while remaining > 0 {
                        ctx.engine().charge(Cost::IntOp);
                        remaining -= 1;
                        if ctx.should_suspend() {
                            return ThreadStep::Yielded;
                        }
                    }
                    ThreadStep::Finished
                })),
            );
        }
        let stats = rt.run_to_completion().unwrap();
        assert!(stats.context_switches > 2, "{stats:?}");
        let log = log.borrow();
        // Slices of a and b alternate.
        assert!(log.windows(2).any(|w| w == ["a", "b"]));
        assert!(log.windows(2).any(|w| w == ["b", "a"]));
    }

    #[test]
    fn blocking_on_async_api_delivers_the_value_synchronously() {
        let engine = Engine::new(Browser::Chrome);
        let rt = DoppioRuntime::new(&engine);
        let result: Rc<RefCell<Option<u32>>> = Rc::new(RefCell::new(None));
        let out = result.clone();

        // A guest that "synchronously" calls an async API returning 42
        // after 1 ms of external latency.
        let mut pending: Option<AsyncCell<u32>> = None;
        rt.spawn(
            "blocker",
            Box::new(FnThread::new(move |ctx| {
                if let Some(cell) = pending.take() {
                    let v = cell.take().expect("woken only after resolve");
                    *out.borrow_mut() = Some(v);
                    return ThreadStep::Finished;
                }
                let cell = ctx.block_on(|engine, resolver| {
                    engine.complete_async_after(1_000_000, move |_| resolver.resolve(42));
                });
                pending = Some(cell);
                ThreadStep::Blocked
            })),
        );
        rt.run_to_completion().unwrap();
        assert_eq!(*result.borrow(), Some(42));
    }

    #[test]
    fn block_on_timeout_wakes_with_an_error_when_the_value_never_comes() {
        let engine = Engine::new(Browser::Chrome);
        let rt = DoppioRuntime::new(&engine);
        let result: Rc<RefCell<Option<Result<u32, BlockTimeout>>>> = Rc::new(RefCell::new(None));
        let out = result.clone();
        let mut pending: Option<AsyncCell<Result<u32, BlockTimeout>>> = None;
        rt.spawn(
            "waiter",
            Box::new(FnThread::new(move |ctx| {
                if let Some(cell) = pending.take() {
                    *out.borrow_mut() = Some(cell.take().expect("woken with a result"));
                    return ThreadStep::Finished;
                }
                // The resolver is dropped unfired: only the deadline
                // can wake this thread.
                let cell = ctx.block_on_timeout(5_000_000, |_, _resolver| {});
                pending = Some(cell);
                ThreadStep::Blocked
            })),
        );
        rt.run_to_completion().unwrap();
        assert_eq!(*result.borrow(), Some(Err(BlockTimeout)));
    }

    #[test]
    fn block_on_timeout_value_beats_a_later_deadline() {
        let engine = Engine::new(Browser::Chrome);
        let rt = DoppioRuntime::new(&engine);
        let result: Rc<RefCell<Option<Result<u32, BlockTimeout>>>> = Rc::new(RefCell::new(None));
        let out = result.clone();
        let mut pending: Option<AsyncCell<Result<u32, BlockTimeout>>> = None;
        rt.spawn(
            "waiter",
            Box::new(FnThread::new(move |ctx| {
                if let Some(cell) = pending.take() {
                    *out.borrow_mut() = Some(cell.take().expect("woken with a result"));
                    return ThreadStep::Finished;
                }
                let cell = ctx.block_on_timeout(10_000_000, |engine, resolver| {
                    engine.complete_async_after(1_000_000, move |_| resolver.resolve(99));
                });
                pending = Some(cell);
                ThreadStep::Blocked
            })),
        );
        // The late deadline still fires on the event loop; it must be a
        // no-op against the already-delivered value.
        rt.run_to_completion().unwrap();
        engine.run_until_idle();
        assert_eq!(*result.borrow(), Some(Ok(99)));
    }

    #[test]
    fn deadlock_is_detected_and_named() {
        let engine = Engine::new(Browser::Chrome);
        let rt = DoppioRuntime::new(&engine);
        rt.spawn("stuck", Box::new(FnThread::new(|_ctx| ThreadStep::Blocked)));
        let err = rt.run_to_completion().unwrap_err();
        let RuntimeError::Deadlock {
            blocked, report, ..
        } = &err;
        assert_eq!(blocked, &vec!["stuck".to_string()]);
        // No wait-for edge was reported, so there is no cycle to show.
        assert!(report.is_none());
        assert!(err.to_string().contains("stuck"));
    }

    #[test]
    fn wait_for_cycle_is_reported_with_blame() {
        use crate::waitgraph::Resource;
        // Two threads, each holding one monitor and blocking on the
        // other's — the classic AB-BA deadlock, reported via the
        // wait-for graph rather than by draining the event loop.
        let engine = Engine::new(Browser::Chrome);
        let rt = DoppioRuntime::new(&engine);
        let mk = |held: u64, wants: u64, site: &'static str| {
            let mut acquired = false;
            move |ctx: &mut ThreadContext<'_>| {
                let rt = ctx.runtime().clone();
                let id = ctx.thread_id();
                if !acquired {
                    acquired = true;
                    rt.note_acquire(id, Resource::Monitor(held));
                    return ThreadStep::Yielded;
                }
                rt.note_block(id, Resource::Monitor(wants), site);
                ThreadStep::Blocked
            }
        };
        rt.spawn("alice", Box::new(FnThread::new(mk(1, 2, "A.lock"))));
        rt.spawn("bob", Box::new(FnThread::new(mk(2, 1, "B.lock"))));
        let err = rt.run_to_completion().unwrap_err();
        let RuntimeError::Deadlock { report, .. } = &err;
        let report = report.as_ref().expect("cycle found");
        assert_eq!(report.cycle.len(), 2);
        let msg = err.to_string();
        assert!(msg.contains("alice"), "{msg}");
        assert!(msg.contains("bob"), "{msg}");
        assert!(msg.contains("monitor #1"), "{msg}");
        assert!(msg.contains("monitor #2"), "{msg}");
        assert!(msg.contains("A.lock"), "{msg}");
    }

    #[test]
    fn losing_resolver_does_not_leave_a_stale_wake() {
        // A block_on_timeout whose deadline wins: the late resolver
        // must not wake the thread again once its value has lost the
        // race (a stale wake would corrupt a later unrelated block).
        let engine = Engine::new(Browser::Chrome);
        let rt = DoppioRuntime::new(&engine);
        let mut pending: Option<AsyncCell<Result<u32, BlockTimeout>>> = None;
        let mut phase = 0u32;
        let observed = Rc::new(RefCell::new(Vec::new()));
        let obs = observed.clone();
        let id = rt.spawn(
            "racer",
            Box::new(FnThread::new(move |ctx| {
                match phase {
                    0 => {
                        phase = 1;
                        // Deadline (1 ms) beats the value (2 ms).
                        let cell = ctx.block_on_timeout(1_000_000, |engine, resolver| {
                            engine.complete_async_after(2_000_000, move |_| resolver.resolve(5));
                        });
                        pending = Some(cell);
                        ThreadStep::Blocked
                    }
                    1 => {
                        phase = 2;
                        obs.borrow_mut()
                            .push(pending.take().unwrap().take().unwrap());
                        // Linger past the loser's arrival so a stale
                        // wake (the bug) would be observable as
                        // wake_pending on a Ready thread.
                        ctx.engine().charge_n(doppio_jsengine::Cost::IntOp, 100);
                        ThreadStep::Yielded
                    }
                    _ => {
                        if ctx.engine().now_ns() < 4_000_000 {
                            return ThreadStep::Yielded;
                        }
                        ThreadStep::Finished
                    }
                }
            })),
        );
        rt.run_to_completion().unwrap();
        assert_eq!(*observed.borrow(), vec![Err(BlockTimeout)]);
        assert!(
            !rt.wake_is_pending(id),
            "losing resolver fired a spurious wake"
        );
    }

    #[test]
    fn wake_before_block_does_not_lose_the_thread() {
        // The resolver fires *during* the slice (synchronously), before
        // the thread returns Blocked. wake_pending must save it.
        let engine = Engine::new(Browser::Ie8); // sendMessage is synchronous here
        let rt = DoppioRuntime::new(&engine);
        let mut pending: Option<AsyncCell<u32>> = None;
        let done = Rc::new(RefCell::new(false));
        let d = done.clone();
        rt.spawn(
            "racy",
            Box::new(FnThread::new(move |ctx| {
                if let Some(cell) = pending.take() {
                    assert_eq!(cell.take(), Some(7));
                    *d.borrow_mut() = true;
                    return ThreadStep::Finished;
                }
                let cell = ctx.block_on(|_, resolver| {
                    // Resolve immediately, inline.
                    resolver.resolve(7);
                });
                pending = Some(cell);
                ThreadStep::Blocked
            })),
        );
        rt.run_to_completion().unwrap();
        assert!(*done.borrow());
    }

    #[test]
    fn suspension_overhead_is_small_on_chrome() {
        let engine = Engine::new(Browser::Chrome);
        let rt = DoppioRuntime::new(&engine);
        rt.spawn(
            "main",
            Box::new(FnThread::new(compute_thread(20_000_000, Cost::Dispatch))),
        );
        let stats = rt.run_to_completion().unwrap();
        // The paper's Figure 5: < 2% suspended in Chrome.
        assert!(
            stats.suspension_fraction() < 0.02,
            "suspension fraction {:.4}",
            stats.suspension_fraction()
        );
        assert!(stats.suspended_ns > 0);
        assert!(stats.cpu_ns() + stats.suspended_ns == stats.wall_ns());
    }

    #[test]
    fn ie8_pays_the_settimeout_clamp_on_every_suspension() {
        // IE8's sendMessage is synchronous, so Doppio falls back to
        // setTimeout with its 4 ms clamp — suspension overhead balloons.
        let run = |browser| {
            let engine = Engine::new(browser);
            let rt = DoppioRuntime::new(&engine);
            rt.spawn(
                "main",
                Box::new(FnThread::new(compute_thread(2_000_000, Cost::Dispatch))),
            );
            rt.run_to_completion().unwrap().suspension_fraction()
        };
        let chrome = run(Browser::Chrome);
        let ie8 = run(Browser::Ie8);
        assert!(
            ie8 > 5.0 * chrome.max(1e-6),
            "ie8={ie8:.4} chrome={chrome:.4}"
        );
    }

    #[test]
    fn ie10_setimmediate_beats_chrome_sendmessage() {
        let run = |browser| {
            let engine = Engine::new(browser);
            let rt = DoppioRuntime::new(&engine);
            rt.spawn(
                "main",
                Box::new(FnThread::new(compute_thread(5_000_000, Cost::IntOp))),
            );
            let s = rt.run_to_completion().unwrap();
            (s.suspended_ns, s.suspensions)
        };
        let (chrome_ns, chrome_n) = run(Browser::Chrome);
        let (ie10_ns, ie10_n) = run(Browser::Ie10);
        // Per suspension, setImmediate is cheaper than sendMessage.
        assert!(ie10_ns / ie10_n.max(1) < chrome_ns / chrome_n.max(1));
    }

    #[test]
    fn custom_scheduler_is_honored() {
        struct LastFirst;
        impl Scheduler for LastFirst {
            fn pick(&mut self, ready: &[ThreadId]) -> ThreadId {
                *ready.last().expect("non-empty")
            }
        }
        let engine = Engine::new(Browser::Chrome);
        let rt = DoppioRuntime::with_config(&engine, Box::new(LastFirst), DEFAULT_TIME_SLICE_NS);
        let order = Rc::new(RefCell::new(Vec::new()));
        for tag in ["first", "second"] {
            let order = order.clone();
            rt.spawn(
                tag,
                Box::new(FnThread::new(move |_| {
                    order.borrow_mut().push(tag);
                    ThreadStep::Finished
                })),
            );
        }
        rt.run_to_completion().unwrap();
        assert_eq!(*order.borrow(), vec!["second", "first"]);
    }

    #[test]
    fn spawned_threads_join_the_pool_mid_run() {
        let engine = Engine::new(Browser::Chrome);
        let rt = DoppioRuntime::new(&engine);
        let child_ran = Rc::new(RefCell::new(false));
        let cr = child_ran.clone();
        let mut spawned = false;
        rt.spawn(
            "parent",
            Box::new(FnThread::new(move |ctx| {
                if !spawned {
                    spawned = true;
                    let cr = cr.clone();
                    ctx.spawn(
                        "child",
                        Box::new(FnThread::new(move |_| {
                            *cr.borrow_mut() = true;
                            ThreadStep::Finished
                        })),
                    );
                    return ThreadStep::Yielded;
                }
                ThreadStep::Finished
            })),
        );
        rt.run_to_completion().unwrap();
        assert!(*child_ran.borrow());
    }

    #[test]
    fn finished_runtime_reports_wall_time_span() {
        let engine = Engine::new(Browser::Chrome);
        let rt = DoppioRuntime::new(&engine);
        rt.spawn(
            "main",
            Box::new(FnThread::new(compute_thread(100_000, Cost::IntOp))),
        );
        let stats = rt.run_to_completion().unwrap();
        assert!(stats.finished_ns > stats.started_ns);
        assert_eq!(stats.wall_ns(), stats.finished_ns - stats.started_ns);
    }
}
