//! The runtime's always-on wait-for graph.
//!
//! Every time a guest thread blocks, the runtime records *what* it is
//! waiting on ([`Resource`]) and *where* it was (a guest-provided site
//! string, typically the current method). Monitor acquisitions feed an
//! acquisition-order graph. Together these replace the opaque "every
//! live thread is blocked" deadlock report with:
//!
//! * **cycle detection with blame** — a wait-for cycle (T1 waits on a
//!   monitor held by T2, T2 joins T1, ...) is reported the moment the
//!   closing edge is added, naming each thread, the resource it is
//!   blocked on, and the site, and
//! * **lock-order-inversion warnings** — acquiring monitor B while
//!   holding A records the edge A→B; a later acquisition path that
//!   closes a cycle in that graph is a latent deadlock even if this
//!   particular schedule survived it.
//!
//! The graph is maintained by [`DoppioRuntime`](crate::DoppioRuntime):
//! guest runtimes report edges through
//! [`ThreadContext`](crate::ThreadContext) (`note_block`,
//! `note_acquire`, `note_release`); `wake` clears the blocked edge.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Something a guest thread can block on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// A guest-language lock (e.g. a JVM monitor), keyed by the guest's
    /// object id. Participates in ownership tracking and lock-order
    /// analysis.
    Monitor(u64),
    /// A condition wait on a lock's wait set (`Object.wait`): the
    /// thread has released the lock and needs a notify.
    Cond(u64),
    /// Completion of another guest thread (`Thread.join`).
    Join(usize),
    /// An asynchronous browser API completion (an `AsyncCell`), with a
    /// human-readable label like `fs.read(/classes/Main.class)`.
    Async(String),
    /// Data on a kernel pipe: a read blocked on an empty buffer. Its
    /// progress depends on whoever holds the write end, which the
    /// kernel registers through [`WaitGraph::set_owner`].
    PipeRead(u64),
    /// Space on a kernel pipe: a write blocked on a full buffer. Its
    /// progress depends on whoever holds the read end.
    PipeWrite(u64),
    /// Exit of a kernel process (`waitpid`). Its progress depends on
    /// the child's main thread.
    Child(u64),
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Monitor(o) => write!(f, "monitor #{o}"),
            Resource::Cond(o) => write!(f, "cond #{o}"),
            Resource::Join(t) => write!(f, "join(thread {t})"),
            Resource::Async(label) => write!(f, "async {label}"),
            Resource::PipeRead(p) => write!(f, "pipe #{p} (read)"),
            Resource::PipeWrite(p) => write!(f, "pipe #{p} (write)"),
            Resource::Child(pid) => write!(f, "child pid {pid}"),
        }
    }
}

/// One thread's current blocked edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEdge {
    /// What the thread is waiting for.
    pub resource: Resource,
    /// Where it blocked (guest frame / method / operation).
    pub site: String,
}

/// One node of a deadlock cycle: a thread and what it is stuck on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockThread {
    /// Runtime thread id.
    pub thread: usize,
    /// Thread name at the time of detection.
    pub name: String,
    /// The resource the thread is blocked on.
    pub resource: Resource,
    /// The guest site that blocked.
    pub site: String,
}

/// A wait-for cycle: each thread waits on a resource whose progress
/// depends on the next thread in the cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// The threads of the cycle, in wait-for order.
    pub cycle: Vec<DeadlockThread>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wait-for cycle:")?;
        for (i, t) in self.cycle.iter().enumerate() {
            let next = &self.cycle[(i + 1) % self.cycle.len()];
            write!(
                f,
                " thread {} \"{}\" at {} waits on {} (held by thread {});",
                t.thread, t.name, t.site, t.resource, next.thread
            )?;
        }
        Ok(())
    }
}

/// Two code paths acquire the same pair of locks in opposite orders — a
/// latent deadlock even when the observed schedule survived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockOrderWarning {
    /// The lock acquired first on the offending path.
    pub first: Resource,
    /// The lock acquired second (closing the cycle in the order graph).
    pub second: Resource,
    /// The thread that closed the cycle.
    pub thread: usize,
    /// The thread that witnessed the opposite order earlier.
    pub witness: usize,
}

impl fmt::Display for LockOrderWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lock-order inversion: thread {} acquired {} then {}, but thread {} established the opposite order",
            self.thread, self.first, self.second, self.witness
        )
    }
}

/// The wait-for graph plus the monitor acquisition-order graph.
#[derive(Debug, Default)]
pub struct WaitGraph {
    /// Thread → what it is currently blocked on. BTreeMap so reports
    /// are deterministically ordered.
    blocked: BTreeMap<usize, BlockEdge>,
    /// Monitor → current owner thread.
    owners: HashMap<Resource, usize>,
    /// Thread → monitors it currently holds, in acquisition order.
    held: BTreeMap<usize, Vec<Resource>>,
    /// Acquisition-order edges `(a, b)` = "a was held while b was
    /// acquired", with the first witnessing thread.
    order_edges: BTreeMap<(Resource, Resource), usize>,
    /// Inversions found so far (deduplicated by lock pair).
    warnings: Vec<LockOrderWarning>,
}

impl WaitGraph {
    /// Record that `thread` is blocked on `resource` at `site`,
    /// replacing any previous edge for the thread.
    pub fn note_block(&mut self, thread: usize, resource: Resource, site: String) {
        self.blocked.insert(thread, BlockEdge { resource, site });
    }

    /// Remove `thread`'s blocked edge (it was woken or finished).
    pub fn clear_block(&mut self, thread: usize) {
        self.blocked.remove(&thread);
    }

    /// The thread's current blocked edge, if any.
    pub fn blocked_on(&self, thread: usize) -> Option<&BlockEdge> {
        self.blocked.get(&thread)
    }

    /// Record that `thread` acquired `resource` (outermost acquisition
    /// only — recursion is the guest's business). Feeds ownership and
    /// the acquisition-order graph; returns a new inversion warning if
    /// this acquisition closes a cycle in lock order.
    pub fn note_acquire(&mut self, thread: usize, resource: Resource) -> Option<LockOrderWarning> {
        let mut new_warning = None;
        let held = self.held.entry(thread).or_default().clone();
        for prior in &held {
            if *prior == resource {
                continue;
            }
            let edge = (prior.clone(), resource.clone());
            self.order_edges.entry(edge).or_insert(thread);
            // Does the opposite order exist (any path resource →* prior)?
            if new_warning.is_none() && self.order_path_exists(&resource, prior) {
                let witness = self
                    .order_edges
                    .get(&(resource.clone(), prior.clone()))
                    .copied()
                    .unwrap_or(thread);
                let already = self.warnings.iter().any(|w| {
                    (w.first == *prior && w.second == resource)
                        || (w.first == resource && w.second == *prior)
                });
                if !already && witness != thread {
                    let w = LockOrderWarning {
                        first: prior.clone(),
                        second: resource.clone(),
                        thread,
                        witness,
                    };
                    self.warnings.push(w.clone());
                    new_warning = Some(w);
                }
            }
        }
        self.owners.insert(resource.clone(), thread);
        self.held.entry(thread).or_default().push(resource);
        new_warning
    }

    /// Record that `thread` released `resource` (outermost release).
    pub fn note_release(&mut self, thread: usize, resource: Resource) {
        if self.owners.get(&resource) == Some(&thread) {
            self.owners.remove(&resource);
        }
        if let Some(held) = self.held.get_mut(&thread) {
            if let Some(pos) = held.iter().rposition(|r| *r == resource) {
                held.remove(pos);
            }
        }
    }

    /// Declare the thread whose progress resolves `resource`, without
    /// treating it as a held lock (no lock-order analysis). The kernel
    /// uses this for cross-process edges: the write-end holder of a
    /// pipe owns its `PipeRead`, the read-end holder owns its
    /// `PipeWrite`, and a child process's main thread owns its
    /// `Child` — so a wait-for cycle spanning pids (a pipe-full writer
    /// vs a reader stuck in `waitpid` on the writer) closes in the
    /// same graph monitors and joins use.
    pub fn set_owner(&mut self, resource: Resource, thread: usize) {
        self.owners.insert(resource, thread);
    }

    /// Remove a [`set_owner`](Self::set_owner) registration (the
    /// resolving end was closed, or the process exited).
    pub fn clear_owner(&mut self, resource: &Resource) {
        self.owners.remove(resource);
    }

    /// Whether a path `from →* to` exists in the acquisition-order
    /// graph (graphs here are tiny; a plain DFS is fine).
    fn order_path_exists(&self, from: &Resource, to: &Resource) -> bool {
        let mut stack = vec![from.clone()];
        let mut seen = Vec::new();
        while let Some(node) = stack.pop() {
            if node == *to {
                return true;
            }
            if seen.contains(&node) {
                continue;
            }
            seen.push(node.clone());
            for (a, b) in self.order_edges.keys() {
                if *a == node {
                    stack.push(b.clone());
                }
            }
        }
        false
    }

    /// The thread whose progress `resource` is waiting for, if the
    /// graph knows one: a monitor's owner, or a join target.
    fn depends_on(&self, resource: &Resource) -> Option<usize> {
        match resource {
            Resource::Monitor(_) => self.owners.get(resource).copied(),
            Resource::Join(t) => Some(*t),
            // Kernel resources resolve through whichever thread the
            // kernel registered as holding the other end.
            Resource::PipeRead(_) | Resource::PipeWrite(_) | Resource::Child(_) => {
                self.owners.get(resource).copied()
            }
            // A cond wait or async completion has no owning thread: it
            // can be resolved from the event loop.
            Resource::Cond(_) | Resource::Async(_) => None,
        }
    }

    /// Chase wait-for edges starting at `start`; a revisit of a thread
    /// already on the path is a deadlock cycle. `name` maps thread ids
    /// to diagnostic names.
    pub fn find_cycle(
        &self,
        start: usize,
        name: &dyn Fn(usize) -> String,
    ) -> Option<DeadlockReport> {
        let mut path: Vec<usize> = Vec::new();
        let mut t = start;
        loop {
            if let Some(pos) = path.iter().position(|&p| p == t) {
                let cycle = path[pos..]
                    .iter()
                    .map(|&p| {
                        let e = self.blocked.get(&p).expect("on path ⇒ blocked");
                        DeadlockThread {
                            thread: p,
                            name: name(p),
                            resource: e.resource.clone(),
                            site: e.site.clone(),
                        }
                    })
                    .collect();
                return Some(DeadlockReport { cycle });
            }
            let edge = self.blocked.get(&t)?;
            let next = self.depends_on(&edge.resource)?;
            path.push(t);
            t = next;
        }
    }

    /// All lock-order inversions observed so far.
    pub fn warnings(&self) -> &[LockOrderWarning] {
        &self.warnings
    }

    /// Deterministic per-thread blame lines for every blocked thread
    /// (used by the whole-runtime deadlock report).
    pub fn blame_lines(&self, name: &dyn Fn(usize) -> String) -> Vec<String> {
        self.blocked
            .iter()
            .map(|(t, e)| {
                let holder = match self.depends_on(&e.resource) {
                    Some(h) => format!(" (held by thread {h})"),
                    None => String::new(),
                };
                format!(
                    "thread {} \"{}\" at {} blocked on {}{}",
                    t,
                    name(*t),
                    e.site,
                    e.resource,
                    holder
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm(t: usize) -> String {
        format!("t{t}")
    }

    #[test]
    fn two_thread_monitor_cycle_is_found() {
        let mut g = WaitGraph::default();
        g.note_acquire(1, Resource::Monitor(10));
        g.note_acquire(2, Resource::Monitor(20));
        g.note_block(1, Resource::Monitor(20), "A.run".into());
        assert!(g.find_cycle(1, &nm).is_none(), "no cycle yet");
        g.note_block(2, Resource::Monitor(10), "B.run".into());
        let report = g.find_cycle(2, &nm).expect("cycle");
        assert_eq!(report.cycle.len(), 2);
        let ids: Vec<usize> = report.cycle.iter().map(|t| t.thread).collect();
        assert!(ids.contains(&1) && ids.contains(&2));
        let text = report.to_string();
        assert!(
            text.contains("monitor #10") && text.contains("monitor #20"),
            "{text}"
        );
        assert!(text.contains("A.run") && text.contains("B.run"), "{text}");
    }

    #[test]
    fn join_cycle_is_found() {
        let mut g = WaitGraph::default();
        g.note_block(1, Resource::Join(2), "main".into());
        g.note_block(2, Resource::Join(1), "worker".into());
        let report = g.find_cycle(1, &nm).expect("join cycle");
        assert_eq!(report.cycle.len(), 2);
    }

    #[test]
    fn async_edges_never_form_cycles() {
        let mut g = WaitGraph::default();
        g.note_block(1, Resource::Async("fs.read(/a)".into()), "main".into());
        assert!(g.find_cycle(1, &nm).is_none());
        assert!(g.blame_lines(&nm)[0].contains("fs.read(/a)"));
    }

    #[test]
    fn cross_process_pipe_waitpid_cycle_is_found() {
        // Thread 1 (writer process main) blocks on a full pipe whose
        // read end is held by thread 2; thread 2 (reader process main)
        // is waitpid-ing the writer. The kernel registers both owner
        // edges; the graph must close the cycle.
        let mut g = WaitGraph::default();
        g.set_owner(Resource::PipeWrite(7), 2); // reader resolves writes
        g.set_owner(Resource::Child(1), 1); // writer's main thread
        g.note_block(1, Resource::PipeWrite(7), "stdout".into());
        assert!(g.find_cycle(1, &nm).is_none(), "no cycle yet");
        g.note_block(2, Resource::Child(1), "waitpid(1)".into());
        let report = g.find_cycle(2, &nm).expect("cross-process cycle");
        assert_eq!(report.cycle.len(), 2);
        let text = report.to_string();
        assert!(text.contains("pipe #7 (write)"), "{text}");
        assert!(text.contains("child pid 1"), "{text}");
        // Clearing the owner (process exited) breaks the chain.
        g.clear_owner(&Resource::Child(1));
        assert!(g.find_cycle(2, &nm).is_none());
    }

    #[test]
    fn lock_order_inversion_is_reported_once() {
        let mut g = WaitGraph::default();
        // Thread 1: A then B. Thread 2: B then A.
        g.note_acquire(1, Resource::Monitor(1));
        assert!(g.note_acquire(1, Resource::Monitor(2)).is_none());
        g.note_release(1, Resource::Monitor(2));
        g.note_release(1, Resource::Monitor(1));
        g.note_acquire(2, Resource::Monitor(2));
        let w = g.note_acquire(2, Resource::Monitor(1)).expect("inversion");
        assert_eq!(w.witness, 1);
        assert_eq!(w.thread, 2);
        // The same pair again does not re-warn.
        g.note_release(2, Resource::Monitor(1));
        g.note_release(2, Resource::Monitor(2));
        g.note_acquire(2, Resource::Monitor(2));
        assert!(g.note_acquire(2, Resource::Monitor(1)).is_none());
        assert_eq!(g.warnings().len(), 1);
    }

    #[test]
    fn release_clears_ownership_and_held_sets() {
        let mut g = WaitGraph::default();
        g.note_acquire(1, Resource::Monitor(5));
        g.note_release(1, Resource::Monitor(5));
        g.note_block(2, Resource::Monitor(5), "x".into());
        // No owner: the chain ends, no cycle and no holder blame.
        assert!(g.find_cycle(2, &nm).is_none());
        assert!(!g.blame_lines(&nm)[0].contains("held by"));
    }
}
