//! The end-of-run report: one artifact answering "where did the
//! virtual time go?"
//!
//! [`RunReport`] aggregates everything the observability stack knows
//! about a finished run — counter snapshots, histogram percentiles,
//! profiler top-N frames, the wait-graph's verdict, fault/retry
//! counts, and trace-drop statistics — and renders it as markdown (for
//! humans and CI artifacts) and JSON (for tooling). Both renderings
//! are byte-deterministic: every number in them comes from the virtual
//! clock or deterministic interpreter state, and every collection is
//! sorted, so equal runs produce equal reports.
//!
//! Build one with [`RunReport::collect`], then chain
//! [`with_runtime`](RunReport::with_runtime) /
//! [`with_trace`](RunReport::with_trace) /
//! [`with_kernel`](RunReport::with_kernel) for the optional sections.

use std::collections::BTreeMap;

use doppio_jsengine::Engine;
use doppio_trace::json::{self, Json};
use doppio_trace::{CausalReport, HistogramSnapshot, RingSink};

use crate::kernel::{Kernel, ProcessSummary};
use crate::runtime::DoppioRuntime;

/// How many frames the profiler sections keep.
const TOP_N: usize = 10;

/// Percentile summary of one named histogram.
#[derive(Clone, Debug)]
pub struct HistRow {
    /// Registry name (`engine.event_latency`, `fs.op_ns`, …).
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Mean sample value.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistRow {
    /// Summarize a snapshot under `name`.
    pub fn from_snapshot(name: &str, snap: &HistogramSnapshot) -> HistRow {
        HistRow {
            name: name.to_string(),
            count: snap.count,
            mean: snap.mean(),
            p50: snap.percentile(50.0),
            p90: snap.percentile(90.0),
            p95: snap.percentile(95.0),
            p99: snap.percentile(99.0),
            max: snap.max,
        }
    }
}

/// What the sampling profiler saw.
#[derive(Clone, Debug, Default)]
pub struct ProfileSummary {
    /// Total sample weight.
    pub samples: u64,
    /// Sampling interval, virtual ns.
    pub interval_ns: u64,
    /// Heaviest leaf frames (self weight).
    pub top_self: Vec<(String, u64)>,
    /// Heaviest frames anywhere on a stack (total weight).
    pub top_total: Vec<(String, u64)>,
}

/// The wait-graph's verdict on the run.
#[derive(Clone, Debug, Default)]
pub struct WaitGraphSummary {
    /// Rendered deadlock cycle, if one was detected.
    pub deadlock: Option<String>,
    /// Rendered lock-order-inversion warnings.
    pub lock_order_warnings: Vec<String>,
}

/// Ring-buffer truncation statistics for the recorded trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Events still in the ring at export time.
    pub recorded: u64,
    /// Ring capacity.
    pub capacity: u64,
    /// Events evicted for lack of space.
    pub dropped: u64,
}

/// The aggregated end-of-run artifact. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Report title (workload id, browser, …).
    pub title: String,
    /// Virtual time at collection, ns.
    pub now_ns: u64,
    /// Every registry counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Every non-empty histogram, summarized, sorted by name.
    pub histograms: Vec<HistRow>,
    /// Raw snapshots behind [`RunReport::histograms`], sorted by name.
    /// Kept so reports stay mergeable ([`RunReport::merge`]) and
    /// renderable as Prometheus text after the engine is gone; not
    /// part of the markdown/JSON renderings.
    pub snapshots: Vec<(String, HistogramSnapshot)>,
    /// Profiler section (present when a profiler was attached).
    pub profile: Option<ProfileSummary>,
    /// Wait-graph section (present after `with_runtime`).
    pub waitgraph: Option<WaitGraphSummary>,
    /// Trace section (present after `with_trace`).
    pub trace: Option<TraceSummary>,
    /// Critical-path section (present after `with_causal`): per-class
    /// latency attribution from the recorded causal trace.
    pub causal: Option<CausalReport>,
    /// Per-process section (present after `with_kernel`): the kernel's
    /// process table, in pid order.
    pub processes: Option<Vec<ProcessSummary>>,
}

impl RunReport {
    /// Snapshot the engine's registry (counters + histograms) and
    /// attached profiler.
    pub fn collect(title: impl Into<String>, engine: &Engine) -> RunReport {
        let metrics = engine.metrics();
        let snapshots = metrics.histograms_with_prefix("");
        let histograms = snapshots
            .iter()
            .map(|(name, snap)| HistRow::from_snapshot(name, snap))
            .collect();
        let profile = engine.profiler().map(|p| ProfileSummary {
            samples: p.samples(),
            interval_ns: p.interval_ns(),
            top_self: p.top_self(TOP_N),
            top_total: p.top_total(TOP_N),
        });
        // `jvm.tier.*` counters describe which execution tier ran —
        // host-side bookkeeping that must not leak into reports, so a
        // tiered and an untiered run of the same program stay
        // byte-identical (the tier-up CI oracle depends on this).
        let counters = metrics
            .with_prefix("")
            .into_iter()
            .filter(|(name, _)| !name.starts_with("jvm.tier."))
            .collect();
        RunReport {
            title: title.into(),
            now_ns: engine.now_ns(),
            counters,
            histograms,
            snapshots,
            profile,
            waitgraph: None,
            trace: None,
            causal: None,
            processes: None,
        }
    }

    /// Add the wait-graph section from `runtime`.
    pub fn with_runtime(mut self, runtime: &DoppioRuntime) -> RunReport {
        self.waitgraph = Some(WaitGraphSummary {
            deadlock: runtime.deadlock_report().map(|r| r.to_string()),
            lock_order_warnings: runtime
                .lock_order_warnings()
                .iter()
                .map(|w| w.to_string())
                .collect(),
        });
        self
    }

    /// Add the trace-truncation section from `sink`.
    pub fn with_trace(mut self, sink: &RingSink) -> RunReport {
        self.trace = Some(TraceSummary {
            recorded: sink.len() as u64,
            capacity: sink.capacity() as u64,
            dropped: sink.dropped(),
        });
        self
    }

    /// Add the critical-path section: replay the causal events in
    /// `sink` into a [`CausalReport`] (per-request critical paths and
    /// per-class latency attribution). Truncated rings degrade to a
    /// verdict rather than a wrong path.
    pub fn with_causal(mut self, sink: &RingSink) -> RunReport {
        self.causal = Some(CausalReport::analyze(&sink.events(), sink.dropped()));
        self
    }

    /// Add the per-process section: `kernel`'s process table (pids,
    /// exit statuses, slice counts, pipe traffic, lifetimes).
    pub fn with_kernel(mut self, kernel: &Kernel) -> RunReport {
        self.processes = Some(kernel.process_table());
        self
    }

    /// Merge per-shard reports into one aggregate report, the building
    /// block of `doppio-scale`'s sharded runs.
    ///
    /// The merge is order-independent by construction: counters are
    /// summed with saturating addition into a name-keyed map,
    /// histogram snapshots are merged with the associative/commutative
    /// [`HistogramSnapshot::merge`], percentile rows are recomputed
    /// from the merged snapshots, and every collection comes out in
    /// canonical sorted-name order — so a parallel fold and a serial
    /// fold over the same shard set render byte-identical artifacts.
    /// `now_ns` is the maximum across shards (each shard owns an
    /// independent virtual clock). The profiler, wait-graph, trace,
    /// and process sections are per-shard artifacts and are left out;
    /// causal critical-path sections DO merge (via the
    /// order-independent [`CausalReport::merge`]) because cross-shard
    /// attribution tables are the whole point of a scale run.
    pub fn merge(title: impl Into<String>, reports: &[RunReport]) -> RunReport {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut snaps: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        let mut now_ns = 0u64;
        for r in reports {
            now_ns = now_ns.max(r.now_ns);
            for (name, v) in &r.counters {
                let slot = counters.entry(name.clone()).or_insert(0);
                *slot = slot.saturating_add(*v);
            }
            for (name, snap) in &r.snapshots {
                let merged = match snaps.get(name) {
                    Some(prev) => prev.merge(snap),
                    None => snap.clone(),
                };
                snaps.insert(name.clone(), merged);
            }
        }
        let snapshots: Vec<(String, HistogramSnapshot)> = snaps.into_iter().collect();
        let histograms = snapshots
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(name, snap)| HistRow::from_snapshot(name, snap))
            .collect();
        let causal_parts: Vec<CausalReport> =
            reports.iter().filter_map(|r| r.causal.clone()).collect();
        let causal = if causal_parts.is_empty() {
            None
        } else {
            Some(CausalReport::merge(&causal_parts))
        };
        RunReport {
            title: title.into(),
            now_ns,
            counters: counters.into_iter().collect(),
            histograms,
            snapshots,
            profile: None,
            waitgraph: None,
            trace: None,
            causal,
            processes: None,
        }
    }

    /// Prometheus text exposition of this report's counters and raw
    /// histogram snapshots — byte-identical to what a live
    /// [`MetricsRegistry`](doppio_trace::MetricsRegistry) holding the
    /// same data would serve, and available for merged reports where
    /// no single registry ever existed.
    pub fn prometheus(&self) -> String {
        doppio_trace::prometheus::render_parts(&self.counters, &self.snapshots)
    }

    /// The summarized row for histogram `name`, if it recorded samples.
    pub fn histogram(&self, name: &str) -> Option<&HistRow> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Counters that record injected faults and recovery retries
    /// (`fault.*`, `*.retries`, `*.reconnect*`).
    pub fn fault_counters(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(n, _)| {
                n.starts_with("fault.") || n.ends_with(".retries") || n.contains(".reconnect")
            })
            .cloned()
            .collect()
    }

    /// Counters from the replicated storage tier (`storage.*`):
    /// journal appends/replays, replication traffic, node crashes and
    /// restarts, cache hits/misses/invalidations, client reconnects.
    pub fn storage_counters(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with("storage."))
            .cloned()
            .collect()
    }

    /// One human paragraph: the headline numbers a run ends with.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{}: ran {} events over {:.1} ms of virtual time",
            self.title,
            self.counter("engine.events_run"),
            self.now_ns as f64 / 1e6,
        );
        if let Some(h) = self.histogram("engine.event_latency") {
            s.push_str(&format!(
                "; event latency p50 {:.3} ms / p95 {:.3} ms / max {:.3} ms over {} events",
                h.p50 as f64 / 1e6,
                h.p95 as f64 / 1e6,
                h.max as f64 / 1e6,
                h.count,
            ));
        }
        let kills = self.counter("engine.watchdog_kills");
        s.push_str(&format!("; {kills} watchdog kills"));
        let faults: u64 = self.fault_counters().iter().map(|(_, v)| v).sum();
        if faults > 0 {
            s.push_str(&format!("; {faults} faults/retries"));
        }
        if let Some(p) = &self.profile {
            s.push_str(&format!("; {} profile samples", p.samples));
            if let Some((frame, _)) = p.top_self.first() {
                s.push_str(&format!(" (hottest: {frame})"));
            }
        }
        if let Some(t) = &self.trace {
            if t.dropped > 0 {
                s.push_str(&format!("; trace TRUNCATED: {} events dropped", t.dropped));
            }
        }
        if let Some(c) = &self.causal {
            let reqs: u64 = c.classes.values().map(|cl| cl.requests).sum();
            s.push_str(&format!(
                "; {} traced requests across {} classes",
                reqs,
                c.classes.len()
            ));
        }
        if let Some(w) = &self.waitgraph {
            if w.deadlock.is_some() {
                s.push_str("; DEADLOCK detected");
            }
        }
        if let Some(procs) = &self.processes {
            let exited = procs.iter().filter(|p| p.status != "running").count();
            s.push_str(&format!("; {} processes ({} exited)", procs.len(), exited));
        }
        s.push('.');
        s
    }

    /// Render the full report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut md = format!("# Run report: {}\n\n{}\n", self.title, self.summary());

        if !self.histograms.is_empty() {
            md.push_str("\n## Latency histograms\n\n");
            md.push_str("| histogram | count | mean | p50 | p90 | p95 | p99 | max |\n");
            md.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
            for h in &self.histograms {
                md.push_str(&format!(
                    "| `{}` | {} | {:.1} | {} | {} | {} | {} | {} |\n",
                    h.name, h.count, h.mean, h.p50, h.p90, h.p95, h.p99, h.max
                ));
            }
        }

        if let Some(p) = &self.profile {
            md.push_str(&format!(
                "\n## Profile ({} samples, every {} virtual ns)\n",
                p.samples, p.interval_ns
            ));
            for (label, frames) in [("self", &p.top_self), ("total", &p.top_total)] {
                md.push_str(&format!("\n### Top frames by {label} weight\n\n"));
                for (frame, w) in frames {
                    md.push_str(&format!("- `{frame}` — {w}\n"));
                }
            }
        }

        let faults = self.fault_counters();
        if !faults.is_empty() {
            md.push_str("\n## Faults and retries\n\n");
            for (name, v) in &faults {
                md.push_str(&format!("- `{name}`: {v}\n"));
            }
        }

        let storage = self.storage_counters();
        if !storage.is_empty() {
            md.push_str("\n## Storage\n\n");
            for (name, v) in &storage {
                md.push_str(&format!("- `{name}`: {v}\n"));
            }
        }

        if let Some(w) = &self.waitgraph {
            md.push_str("\n## Wait graph\n\n");
            match &w.deadlock {
                Some(d) => md.push_str(&format!("- **deadlock**: {d}\n")),
                None => md.push_str("- no deadlock detected\n"),
            }
            for warn in &w.lock_order_warnings {
                md.push_str(&format!("- lock-order warning: {warn}\n"));
            }
        }

        if let Some(procs) = &self.processes {
            md.push_str("\n## Processes\n\n");
            md.push_str(
                "| pid | name | argv | group | status | slices | pipe in | pipe out | spawned (ns) | exited (ns) |\n",
            );
            md.push_str("|---:|---|---|---|---|---:|---:|---:|---:|---:|\n");
            for p in procs {
                md.push_str(&format!(
                    "| {} | `{}` | `{}` | {} | {} | {} | {} | {} | {} | {} |\n",
                    p.pid,
                    p.name,
                    p.argv.join(" "),
                    p.group.as_deref().unwrap_or("-"),
                    p.status,
                    p.slices,
                    p.pipe_in,
                    p.pipe_out,
                    p.spawned_at_ns,
                    p.exited_at_ns
                        .map(|n| n.to_string())
                        .unwrap_or_else(|| "-".to_string()),
                ));
            }
        }

        if let Some(c) = &self.causal {
            md.push_str("\n## Critical paths\n\n");
            md.push_str(&c.to_markdown());
        }

        if let Some(t) = &self.trace {
            md.push_str(&format!(
                "\n## Trace\n\n- {} events recorded (capacity {}), {} dropped{}\n",
                t.recorded,
                t.capacity,
                t.dropped,
                if t.dropped > 0 {
                    " — **trace is truncated**"
                } else {
                    ""
                }
            ));
        }

        md.push_str("\n## Counters\n\n");
        for (name, v) in &self.counters {
            md.push_str(&format!("- `{name}`: {v}\n"));
        }
        md
    }

    /// Render the full report as a JSON document (deterministic key
    /// order, trailing newline).
    pub fn to_json_string(&self) -> String {
        json::to_string(&self.to_json())
    }

    /// The report as a [`Json`] value.
    pub fn to_json(&self) -> Json {
        let mut root = BTreeMap::new();
        root.insert("title".into(), Json::Str(self.title.clone()));
        root.insert("now_ns".into(), Json::Num(self.now_ns as f64));

        let counters: BTreeMap<String, Json> = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
            .collect();
        root.insert("counters".into(), Json::Obj(counters));

        let hists: BTreeMap<String, Json> = self
            .histograms
            .iter()
            .map(|h| {
                let mut o = BTreeMap::new();
                o.insert("count".into(), Json::Num(h.count as f64));
                o.insert("mean".into(), Json::Num(h.mean));
                o.insert("p50".into(), Json::Num(h.p50 as f64));
                o.insert("p90".into(), Json::Num(h.p90 as f64));
                o.insert("p95".into(), Json::Num(h.p95 as f64));
                o.insert("p99".into(), Json::Num(h.p99 as f64));
                o.insert("max".into(), Json::Num(h.max as f64));
                (h.name.clone(), Json::Obj(o))
            })
            .collect();
        root.insert("histograms".into(), Json::Obj(hists));

        if let Some(p) = &self.profile {
            let mut o = BTreeMap::new();
            o.insert("samples".into(), Json::Num(p.samples as f64));
            o.insert("interval_ns".into(), Json::Num(p.interval_ns as f64));
            let frames = |v: &[(String, u64)]| {
                Json::Arr(
                    v.iter()
                        .map(|(f, w)| Json::Arr(vec![Json::Str(f.clone()), Json::Num(*w as f64)]))
                        .collect(),
                )
            };
            o.insert("top_self".into(), frames(&p.top_self));
            o.insert("top_total".into(), frames(&p.top_total));
            root.insert("profile".into(), Json::Obj(o));
        }

        if let Some(w) = &self.waitgraph {
            let mut o = BTreeMap::new();
            o.insert(
                "deadlock".into(),
                match &w.deadlock {
                    Some(d) => Json::Str(d.clone()),
                    None => Json::Null,
                },
            );
            o.insert(
                "lock_order_warnings".into(),
                Json::Arr(
                    w.lock_order_warnings
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            );
            root.insert("waitgraph".into(), Json::Obj(o));
        }

        if let Some(t) = &self.trace {
            let mut o = BTreeMap::new();
            o.insert("recorded".into(), Json::Num(t.recorded as f64));
            o.insert("capacity".into(), Json::Num(t.capacity as f64));
            o.insert("dropped".into(), Json::Num(t.dropped as f64));
            root.insert("trace".into(), Json::Obj(o));
        }

        if let Some(c) = &self.causal {
            root.insert("causal".into(), c.to_json());
        }

        if let Some(procs) = &self.processes {
            let rows = procs
                .iter()
                .map(|p| {
                    let mut o = BTreeMap::new();
                    o.insert("pid".into(), Json::Num(p.pid as f64));
                    o.insert("name".into(), Json::Str(p.name.clone()));
                    o.insert(
                        "argv".into(),
                        Json::Arr(p.argv.iter().map(|a| Json::Str(a.clone())).collect()),
                    );
                    o.insert(
                        "group".into(),
                        match &p.group {
                            Some(g) => Json::Str(g.clone()),
                            None => Json::Null,
                        },
                    );
                    o.insert("status".into(), Json::Str(p.status.clone()));
                    o.insert("slices".into(), Json::Num(p.slices as f64));
                    o.insert("pipe_in".into(), Json::Num(p.pipe_in as f64));
                    o.insert("pipe_out".into(), Json::Num(p.pipe_out as f64));
                    o.insert("spawned_at_ns".into(), Json::Num(p.spawned_at_ns as f64));
                    o.insert(
                        "exited_at_ns".into(),
                        match p.exited_at_ns {
                            Some(n) => Json::Num(n as f64),
                            None => Json::Null,
                        },
                    );
                    Json::Obj(o)
                })
                .collect();
            root.insert("processes".into(), Json::Arr(rows));
        }

        Json::Obj(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_jsengine::{Browser, EngineBuilder};
    use doppio_trace::Profiler;

    fn sample_engine() -> Engine {
        let e = EngineBuilder::new(Browser::Chrome)
            .histograms(true)
            .profiler(Profiler::new(1_000))
            .build();
        for _ in 0..5 {
            e.send_message(|eng| eng.advance_ns(10_000));
        }
        e.run_until_idle();
        e
    }

    #[test]
    fn collect_summarizes_counters_and_histograms() {
        let e = sample_engine();
        let r = RunReport::collect("unit", &e);
        assert_eq!(r.counter("engine.events_run"), 5);
        let h = r.histogram("engine.event_latency").expect("latency rows");
        assert_eq!(h.count, 5);
        assert!(h.p50 <= h.p95 && h.p95 <= h.max);
        assert!(r.profile.as_ref().unwrap().samples > 0);
        let md = r.to_markdown();
        assert!(md.contains("# Run report: unit"));
        assert!(md.contains("engine.event_latency"));
        assert!(r.summary().contains("ran 5 events"));
    }

    #[test]
    fn storage_counters_get_their_own_section() {
        let e = sample_engine();
        e.metrics().counter("storage.journal.append").add(4);
        e.metrics().counter("storage.journal.replayed").add(4);
        e.metrics().counter("storage.node.crash").inc();
        e.metrics().counter("fault.storage.replica_crash").inc();
        let r = RunReport::collect("unit", &e);
        let storage = r.storage_counters();
        let names: Vec<&str> = storage.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "storage.journal.append",
                "storage.journal.replayed",
                "storage.node.crash"
            ]
        );
        let md = r.to_markdown();
        assert!(md.contains("## Storage"));
        assert!(md.contains("`storage.journal.replayed`: 4"));
        // Injected storage faults stay in the faults section.
        assert!(r
            .fault_counters()
            .iter()
            .any(|(n, _)| n == "fault.storage.replica_crash"));
    }

    #[test]
    fn json_rendering_parses_and_is_deterministic() {
        let r1 = RunReport::collect("unit", &sample_engine());
        let r2 = RunReport::collect("unit", &sample_engine());
        let (j1, j2) = (r1.to_json_string(), r2.to_json_string());
        assert_eq!(j1, j2, "same workload, byte-identical report");
        let parsed = json::parse(&j1).expect("report JSON parses");
        assert_eq!(parsed.get("title").unwrap().as_str(), Some("unit"));
        assert!(parsed
            .get("histograms")
            .unwrap()
            .get("engine.event_latency")
            .is_some());
    }

    #[test]
    fn merge_is_order_independent_and_prometheus_matches_registry() {
        let e1 = sample_engine();
        let r1 = RunReport::collect("shard-a", &e1);
        // A report's exposition equals what the live registry serves.
        assert_eq!(r1.prometheus(), e1.metrics().prometheus());

        let e2 = EngineBuilder::new(Browser::Firefox)
            .histograms(true)
            .build();
        for _ in 0..3 {
            e2.send_message(|eng| eng.advance_ns(2_000));
        }
        e2.run_until_idle();
        let r2 = RunReport::collect("shard-b", &e2);

        let ab = RunReport::merge("merged", &[r1.clone(), r2.clone()]);
        let ba = RunReport::merge("merged", &[r2.clone(), r1.clone()]);
        assert_eq!(
            ab.to_json_string(),
            ba.to_json_string(),
            "order-independent"
        );
        assert_eq!(ab.prometheus(), ba.prometheus(), "order-independent prom");
        assert_eq!(
            ab.counter("engine.events_run"),
            r1.counter("engine.events_run") + r2.counter("engine.events_run")
        );
        let h = ab.histogram("engine.event_latency").expect("merged rows");
        assert_eq!(h.count, 8);
        assert_eq!(ab.now_ns, r1.now_ns.max(r2.now_ns));
    }

    #[test]
    fn trace_section_reports_truncation() {
        use doppio_trace::{cat, Phase, TraceEvent, TraceSink};
        let sink = RingSink::with_capacity(4);
        for i in 0..9u64 {
            sink.record(TraceEvent {
                name: "tick".into(),
                cat: cat::ENGINE,
                phase: Phase::Instant,
                ts_ns: i,
                dur_ns: 0,
                tid: 0,
                id: 0,
                args: vec![],
            });
        }
        let e = EngineBuilder::new(Browser::Chrome).build();
        let r = RunReport::collect("t", &e).with_trace(&sink);
        let t = r.trace.as_ref().unwrap();
        assert_eq!(t.capacity, 4);
        assert_eq!(t.dropped, 5);
        assert!(r.summary().contains("TRUNCATED"));
        assert!(r.to_markdown().contains("trace is truncated"));
    }

    #[test]
    fn causal_section_renders_and_merges() {
        use doppio_trace::{RingSink, Tracer};
        use std::rc::Rc;

        let run = |seed: u64| {
            let sink = Rc::new(RingSink::with_capacity(4096));
            let e = EngineBuilder::new(Browser::Chrome)
                .rng_seed(seed)
                .tracer(Tracer::new(sink.clone()))
                .build();
            for _ in 0..3 {
                e.inject_user_input(|eng| eng.advance_ns(25_000));
            }
            e.run_until_idle();
            RunReport::collect("causal", &e).with_causal(&sink)
        };

        let r = run(7);
        let c = r.causal.as_ref().expect("causal section");
        assert_eq!(c.truncated, 0);
        let input = c.classes.get("input").expect("input request class");
        assert_eq!(input.requests, 3);
        assert!(r.summary().contains("3 traced requests"));
        let md = r.to_markdown();
        assert!(md.contains("## Critical paths"));
        assert!(md.contains("`input`"));
        let json = r.to_json_string();
        assert!(json.contains("\"causal\""));

        // Merging shard reports folds their attribution tables, and
        // stays byte-identical regardless of shard order.
        let (a, b) = (run(7), run(8));
        let ab = RunReport::merge("m", &[a.clone(), b.clone()]);
        let ba = RunReport::merge("m", &[b, a]);
        let merged = ab.causal.as_ref().expect("merged causal");
        assert_eq!(merged.classes.get("input").unwrap().requests, 6);
        assert_eq!(
            ab.causal.as_ref().unwrap().to_json_string(),
            ba.causal.as_ref().unwrap().to_json_string()
        );
    }
}
