//! The adaptive suspend counter (§4.1).
//!
//! "To prevent applications from executing for too long, DOPPIO uses a
//! simple counter to determine when an application needs to suspend.
//! Each suspend check initiated by the language implementation
//! decrements the counter by 1. When the counter reaches 0, DOPPIO
//! determines how long it took for the counter to tick to 0. It then
//! updates a cumulative moving average representing how often the
//! program checks whether or not it should suspend. This new value,
//! along with a preconfigured time slice duration, is then used to set
//! the new counter value."

/// Default time-slice duration: how long a program may run between
/// suspensions. 10 ms keeps the page responsive with comfortable margin
/// under the ~5 s watchdog, while keeping suspension overhead under the
/// 2% the paper reports.
pub const DEFAULT_TIME_SLICE_NS: u64 = 10_000_000;

/// Initial counter value before any calibration data exists.
const INITIAL_COUNTER: u64 = 1_000;

/// The adaptive suspend counter.
#[derive(Debug, Clone)]
pub struct SuspendTimer {
    time_slice_ns: u64,
    counter: u64,
    counter_initial: u64,
    window_start_ns: u64,
    /// Cumulative moving average of virtual ns per suspend check.
    avg_ns_per_check: f64,
    windows_observed: u64,
    checks_total: u64,
}

impl SuspendTimer {
    /// Create a timer with the default time slice.
    pub fn new(now_ns: u64) -> SuspendTimer {
        SuspendTimer::with_time_slice(now_ns, DEFAULT_TIME_SLICE_NS)
    }

    /// Create a timer with a custom time slice (ablation experiments
    /// sweep this).
    pub fn with_time_slice(now_ns: u64, time_slice_ns: u64) -> SuspendTimer {
        SuspendTimer {
            time_slice_ns,
            counter: INITIAL_COUNTER,
            counter_initial: INITIAL_COUNTER,
            window_start_ns: now_ns,
            avg_ns_per_check: 0.0,
            windows_observed: 0,
            checks_total: 0,
        }
    }

    /// The configured time slice.
    pub fn time_slice_ns(&self) -> u64 {
        self.time_slice_ns
    }

    /// Total suspend checks performed.
    pub fn checks_total(&self) -> u64 {
        self.checks_total
    }

    /// The current estimate of virtual ns per check (0 before the first
    /// window completes).
    pub fn avg_ns_per_check(&self) -> f64 {
        self.avg_ns_per_check
    }

    /// The counter value the last recalibration chose (how many checks
    /// the timer lets a program run between suspensions). Exposed so
    /// the runtime can trace adjustment events.
    pub fn counter_initial(&self) -> u64 {
        self.counter_initial
    }

    /// One suspend check. Returns `true` when the program should
    /// suspend (the counter reached zero); the counter recalibrates on
    /// that boundary.
    pub fn check(&mut self, now_ns: u64) -> bool {
        self.checks_total += 1;
        self.counter -= 1;
        if self.counter > 0 {
            return false;
        }

        // The counter ticked to zero: measure how long the window took
        // and fold it into the cumulative moving average.
        let elapsed = now_ns.saturating_sub(self.window_start_ns).max(1);
        let sample = elapsed as f64 / self.counter_initial as f64;
        self.windows_observed += 1;
        let n = self.windows_observed as f64;
        self.avg_ns_per_check += (sample - self.avg_ns_per_check) / n;

        // New counter value: how many checks fit in one time slice at
        // the observed rate.
        let per_check = self.avg_ns_per_check.max(1.0);
        self.counter_initial =
            ((self.time_slice_ns as f64 / per_check) as u64).clamp(16, 5_000_000);
        self.counter = self.counter_initial;
        self.window_start_ns = now_ns;
        true
    }

    /// Restart the current window (called after a suspension resumes so
    /// the suspended interval doesn't pollute the rate estimate).
    pub fn reset_window(&mut self, now_ns: u64) {
        self.window_start_ns = now_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the timer with a fixed cost per check and return the
    /// counter value it converges to.
    fn converge(ns_per_check: u64, slice_ns: u64) -> u64 {
        let mut now = 0u64;
        let mut t = SuspendTimer::with_time_slice(now, slice_ns);
        for _ in 0..200_000 {
            now += ns_per_check;
            t.check(now);
        }
        t.counter_initial
    }

    #[test]
    fn counter_converges_to_slice_over_check_cost() {
        // 1000 ns per check, 10 ms slice => ~10_000 checks per slice.
        let c = converge(1_000, 10_000_000);
        assert!((8_000..=12_000).contains(&c), "converged to {c}");
    }

    #[test]
    fn faster_checks_mean_larger_counter() {
        let fast = converge(100, 10_000_000);
        let slow = converge(10_000, 10_000_000);
        assert!(fast > 10 * slow, "fast={fast} slow={slow}");
    }

    #[test]
    fn first_window_fires_after_initial_counter() {
        let mut t = SuspendTimer::new(0);
        let mut fired = 0;
        for i in 1..=INITIAL_COUNTER {
            if t.check(i * 10) {
                fired = i;
                break;
            }
        }
        assert_eq!(fired, INITIAL_COUNTER);
    }

    #[test]
    fn suspensions_are_spaced_about_one_slice_apart() {
        let slice = 1_000_000; // 1 ms
        let mut now = 0u64;
        let mut t = SuspendTimer::with_time_slice(now, slice);
        let mut last_fire = 0u64;
        let mut gaps = Vec::new();
        for _ in 0..3_000_000u64 {
            now += 500; // 0.5 µs per check
            if t.check(now) {
                if last_fire > 0 {
                    gaps.push(now - last_fire);
                }
                last_fire = now;
                t.reset_window(now);
            }
        }
        // Skip the calibration transient, then expect ~1 ms gaps.
        let tail = &gaps[gaps.len() / 2..];
        let avg = tail.iter().sum::<u64>() / tail.len() as u64;
        assert!(
            (slice / 2..=slice * 2).contains(&avg),
            "average gap {avg} ns should approximate the slice {slice} ns"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut t = SuspendTimer::new(0);
        for i in 0..10 {
            t.check(i);
        }
        assert_eq!(t.checks_total(), 10);
    }
}
