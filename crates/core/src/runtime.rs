//! The Doppio runtime: thread pool, scheduler, and the suspend-and-
//! resume dispatch loop (§4.1–§4.4).
//!
//! Programs hosted on Doppio keep their call stacks in ordinary heap
//! objects (a [`GuestThread`] owns its explicit stack) and run in
//! *slices*: the runtime dispatches one thread, the thread executes
//! until its suspend check fires (or it finishes, or it blocks on an
//! asynchronous browser API), and the runtime then schedules a
//! *resumption callback* through the fastest asynchronous mechanism the
//! browser offers — `setImmediate`, else `sendMessage`, else
//! `setTimeout` (§4.4). Between slices, queued browser events (user
//! input!) get to run, which is what keeps the page responsive.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use doppio_jsengine::profile::ResumeMechanism;
use doppio_jsengine::Engine;
use doppio_trace::{cat, ArgValue, Histogram};

use crate::suspend::{SuspendTimer, DEFAULT_TIME_SLICE_NS};
use crate::waitgraph::{BlockEdge, DeadlockReport, LockOrderWarning, Resource, WaitGraph};

/// Trace lane for runtime-wide events (suspension intervals, timer
/// adjustments). Lane 0 is the browser event loop; guest threads get
/// `THREAD_LANE_BASE + thread_id`.
const RUNTIME_LANE: u32 = 1;
/// First trace lane used for per-thread slices.
const THREAD_LANE_BASE: u32 = 2;

/// Identifies a thread in the runtime's thread pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub usize);

/// Lifecycle state of a guest thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run.
    Ready,
    /// Waiting on an asynchronous completion or a monitor.
    Blocked,
    /// Ran to completion.
    Finished,
}

/// What a guest thread reports at the end of a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStep {
    /// The thread's program completed.
    Finished,
    /// The suspend check fired (or the thread voluntarily yielded, e.g.
    /// at a JVM context-switch point); the thread is still ready.
    Yielded,
    /// The thread started an asynchronous operation via
    /// [`ThreadContext::block_on`] and must not run until it is woken.
    Blocked,
}

/// A program hosted on the Doppio execution environment.
///
/// Implementations must keep all resumption state in `self` (the
/// explicit call stack requirement of §4.1) and call
/// [`ThreadContext::should_suspend`] periodically — DoppioJVM does so
/// at method call boundaries (§6.1) — returning
/// [`ThreadStep::Yielded`] when it fires.
pub trait GuestThread {
    /// Run one slice.
    fn run(&mut self, ctx: &mut ThreadContext<'_>) -> ThreadStep;

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "guest"
    }
}

/// Picks which ready thread runs next (§4.3: "Language implementations
/// can provide a scheduling function that determines which thread to
/// resume").
pub trait Scheduler {
    /// Choose one of `ready` (non-empty, ascending order).
    fn pick(&mut self, ready: &[ThreadId]) -> ThreadId;
}

/// The default scheduler: round-robin over ready threads.
#[derive(Debug, Default)]
pub struct RoundRobinScheduler {
    last: usize,
}

impl Scheduler for RoundRobinScheduler {
    fn pick(&mut self, ready: &[ThreadId]) -> ThreadId {
        let next = ready
            .iter()
            .copied()
            .find(|t| t.0 > self.last)
            .unwrap_or(ready[0]);
        self.last = next.0;
        next
    }
}

/// Counters the runtime accumulates (these feed Figures 4 and 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Number of suspend-and-resume round trips.
    pub suspensions: u64,
    /// Virtual ns spent suspended (yield → resumption callback).
    pub suspended_ns: u64,
    /// Thread slices executed.
    pub slices: u64,
    /// Slices that switched to a different thread than the previous one.
    pub context_switches: u64,
    /// Virtual time the runtime started.
    pub started_ns: u64,
    /// Virtual time the last thread finished (0 while running).
    pub finished_ns: u64,
}

impl RuntimeStats {
    /// Wall-clock duration of the whole run, in virtual ns.
    pub fn wall_ns(&self) -> u64 {
        self.finished_ns.saturating_sub(self.started_ns)
    }

    /// CPU time: wall-clock minus suspension (the Figure 4 split).
    pub fn cpu_ns(&self) -> u64 {
        self.wall_ns().saturating_sub(self.suspended_ns)
    }

    /// Suspension as a fraction of wall-clock time (Figure 5).
    pub fn suspension_fraction(&self) -> f64 {
        if self.wall_ns() == 0 {
            0.0
        } else {
            self.suspended_ns as f64 / self.wall_ns() as f64
        }
    }
}

/// Errors surfaced by the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Live threads are blocked and can never be woken — either a
    /// wait-for cycle was detected mid-run, or the event loop drained
    /// with live threads still blocked.
    Deadlock {
        /// Names of the blocked threads.
        blocked: Vec<String>,
        /// Per-thread blame lines from the wait-for graph (thread,
        /// site, blocked-on resource, holder).
        details: Vec<String>,
        /// The wait-for cycle, when one exists (an all-blocked state
        /// without a cycle — e.g. a lost wakeup — has no cycle to
        /// show, only blame lines).
        report: Option<DeadlockReport>,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Deadlock {
                blocked,
                details,
                report,
            } => {
                write!(
                    f,
                    "deadlock: all live threads blocked ({})",
                    blocked.join(", ")
                )?;
                if let Some(r) = report {
                    write!(f, "; {r}")?;
                }
                for line in details {
                    write!(f, "\n  {line}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

struct Slot {
    name: String,
    state: ThreadState,
    wake_pending: bool,
    /// Force-finished by [`DoppioRuntime::kill`]; the slice in flight
    /// (if any) must not resurrect the thread when it returns.
    killed: bool,
    /// Owner tag (the kernel uses pids). Inherited by threads spawned
    /// from within a slice, so a whole process's thread tree shares it.
    tag: Option<u64>,
    thread: Option<Box<dyn GuestThread>>,
}

/// A thread-finished callback: `(thread, tag)`, invoked outside the
/// runtime borrow.
type ExitHook = Rc<dyn Fn(ThreadId, Option<u64>)>;

struct Inner {
    threads: Vec<Slot>,
    scheduler: Box<dyn Scheduler>,
    timer: SuspendTimer,
    stats: RuntimeStats,
    tick_scheduled: bool,
    suspend_started_at: Option<u64>,
    last_ran: Option<ThreadId>,
    waits: WaitGraph,
    deadlock: Option<DeadlockReport>,
    /// Called (outside the runtime borrow) whenever a thread reaches
    /// `Finished`, with the thread and its tag. The kernel uses it to
    /// notice process exit without polling.
    exit_hook: Option<ExitHook>,
}

/// Distribution metrics for the Figure 5 analysis, resolved once at
/// construction like the engine's counters. Recording is gated by the
/// registry's histogram flag (off by default).
#[derive(Clone)]
struct CoreHists {
    /// Virtual duration of each executed slice.
    slice_ns: Histogram,
    /// Virtual duration of each suspension interval (yield → resume).
    suspended_ns: Histogram,
    /// The adaptive counter's value each time the suspend timer fires —
    /// its calibration trajectory over the run.
    suspend_counter: Histogram,
}

impl CoreHists {
    fn new(engine: &Engine) -> CoreHists {
        let m = engine.metrics();
        CoreHists {
            slice_ns: m.histogram("core.slice_ns"),
            suspended_ns: m.histogram("core.suspended_ns"),
            suspend_counter: m.histogram("core.suspend_counter"),
        }
    }
}

/// The Doppio execution environment.
///
/// Cheaply cloneable handle; strictly single-threaded (it lives on the
/// simulated JavaScript thread).
#[derive(Clone)]
pub struct DoppioRuntime {
    engine: Engine,
    inner: Rc<RefCell<Inner>>,
    hists: CoreHists,
}

impl fmt::Debug for DoppioRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("DoppioRuntime")
            .field("threads", &inner.threads.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl DoppioRuntime {
    /// Create a runtime on `engine` with the default round-robin
    /// scheduler and time slice.
    pub fn new(engine: &Engine) -> DoppioRuntime {
        DoppioRuntime::with_config(
            engine,
            Box::new(RoundRobinScheduler::default()),
            DEFAULT_TIME_SLICE_NS,
        )
    }

    /// Create a runtime with a custom scheduler and/or time slice.
    pub fn with_config(
        engine: &Engine,
        scheduler: Box<dyn Scheduler>,
        time_slice_ns: u64,
    ) -> DoppioRuntime {
        if engine.tracer().enabled() {
            engine.tracer().name_lane(RUNTIME_LANE, "doppio runtime");
        }
        DoppioRuntime {
            engine: engine.clone(),
            hists: CoreHists::new(engine),
            inner: Rc::new(RefCell::new(Inner {
                threads: Vec::new(),
                scheduler,
                timer: SuspendTimer::with_time_slice(engine.now_ns(), time_slice_ns),
                stats: RuntimeStats::default(),
                tick_scheduled: false,
                suspend_started_at: None,
                last_ran: None,
                waits: WaitGraph::default(),
                deadlock: None,
                exit_hook: None,
            })),
        }
    }

    /// Replace the scheduler (schedule-exploration harnesses install
    /// seeded/PCT/replay schedulers here before the first tick).
    pub fn set_scheduler(&self, scheduler: Box<dyn Scheduler>) {
        self.inner.borrow_mut().scheduler = scheduler;
    }

    /// The engine this runtime schedules on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Add a thread to the pool (Ready). Threads added after
    /// [`start`](Self::start) begin running on the next tick.
    pub fn spawn(&self, name: impl Into<String>, thread: Box<dyn GuestThread>) -> ThreadId {
        self.spawn_with_tag(name, None, thread)
    }

    /// [`spawn`](Self::spawn) with an owner tag. The kernel tags every
    /// thread of a process with its pid; threads the guest spawns from
    /// inside a slice inherit the spawner's tag automatically.
    pub fn spawn_tagged(
        &self,
        name: impl Into<String>,
        tag: u64,
        thread: Box<dyn GuestThread>,
    ) -> ThreadId {
        self.spawn_with_tag(name, Some(tag), thread)
    }

    fn spawn_with_tag(
        &self,
        name: impl Into<String>,
        tag: Option<u64>,
        thread: Box<dyn GuestThread>,
    ) -> ThreadId {
        let name = name.into();
        let mut inner = self.inner.borrow_mut();
        let id = ThreadId(inner.threads.len());
        let tracer = self.engine.tracer();
        if tracer.enabled() {
            tracer.name_lane(
                THREAD_LANE_BASE + id.0 as u32,
                format!("thread {}: {name}", id.0),
            );
        }
        inner.threads.push(Slot {
            name,
            state: ThreadState::Ready,
            wake_pending: false,
            killed: false,
            tag,
            thread: Some(thread),
        });
        drop(inner);
        self.schedule_tick(false);
        id
    }

    /// The owner tag a thread was spawned with (or inherited).
    pub fn thread_tag(&self, id: ThreadId) -> Option<u64> {
        self.inner.borrow().threads[id.0].tag
    }

    /// Diagnostic name of a thread.
    pub fn thread_name(&self, id: ThreadId) -> String {
        self.inner.borrow().threads[id.0].name.clone()
    }

    /// Every thread carrying `tag`, in spawn order.
    pub fn tagged_threads(&self, tag: u64) -> Vec<ThreadId> {
        self.inner
            .borrow()
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| s.tag == Some(tag))
            .map(|(i, _)| ThreadId(i))
            .collect()
    }

    /// Whether every thread carrying `tag` has finished (vacuously
    /// true for an unused tag).
    pub fn tag_all_finished(&self, tag: u64) -> bool {
        self.inner
            .borrow()
            .threads
            .iter()
            .filter(|s| s.tag == Some(tag))
            .all(|s| s.state == ThreadState::Finished)
    }

    /// Install the thread-exit hook (replacing any previous one). It
    /// fires after a thread reaches `Finished` — from its final slice
    /// or from [`kill`](Self::kill) — outside the runtime borrow, so
    /// the hook may call back into the runtime.
    pub fn set_thread_exit_hook(&self, hook: impl Fn(ThreadId, Option<u64>) + 'static) {
        self.inner.borrow_mut().exit_hook = Some(Rc::new(hook));
    }

    /// Forcibly finish a thread (SIGKILL): its guest state is dropped,
    /// its wait-graph edge cleared, and it will never run another
    /// slice — even if it is killed mid-slice, the in-flight slice's
    /// outcome is discarded. Fires the thread-exit hook.
    pub fn kill(&self, id: ThreadId) {
        let fire = {
            let mut inner = self.inner.borrow_mut();
            let slot = &mut inner.threads[id.0];
            let was_live = slot.state != ThreadState::Finished;
            slot.state = ThreadState::Finished;
            slot.killed = true;
            slot.wake_pending = false;
            slot.thread = None;
            let tag = slot.tag;
            inner.waits.clear_block(id.0);
            if was_live
                && inner
                    .threads
                    .iter()
                    .all(|s| s.state == ThreadState::Finished)
            {
                inner.stats.finished_ns = self.engine.now_ns();
            }
            if was_live {
                Some((inner.exit_hook.clone(), tag))
            } else {
                None
            }
        };
        if let Some((hook, tag)) = fire {
            let tracer = self.engine.tracer();
            if tracer.enabled() {
                tracer.instant(
                    cat::SCHED,
                    "thread.kill",
                    self.engine.now_ns(),
                    RUNTIME_LANE,
                    vec![("thread", ArgValue::U64(id.0 as u64))],
                );
            }
            if let Some(hook) = hook {
                hook(id, tag);
            }
        }
    }

    /// Register the thread whose progress resolves `resource` in the
    /// wait-for graph (see [`WaitGraph::set_owner`]).
    pub fn set_resource_owner(&self, resource: Resource, thread: ThreadId) {
        self.inner.borrow_mut().waits.set_owner(resource, thread.0);
    }

    /// Remove a resource-owner registration.
    pub fn clear_resource_owner(&self, resource: &Resource) {
        self.inner.borrow_mut().waits.clear_owner(resource);
    }

    /// Current state of a thread.
    pub fn thread_state(&self, id: ThreadId) -> ThreadState {
        self.inner.borrow().threads[id.0].state
    }

    /// Wake a blocked thread (asynchronous completions and monitor
    /// notifies call this). Waking a Ready or Finished thread records a
    /// pending wake so a block that races with its own completion does
    /// not sleep forever.
    pub fn wake(&self, id: ThreadId) {
        {
            let mut inner = self.inner.borrow_mut();
            match inner.threads[id.0].state {
                ThreadState::Blocked => inner.threads[id.0].state = ThreadState::Ready,
                ThreadState::Ready => inner.threads[id.0].wake_pending = true,
                ThreadState::Finished => return,
            }
            // Whatever the thread was waiting for is no longer what
            // keeps it off the ready set.
            inner.waits.clear_block(id.0);
        }
        self.schedule_tick(false);
    }

    /// Record that `id` is (about to be) blocked on `resource` at
    /// guest site `site`, and scan for a wait-for cycle through the new
    /// edge. The first cycle found is latched and surfaced by
    /// [`run_to_completion`](Self::run_to_completion); it is also
    /// dumped as a `sched`-category trace instant.
    pub fn note_block(&self, id: ThreadId, resource: Resource, site: impl Into<String>) {
        let report = {
            let mut inner = self.inner.borrow_mut();
            inner.waits.note_block(id.0, resource, site.into());
            if inner.deadlock.is_some() {
                None
            } else {
                let names: Vec<String> = inner.threads.iter().map(|s| s.name.clone()).collect();
                let found = inner
                    .waits
                    .find_cycle(id.0, &|t| names.get(t).cloned().unwrap_or_default());
                inner.deadlock = found.clone();
                found
            }
        };
        if let Some(report) = report {
            let tracer = self.engine.tracer();
            if tracer.enabled() {
                tracer.instant(
                    cat::SCHED,
                    "deadlock.cycle",
                    self.engine.now_ns(),
                    RUNTIME_LANE,
                    vec![
                        ("threads", ArgValue::U64(report.cycle.len() as u64)),
                        ("cycle", ArgValue::Str(report.to_string().into())),
                    ],
                );
            }
        }
    }

    /// Record an outermost lock acquisition (feeds ownership tracking
    /// and the lock-order-inversion detector).
    pub fn note_acquire(&self, id: ThreadId, resource: Resource) {
        let warning = self.inner.borrow_mut().waits.note_acquire(id.0, resource);
        if let Some(w) = warning {
            let tracer = self.engine.tracer();
            if tracer.enabled() {
                tracer.instant(
                    cat::SCHED,
                    "lock_order.inversion",
                    self.engine.now_ns(),
                    RUNTIME_LANE,
                    vec![("warning", ArgValue::Str(w.to_string().into()))],
                );
            }
        }
    }

    /// Record an outermost lock release.
    pub fn note_release(&self, id: ThreadId, resource: Resource) {
        self.inner.borrow_mut().waits.note_release(id.0, resource);
    }

    /// The latched wait-for cycle, if one has been detected.
    pub fn deadlock_report(&self) -> Option<DeadlockReport> {
        self.inner.borrow().deadlock.clone()
    }

    /// Lock-order inversions observed so far.
    pub fn lock_order_warnings(&self) -> Vec<LockOrderWarning> {
        self.inner.borrow().waits.warnings().to_vec()
    }

    /// What a thread is currently blocked on, per the wait-for graph.
    pub fn blocked_edge(&self, id: ThreadId) -> Option<BlockEdge> {
        self.inner.borrow().waits.blocked_on(id.0).cloned()
    }

    /// Build the deadlock error for the current blocked set (used here
    /// and by embedders that drive the event loop themselves).
    pub fn deadlock_error(&self) -> RuntimeError {
        let inner = self.inner.borrow();
        let names: Vec<String> = inner.threads.iter().map(|s| s.name.clone()).collect();
        RuntimeError::Deadlock {
            blocked: inner
                .threads
                .iter()
                .filter(|s| s.state == ThreadState::Blocked)
                .map(|s| s.name.clone())
                .collect(),
            details: inner
                .waits
                .blame_lines(&|t| names.get(t).cloned().unwrap_or_default()),
            report: inner.deadlock.clone(),
        }
    }

    /// Whether a wake raced ahead of a block and is still pending
    /// (diagnostics; a pending wake on a finished thread indicates a
    /// spurious-wake bug somewhere).
    pub fn wake_is_pending(&self, id: ThreadId) -> bool {
        self.inner.borrow().threads[id.0].wake_pending
    }

    /// Mark a thread blocked from outside a slice (monitor acquisition
    /// by another thread's slice). Blocking the currently running
    /// thread must instead be done by returning [`ThreadStep::Blocked`].
    pub fn block(&self, id: ThreadId) {
        let mut inner = self.inner.borrow_mut();
        let slot = &mut inner.threads[id.0];
        if slot.state == ThreadState::Ready {
            slot.state = ThreadState::Blocked;
        }
    }

    /// Begin execution: schedules the first tick.
    pub fn start(&self) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.stats.started_ns == 0 {
                inner.stats.started_ns = self.engine.now_ns();
            }
        }
        self.schedule_tick(false);
    }

    /// Whether every thread has finished.
    pub fn is_finished(&self) -> bool {
        let inner = self.inner.borrow();
        !inner.threads.is_empty()
            && inner
                .threads
                .iter()
                .all(|s| s.state == ThreadState::Finished)
    }

    /// Snapshot of the runtime's counters.
    pub fn stats(&self) -> RuntimeStats {
        self.inner.borrow().stats
    }

    /// Drive the engine's event loop until every thread finishes.
    ///
    /// Returns the final stats, or a deadlock error if all live threads
    /// are blocked with no event left to wake them.
    pub fn run_to_completion(&self) -> Result<RuntimeStats, RuntimeError> {
        self.start();
        loop {
            if self.is_finished() {
                return Ok(self.stats());
            }
            // A wait-for cycle can never resolve: stop immediately with
            // the blame report instead of spinning until the event loop
            // drains.
            if self.inner.borrow().deadlock.is_some() {
                return Err(self.deadlock_error());
            }
            if !self.engine.run_one() {
                return Err(self.deadlock_error());
            }
        }
    }

    /// Schedule a tick through the browser's best resumption mechanism
    /// (§4.4). `counts_as_suspension` marks yields of a still-ready
    /// computation (the Figure 5 accounting); wakes of blocked threads
    /// are I/O latency, not suspension overhead.
    fn schedule_tick(&self, counts_as_suspension: bool) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.tick_scheduled {
                return;
            }
            inner.tick_scheduled = true;
            if counts_as_suspension {
                inner.stats.suspensions += 1;
                inner.suspend_started_at = Some(self.engine.now_ns());
            }
        }
        let rt = self.clone();
        let tick = move |_: &Engine| rt.tick();
        match self.engine.profile().best_resume_mechanism() {
            ResumeMechanism::SetImmediate => {
                self.engine
                    .set_immediate(tick)
                    .expect("profile advertised setImmediate");
            }
            ResumeMechanism::SendMessage => self.engine.send_message(tick),
            ResumeMechanism::SetTimeout => {
                self.engine.set_timeout(0.0, tick);
            }
        }
    }

    fn tick(&self) {
        let now = self.engine.now_ns();
        // Close out suspension accounting and pick a thread.
        let picked = {
            let mut inner = self.inner.borrow_mut();
            inner.tick_scheduled = false;
            if let Some(t0) = inner.suspend_started_at.take() {
                inner.stats.suspended_ns += now.saturating_sub(t0);
                self.hists.suspended_ns.record(now.saturating_sub(t0));
                self.engine.tracer().complete(
                    cat::CORE,
                    "suspended",
                    t0,
                    now.saturating_sub(t0),
                    RUNTIME_LANE,
                    vec![],
                );
            }
            inner.timer.reset_window(now);
            let ready: Vec<ThreadId> = inner
                .threads
                .iter()
                .enumerate()
                .filter(|(_, s)| s.state == ThreadState::Ready)
                .map(|(i, _)| ThreadId(i))
                .collect();
            if ready.is_empty() {
                None
            } else {
                let id = inner.scheduler.pick(&ready);
                debug_assert!(ready.contains(&id), "scheduler picked a non-ready thread");
                let thread = inner.threads[id.0].thread.take();
                Some((id, ready.len(), thread))
            }
        };

        let Some((id, n_ready, Some(mut thread))) = picked else {
            return; // nothing ready: a wake will reschedule us
        };

        {
            let tracer = self.engine.tracer();
            if tracer.enabled() {
                tracer.instant(
                    cat::SCHED,
                    "sched.pick",
                    now,
                    RUNTIME_LANE,
                    vec![
                        ("thread", ArgValue::U64(id.0 as u64)),
                        ("ready", ArgValue::U64(n_ready as u64)),
                    ],
                );
            }
        }

        let mut ctx = self.make_ctx(id);
        let slice_start = self.engine.now_ns();
        let step = thread.run(&mut ctx);
        self.hists
            .slice_ns
            .record(self.engine.now_ns() - slice_start);
        // A thread without interior sample points (non-JVM guests)
        // still attributes its slices to the profile.
        if let Some(p) = self.engine.profiler() {
            let now_end = self.engine.now_ns();
            if p.due(now_end) {
                let root = self
                    .engine
                    .current_event()
                    .map(|k| k.name())
                    .unwrap_or("run");
                let name = self.inner.borrow().threads[id.0].name.clone();
                p.sample(now_end, [root, name.as_str(), "<slice>"]);
            }
        }
        let tracer = self.engine.tracer();
        if tracer.enabled() {
            let step_name = match step {
                ThreadStep::Finished => "finished",
                ThreadStep::Yielded => "yielded",
                ThreadStep::Blocked => "blocked",
            };
            tracer.complete(
                cat::CORE,
                "slice",
                slice_start,
                self.engine.now_ns() - slice_start,
                THREAD_LANE_BASE + id.0 as u32,
                vec![
                    ("thread", ArgValue::U64(id.0 as u64)),
                    ("step", ArgValue::from(step_name)),
                ],
            );
        }

        let (any_ready, finished_now) = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.slices += 1;
            if inner.last_ran != Some(id) {
                if inner.last_ran.is_some() {
                    inner.stats.context_switches += 1;
                }
                inner.last_ran = Some(id);
            }
            let slot = &mut inner.threads[id.0];
            let finished_now = if slot.killed {
                // Killed mid-slice: the slice's outcome is void and the
                // guest state stays dropped. The kill already fired the
                // exit hook.
                false
            } else {
                slot.thread = Some(thread);
                slot.state = match step {
                    ThreadStep::Finished => ThreadState::Finished,
                    ThreadStep::Yielded => ThreadState::Ready,
                    ThreadStep::Blocked => {
                        if slot.wake_pending {
                            slot.wake_pending = false;
                            ThreadState::Ready
                        } else {
                            ThreadState::Blocked
                        }
                    }
                };
                step == ThreadStep::Finished
            };
            // A slice that ended runnable (or done) is not waiting on
            // anything, whatever edges it reported mid-slice.
            if inner.threads[id.0].state != ThreadState::Blocked {
                inner.waits.clear_block(id.0);
            }
            if inner
                .threads
                .iter()
                .all(|s| s.state == ThreadState::Finished)
            {
                inner.stats.finished_ns = self.engine.now_ns();
            }
            let any_ready = inner.threads.iter().any(|s| s.state == ThreadState::Ready);
            (any_ready, finished_now)
        };

        if finished_now {
            let fire = {
                let inner = self.inner.borrow();
                inner
                    .exit_hook
                    .clone()
                    .map(|h| (h, inner.threads[id.0].tag))
            };
            if let Some((hook, tag)) = fire {
                hook(id, tag);
            }
        }

        if any_ready {
            // Suspend-and-resume: let queued browser events (user input)
            // run, then resume via the fast path.
            self.schedule_tick(true);
        }
    }
}

/// The view of the runtime a guest thread sees during its slice.
pub struct ThreadContext<'rt> {
    runtime: DoppioRuntime,
    thread_id: ThreadId,
    _marker: std::marker::PhantomData<&'rt ()>,
}

impl ThreadContext<'_> {
    /// The engine (for charging costs and direct async APIs).
    pub fn engine(&self) -> &Engine {
        self.runtime.engine()
    }

    /// The runtime hosting this thread.
    pub fn runtime(&self) -> &DoppioRuntime {
        &self.runtime
    }

    /// This thread's id.
    pub fn thread_id(&self) -> ThreadId {
        self.thread_id
    }

    /// The trace lane (Chrome `tid`) this thread's slices render on.
    /// Guest language runtimes use this to put their own trace events
    /// on the same lane as the scheduler's slice spans.
    pub fn trace_lane(&self) -> u32 {
        THREAD_LANE_BASE + self.thread_id.0 as u32
    }

    /// One suspend check (§4.1). When this returns `true` the thread
    /// must save its state and return [`ThreadStep::Yielded`].
    pub fn should_suspend(&mut self) -> bool {
        let now = self.runtime.engine.now_ns();
        let mut inner = self.runtime.inner.borrow_mut();
        let fired = inner.timer.check(now);
        if fired {
            // The timer just recalibrated its counter; record the
            // adjustment so traces and the counter-trajectory
            // histogram show segmentation adapting.
            let counter = inner.timer.counter_initial();
            self.runtime.hists.suspend_counter.record(counter);
            let tracer = self.runtime.engine.tracer();
            if tracer.enabled() {
                let avg = inner.timer.avg_ns_per_check();
                drop(inner);
                tracer.instant(
                    cat::CORE,
                    "suspend_timer.adjust",
                    now,
                    RUNTIME_LANE,
                    vec![
                        ("counter", ArgValue::U64(counter)),
                        ("avg_ns_per_check", ArgValue::F64(avg)),
                    ],
                );
            }
        }
        fired
    }

    /// Begin a blocking call over an asynchronous browser API (§4.2).
    ///
    /// `start` receives the engine and a resolver; it must arrange for
    /// the resolver to be called when the asynchronous operation
    /// completes (typically from an event-loop callback). The thread
    /// then returns [`ThreadStep::Blocked`]; when the resolver fires,
    /// the thread is woken and finds the value in the returned cell —
    /// "the program resumes as if it had just received data
    /// synchronously from a regular function call".
    pub fn block_on<T: 'static>(
        &mut self,
        start: impl FnOnce(&Engine, AsyncResolver<T>),
    ) -> AsyncCell<T> {
        let cell = AsyncCell(Rc::new(RefCell::new(None)));
        let dest = cell.0.clone();
        let resolver = AsyncResolver {
            sink: Box::new(move |v| *dest.borrow_mut() = Some(v)),
            runtime: self.runtime.clone(),
            thread: self.thread_id,
            settled: None,
        };
        start(self.runtime.engine(), resolver);
        cell
    }

    /// [`block_on`](Self::block_on) that also records a labeled
    /// `Async` edge in the wait-for graph, so deadlock blame can say
    /// *what* asynchronous completion a thread is stuck on (e.g.
    /// `fs.read(/data/log)`). The edge is cleared by the wake.
    pub fn block_on_labeled<T: 'static>(
        &mut self,
        label: impl Into<String>,
        site: impl Into<String>,
        start: impl FnOnce(&Engine, AsyncResolver<T>),
    ) -> AsyncCell<T> {
        self.runtime
            .note_block(self.thread_id, Resource::Async(label.into()), site);
        self.block_on(start)
    }

    /// Record a wait-for edge for this thread (see
    /// [`DoppioRuntime::note_block`]).
    pub fn note_block(&self, resource: Resource, site: impl Into<String>) {
        self.runtime.note_block(self.thread_id, resource, site);
    }

    /// Record an outermost lock acquisition by this thread.
    pub fn note_acquire(&self, resource: Resource) {
        self.runtime.note_acquire(self.thread_id, resource);
    }

    /// Record an outermost lock release by this thread.
    pub fn note_release(&self, resource: Resource) {
        self.runtime.note_release(self.thread_id, resource);
    }

    /// [`block_on`](Self::block_on) with a deadline: if the resolver
    /// has not fired within `timeout_ns` of virtual time, the cell
    /// resolves to `Err(BlockTimeout)` and the thread is woken anyway.
    /// Whichever of the two outcomes lands first wins; the loser is
    /// discarded (a late value never overwrites a delivered timeout,
    /// and vice versa).
    ///
    /// This is how guest runtimes bound blocking I/O over a faulty
    /// substrate — e.g. a socket `recv` that must not hang forever when
    /// the fault plan ate the reply. Fired timeouts emit a
    /// `fault`-category trace instant.
    pub fn block_on_timeout<T: 'static>(
        &mut self,
        timeout_ns: u64,
        start: impl FnOnce(&Engine, AsyncResolver<T>),
    ) -> AsyncCell<Result<T, BlockTimeout>> {
        let cell = AsyncCell(Rc::new(RefCell::new(None)));
        let settled = Rc::new(std::cell::Cell::new(false));

        let dest = cell.0.clone();
        let resolver = AsyncResolver {
            sink: Box::new(move |v| *dest.borrow_mut() = Some(Ok(v))),
            runtime: self.runtime.clone(),
            thread: self.thread_id,
            settled: Some(settled.clone()),
        };

        let dest = cell.0.clone();
        let runtime = self.runtime.clone();
        let thread = self.thread_id;
        self.runtime
            .engine()
            .complete_async_after(timeout_ns, move |e| {
                if settled.replace(true) {
                    return; // value arrived first
                }
                let tracer = e.tracer();
                if tracer.enabled() {
                    tracer.instant(
                        cat::FAULT,
                        "block_on_timeout",
                        e.now_ns(),
                        RUNTIME_LANE,
                        vec![
                            ("thread", ArgValue::U64(thread.0 as u64)),
                            ("timeout_ns", ArgValue::U64(timeout_ns)),
                        ],
                    );
                }
                *dest.borrow_mut() = Some(Err(BlockTimeout));
                runtime.wake(thread);
            });

        start(self.runtime.engine(), resolver);
        cell
    }

    /// Spawn a sibling thread (JVM `Thread.start`). The sibling
    /// inherits this thread's owner tag, so every thread a kernel
    /// process creates stays attributed to its pid.
    pub fn spawn(&self, name: impl Into<String>, thread: Box<dyn GuestThread>) -> ThreadId {
        match self.runtime.thread_tag(self.thread_id) {
            Some(tag) => self.runtime.spawn_tagged(name, tag, thread),
            None => self.runtime.spawn(name, thread),
        }
    }

    /// Wake a blocked sibling (JVM `notify`/`interrupt`/`unpark`).
    pub fn wake(&self, id: ThreadId) {
        self.runtime.wake(id);
    }
}

/// Receives the value a blocked thread is waiting for.
pub struct AsyncResolver<T> {
    sink: Box<dyn FnOnce(T)>,
    runtime: DoppioRuntime,
    thread: ThreadId,
    /// Shared settled flag for raced resolutions (`block_on_timeout`):
    /// whichever side flips it first delivers; the loser must neither
    /// store its value *nor wake the thread* — a stale wake would set
    /// `wake_pending` and corrupt the thread's next unrelated block.
    settled: Option<Rc<Cell<bool>>>,
}

impl<T> AsyncResolver<T> {
    /// Deliver the value and wake the waiting thread. A no-op if the
    /// operation already settled another way (deadline fired first).
    pub fn resolve(self, value: T) {
        if let Some(settled) = &self.settled {
            if settled.replace(true) {
                return;
            }
        }
        (self.sink)(value);
        self.runtime.wake(self.thread);
    }
}

/// The deadline of [`ThreadContext::block_on_timeout`] fired before the
/// asynchronous operation resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockTimeout;

impl std::fmt::Display for BlockTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blocking call timed out")
    }
}

impl std::error::Error for BlockTimeout {}

/// Where a blocked thread finds its delivered value after waking.
#[derive(Debug)]
pub struct AsyncCell<T>(Rc<RefCell<Option<T>>>);

impl<T> Clone for AsyncCell<T> {
    fn clone(&self) -> Self {
        AsyncCell(self.0.clone())
    }
}

impl<T> AsyncCell<T> {
    /// Whether the value has been delivered.
    pub fn is_ready(&self) -> bool {
        self.0.borrow().is_some()
    }

    /// Take the delivered value, if present.
    pub fn take(&self) -> Option<T> {
        self.0.borrow_mut().take()
    }
}

impl DoppioRuntime {
    fn make_ctx(&self, id: ThreadId) -> ThreadContext<'_> {
        ThreadContext {
            runtime: self.clone(),
            thread_id: id,
            _marker: std::marker::PhantomData,
        }
    }
}
