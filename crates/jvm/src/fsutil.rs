//! Helpers for mounting class files on a Doppio file system.

use doppio_classfile::ClassFile;
use doppio_fs::FileSystem;
use doppio_jsengine::Engine;

/// Write class files under `root` (e.g. `/classes`), creating package
/// directories, and drive the event loop until the writes complete.
pub fn mount_class_files(
    engine: &Engine,
    fs: &FileSystem,
    root: &str,
    classes: &[(String, Vec<u8>)],
) {
    // Collect every directory needed, shallowest first.
    let mut dirs: Vec<String> = vec![root.to_string()];
    for (name, _) in classes {
        let full = format!("{root}/{name}.class");
        let mut cur = String::new();
        for comp in doppio_fs::path::components(&doppio_fs::path::dirname(&full)) {
            cur = format!("{cur}/{comp}");
            if !dirs.contains(&cur) {
                dirs.push(cur.clone());
            }
        }
    }
    dirs.sort_by_key(|d| d.matches('/').count());
    for d in dirs {
        fs.mkdir(&d, |_, _| {}); // EEXIST is fine
        engine.run_until_idle();
    }
    for (name, bytes) in classes {
        let path = format!("{root}/{name}.class");
        fs.write_file(&path, bytes.clone(), move |_, r| {
            r.unwrap_or_else(|e| panic!("mounting class: {e}"));
        });
    }
    engine.run_until_idle();
}

/// Convenience: serialize and mount parsed class files.
pub fn mount_classes(engine: &Engine, fs: &FileSystem, root: &str, classes: &[ClassFile]) {
    let pairs: Vec<(String, Vec<u8>)> = classes
        .iter()
        .map(|cf| (cf.name().expect("class name").to_string(), cf.to_bytes()))
        .collect();
    mount_class_files(engine, fs, root, &pairs);
}
