//! JVM values and operand-stack slot conventions.

/// A reference into the JVM object heap.
pub type ObjRef = usize;

/// One JVM value. `long` and `double` occupy **two** operand-stack and
/// local-variable slots, represented as the value followed by a
/// [`Value::Padding`] slot — which makes the untyped stack shuffles
/// (`dup2`, `pop2`, `dup2_x1`, ...) slot-accurate, exactly as the
/// specification defines them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// `int` (also `boolean`, `byte`, `char`, `short` on the stack).
    Int(i32),
    /// `long` (first of two slots).
    Long(i64),
    /// `float`.
    Float(f32),
    /// `double` (first of two slots).
    Double(f64),
    /// A reference; `None` is `null`.
    Ref(Option<ObjRef>),
    /// The second slot of a `long`/`double`.
    Padding,
    /// A `returnAddress` (for `jsr`/`ret`).
    RetAddr(usize),
}

impl Value {
    /// Whether this value occupies two slots.
    pub fn is_wide(&self) -> bool {
        matches!(self, Value::Long(_) | Value::Double(_))
    }

    /// The `null` reference.
    pub fn null() -> Value {
        Value::Ref(None)
    }

    /// Extract an `int` (interpreter invariant: verified code).
    pub fn as_int(&self) -> i32 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected int, found {other:?}"),
        }
    }

    /// Extract a `long`.
    pub fn as_long(&self) -> i64 {
        match self {
            Value::Long(v) => *v,
            other => panic!("expected long, found {other:?}"),
        }
    }

    /// Extract a `float`.
    pub fn as_float(&self) -> f32 {
        match self {
            Value::Float(v) => *v,
            other => panic!("expected float, found {other:?}"),
        }
    }

    /// Extract a `double`.
    pub fn as_double(&self) -> f64 {
        match self {
            Value::Double(v) => *v,
            other => panic!("expected double, found {other:?}"),
        }
    }

    /// Extract a reference.
    pub fn as_ref(&self) -> Option<ObjRef> {
        match self {
            Value::Ref(r) => *r,
            other => panic!("expected reference, found {other:?}"),
        }
    }

    /// Default value for a field/array of the given descriptor.
    pub fn default_for(descriptor: &str) -> Value {
        match descriptor.as_bytes().first() {
            Some(b'J') => Value::Long(0),
            Some(b'F') => Value::Float(0.0),
            Some(b'D') => Value::Double(0.0),
            Some(b'L') | Some(b'[') => Value::null(),
            _ => Value::Int(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_values_are_wide() {
        assert!(Value::Long(0).is_wide());
        assert!(Value::Double(0.0).is_wide());
        assert!(!Value::Int(0).is_wide());
        assert!(!Value::Ref(None).is_wide());
    }

    #[test]
    fn defaults_match_descriptors() {
        assert_eq!(Value::default_for("I"), Value::Int(0));
        assert_eq!(Value::default_for("Z"), Value::Int(0));
        assert_eq!(Value::default_for("J"), Value::Long(0));
        assert_eq!(Value::default_for("D"), Value::Double(0.0));
        assert_eq!(Value::default_for("Ljava/lang/String;"), Value::null());
        assert_eq!(Value::default_for("[I"), Value::null());
    }
}
