//! The bytecode interpreter (§6).
//!
//! DoppioJVM "implements all 201 bytecode instructions specified in the
//! second edition of the Java Virtual Machine Specification". One call
//! to [`step`] executes one instruction against the explicit frame
//! stack. Anything that cannot complete synchronously — a class that
//! must be downloaded, a native method waiting on an asynchronous
//! browser API, a contended monitor — is reported to the hosting
//! thread, which suspends through the Doppio execution environment and
//! retries or resumes later. Instructions that may block never mutate
//! the operand stack before deciding to block, so retrying is sound.
//!
//! Exception handling (§6.6) never touches the JavaScript exception
//! machinery: [`dispatch_exception`] walks the virtual frame stack for
//! a handler, exactly as the paper describes.

use std::cell::Cell;
use std::rc::Rc;

use doppio_classfile::{access, opcodes as op, Constant};
use doppio_core::{Resource, ThreadContext, ThreadId};
use doppio_jsengine::Cost;
use doppio_trace::cat;

use crate::class::{ClassConst, ClassId, ClinitState, CpEntry, ResolvedField};
use crate::frame::Frame;
use crate::natives::{self, NativeCtx, PendingNative};
use crate::object::HeapObj;
use crate::state::{CallSite, JvmState};
use crate::value::{ObjRef, Value};

/// Outcome of executing one instruction.
pub enum StepResult {
    /// Instruction completed.
    Continue,
    /// A frame was pushed or popped: the §6.1 suspend-check boundary.
    CallBoundary,
    /// A class must be loaded before the instruction can retry.
    NeedClass(String),
    /// A native method blocked on an asynchronous API (§4.2); resume
    /// the pending computation when woken.
    NativeBlocked(PendingNative),
    /// The thread is queued on the monitor of this object; retry the
    /// instruction when woken (§6.2 context-switch point).
    MonitorBlocked(ObjRef),
    /// Voluntary context switch (`Thread.yield`): end the slice with
    /// the thread still ready, regardless of the suspend timer — this
    /// is what makes yields real schedule-exploration switch points.
    VoluntaryYield,
    /// The frame stack emptied: the thread finished.
    Finished,
    /// An exception unwound past the last frame.
    Uncaught(ObjRef),
    /// `System.exit` was called.
    Exit(i32),
}

/// Run the top frame until the thread must leave the interpreter: the
/// hosting thread's slice loop calls this instead of single-stepping.
///
/// When tier-up is enabled ([`JvmState::tier_up`]) and the top frame's
/// method has (or earns) a compiled [`crate::tiered::TieredCode`], the
/// direct-threaded tier executes it; otherwise the switch interpreter
/// steps. Both tiers charge the identical virtual-cost and counter
/// sequence, so which one ran is unobservable in transcripts, reports,
/// and schedules — the switch interpreter is the deopt oracle.
pub fn run(
    state: &mut JvmState,
    frames: &mut Vec<Frame>,
    ctx: &mut ThreadContext<'_>,
    tid: ThreadId,
) -> StepResult {
    loop {
        let sr = if state.tier_up {
            match crate::tiered::enter(state, frames, ctx) {
                Some(code) => crate::tiered::run_tiered(state, frames, ctx, tid, &code),
                None => step(state, frames, ctx, tid),
            }
        } else {
            step(state, frames, ctx, tid)
        };
        match sr {
            StepResult::Continue => {}
            other => return other,
        }
    }
}

/// Execute one instruction of the top frame.
pub fn step(
    state: &mut JvmState,
    frames: &mut Vec<Frame>,
    ctx: &mut ThreadContext<'_>,
    tid: ThreadId,
) -> StepResult {
    let Some(frame) = frames.last_mut() else {
        return StepResult::Finished;
    };
    if frame.pc >= frame.code.bytecode.len() {
        // Falling off the end only happens for malformed code.
        return throw_vm(
            state,
            frames,
            ctx,
            tid,
            "java/lang/InternalError",
            "pc out of range",
        );
    }

    state.instructions += 1;
    state.engine.charge(Cost::Dispatch);

    let code = frame.code.clone();
    let bc = &code.bytecode;
    let pc = frame.pc;
    let opcode = bc[pc];

    macro_rules! u8_at {
        ($off:expr) => {
            bc[pc + $off]
        };
    }
    macro_rules! u16_at {
        ($off:expr) => {
            u16::from_be_bytes([bc[pc + $off], bc[pc + $off + 1]])
        };
    }
    macro_rules! i16_at {
        ($off:expr) => {
            i16::from_be_bytes([bc[pc + $off], bc[pc + $off + 1]])
        };
    }
    macro_rules! i32_at {
        ($off:expr) => {
            i32::from_be_bytes([
                bc[pc + $off],
                bc[pc + $off + 1],
                bc[pc + $off + 2],
                bc[pc + $off + 3],
            ])
        };
    }

    // Most instructions fall through to `frame.pc = pc + len`.
    let mut next_pc = pc + 1 + fixed_operand_len(opcode, bc, pc);

    match opcode {
        op::NOP => {}

        // ---- constants ----
        op::ACONST_NULL => frame.push(Value::null()),
        op::ICONST_M1..=op::ICONST_5 => {
            state.engine.charge(Cost::IntOp);
            frame.push(Value::Int(opcode as i32 - op::ICONST_0 as i32));
        }
        op::LCONST_0 | op::LCONST_1 => {
            state.engine.charge(Cost::LongOp);
            frame.push(Value::Long((opcode - op::LCONST_0) as i64));
        }
        op::FCONST_0..=op::FCONST_2 => {
            state.engine.charge(Cost::FloatOp);
            frame.push(Value::Float((opcode - op::FCONST_0) as f32));
        }
        op::DCONST_0 | op::DCONST_1 => {
            state.engine.charge(Cost::FloatOp);
            frame.push(Value::Double((opcode - op::DCONST_0) as f64));
        }
        op::BIPUSH => {
            state.engine.charge(Cost::IntOp);
            frame.push(Value::Int(u8_at!(1) as i8 as i32));
        }
        op::SIPUSH => {
            state.engine.charge(Cost::IntOp);
            frame.push(Value::Int(i16_at!(1) as i32));
        }
        op::LDC | op::LDC_W | op::LDC2_W => {
            let idx = if opcode == op::LDC {
                u16::from(u8_at!(1))
            } else {
                u16_at!(1)
            };
            // Fast path: the quickened entry holds the decoded value
            // (or the already-interned object handle).
            let cached = state
                .registry
                .get(code.class)
                .cp_cache
                .borrow()
                .get(&idx)
                .cloned();
            match cached {
                Some(CpEntry::Value(v)) => {
                    state.perf.cp_hit.inc();
                    if matches!(v, Value::Long(_)) {
                        state.engine.charge(Cost::LongOp);
                    }
                    frame.push(v);
                }
                Some(CpEntry::Obj(r)) => {
                    // Shared interned handle: one map-sized operation
                    // instead of a per-character copy + pool probe.
                    state.perf.cp_hit.inc();
                    state.engine.charge(Cost::MapOp);
                    frame.push(Value::Ref(Some(r)));
                }
                Some(CpEntry::Class(ref cc)) if cc.mirror.get().is_some() => {
                    state.perf.cp_hit.inc();
                    state.engine.charge(Cost::MapOp);
                    frame.push(Value::Ref(cc.mirror.get()));
                }
                cached => {
                    note_cp_miss(state, ctx, "ldc");
                    let cf = state
                        .registry
                        .get(code.class)
                        .cf
                        .as_ref()
                        .expect("code class");
                    let constant = match cf.constant_pool.get(idx) {
                        Ok(c) => c.clone(),
                        Err(e) => {
                            let msg = format!("bad ldc: {e}");
                            return throw_vm(
                                state,
                                frames,
                                ctx,
                                tid,
                                "java/lang/InternalError",
                                &msg,
                            );
                        }
                    };
                    match constant {
                        Constant::Integer(v) => {
                            quicken(state, code.class, idx, CpEntry::Value(Value::Int(v)));
                            frame.push(Value::Int(v));
                        }
                        Constant::Float(v) => {
                            quicken(state, code.class, idx, CpEntry::Value(Value::Float(v)));
                            frame.push(Value::Float(v));
                        }
                        Constant::Long(v) => {
                            state.engine.charge(Cost::LongOp);
                            quicken(state, code.class, idx, CpEntry::Value(Value::Long(v)));
                            frame.push(Value::Long(v));
                        }
                        Constant::Double(v) => {
                            quicken(state, code.class, idx, CpEntry::Value(Value::Double(v)));
                            frame.push(Value::Double(v));
                        }
                        Constant::String { .. } => {
                            let s = cf.constant_pool.string(idx).unwrap_or_default().to_string();
                            state.engine.charge_n(Cost::StringOp, s.len() as u64);
                            let r = state.intern_string(&s);
                            quicken(state, code.class, idx, CpEntry::Obj(r));
                            frame.push(Value::Ref(Some(r)));
                        }
                        Constant::Class { .. } => {
                            let name = cf
                                .constant_pool
                                .class_name(idx)
                                .unwrap_or_default()
                                .to_string();
                            // Keep an entry installed by `new` etc. so
                            // its resolved id survives the mirror fill.
                            let cc = match cached {
                                Some(CpEntry::Class(cc)) => cc,
                                _ => Rc::new(ClassConst {
                                    name: Rc::from(name.as_str()),
                                    init_id: Cell::new(None),
                                    mirror: Cell::new(None),
                                }),
                            };
                            let r = class_object(state, &name);
                            cc.mirror.set(Some(r));
                            quicken(state, code.class, idx, CpEntry::Class(cc));
                            frame.push(Value::Ref(Some(r)));
                        }
                        other => {
                            let msg = format!("ldc of unsupported constant {other:?}");
                            return throw_vm(
                                state,
                                frames,
                                ctx,
                                tid,
                                "java/lang/InternalError",
                                &msg,
                            );
                        }
                    }
                }
            }
        }

        // ---- loads ----
        op::ILOAD | op::FLOAD | op::ALOAD => {
            state.engine.charge(Cost::IntOp);
            let v = frame.local(u8_at!(1) as usize);
            frame.push(v);
        }
        op::LLOAD | op::DLOAD => {
            state.engine.charge(Cost::LongOp);
            let v = frame.local(u8_at!(1) as usize);
            frame.push(v);
        }
        op::ILOAD_0..=op::ILOAD_3 => {
            state.engine.charge(Cost::IntOp);
            let v = frame.local((opcode - op::ILOAD_0) as usize);
            frame.push(v);
        }
        op::LLOAD_0..=op::LLOAD_3 => {
            state.engine.charge(Cost::LongOp);
            let v = frame.local((opcode - op::LLOAD_0) as usize);
            frame.push(v);
        }
        op::FLOAD_0..=op::FLOAD_3 => {
            state.engine.charge(Cost::FloatOp);
            let v = frame.local((opcode - op::FLOAD_0) as usize);
            frame.push(v);
        }
        op::DLOAD_0..=op::DLOAD_3 => {
            state.engine.charge(Cost::FloatOp);
            let v = frame.local((opcode - op::DLOAD_0) as usize);
            frame.push(v);
        }
        op::ALOAD_0..=op::ALOAD_3 => {
            state.engine.charge(Cost::IntOp);
            let v = frame.local((opcode - op::ALOAD_0) as usize);
            frame.push(v);
        }

        // ---- array loads ----
        op::IALOAD
        | op::LALOAD
        | op::FALOAD
        | op::DALOAD
        | op::AALOAD
        | op::BALOAD
        | op::CALOAD
        | op::SALOAD => {
            state.engine.charge(Cost::ArrayGet);
            let index = frame.pop_int();
            let arr = frame.pop_ref();
            let Some(arr) = arr else {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/NullPointerException",
                    "array load",
                );
            };
            let len = state.heap.get(arr).array_len().unwrap_or(0);
            if index < 0 || index as usize >= len {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/ArrayIndexOutOfBoundsException",
                    &format!("index {index}, length {len}"),
                );
            }
            let i = index as usize;
            let v = match state.heap.get(arr) {
                HeapObj::ArrayInt(v) => Value::Int(v[i]),
                HeapObj::ArrayLong(v) => Value::Long(v[i]),
                HeapObj::ArrayFloat(v) => Value::Float(v[i]),
                HeapObj::ArrayDouble(v) => Value::Double(v[i]),
                HeapObj::ArrayByte(v) => Value::Int(v[i] as i32),
                HeapObj::ArrayChar(v) => Value::Int(v[i] as i32),
                HeapObj::ArrayShort(v) => Value::Int(v[i] as i32),
                HeapObj::ArrayRef { data, .. } => Value::Ref(data[i]),
                _ => {
                    return throw_vm(
                        state,
                        frames,
                        ctx,
                        tid,
                        "java/lang/InternalError",
                        "not an array",
                    )
                }
            };
            frames.last_mut().expect("frame").push(v);
        }

        // ---- stores ----
        op::ISTORE | op::FSTORE | op::ASTORE => {
            state.engine.charge(Cost::IntOp);
            let v = frame.pop();
            frame.set_local(u8_at!(1) as usize, v);
        }
        op::LSTORE | op::DSTORE => {
            state.engine.charge(Cost::LongOp);
            let v = frame.pop();
            frame.set_local(u8_at!(1) as usize, v);
        }
        op::ISTORE_0..=op::ISTORE_3 => {
            state.engine.charge(Cost::IntOp);
            let v = frame.pop();
            frame.set_local((opcode - op::ISTORE_0) as usize, v);
        }
        op::LSTORE_0..=op::LSTORE_3 => {
            state.engine.charge(Cost::LongOp);
            let v = frame.pop();
            frame.set_local((opcode - op::LSTORE_0) as usize, v);
        }
        op::FSTORE_0..=op::FSTORE_3 => {
            state.engine.charge(Cost::FloatOp);
            let v = frame.pop();
            frame.set_local((opcode - op::FSTORE_0) as usize, v);
        }
        op::DSTORE_0..=op::DSTORE_3 => {
            state.engine.charge(Cost::FloatOp);
            let v = frame.pop();
            frame.set_local((opcode - op::DSTORE_0) as usize, v);
        }
        op::ASTORE_0..=op::ASTORE_3 => {
            state.engine.charge(Cost::IntOp);
            let v = frame.pop();
            frame.set_local((opcode - op::ASTORE_0) as usize, v);
        }

        // ---- array stores ----
        op::IASTORE
        | op::LASTORE
        | op::FASTORE
        | op::DASTORE
        | op::AASTORE
        | op::BASTORE
        | op::CASTORE
        | op::SASTORE => {
            state.engine.charge(Cost::ArrayPut);
            let value = frame.pop();
            let index = frame.pop_int();
            let arr = frame.pop_ref();
            let Some(arr) = arr else {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/NullPointerException",
                    "array store",
                );
            };
            let len = state.heap.get(arr).array_len().unwrap_or(0);
            if index < 0 || index as usize >= len {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/ArrayIndexOutOfBoundsException",
                    &format!("index {index}, length {len}"),
                );
            }
            let i = index as usize;
            match (state.heap.get_mut(arr), value) {
                (HeapObj::ArrayInt(v), Value::Int(x)) => v[i] = x,
                (HeapObj::ArrayLong(v), Value::Long(x)) => v[i] = x,
                (HeapObj::ArrayFloat(v), Value::Float(x)) => v[i] = x,
                (HeapObj::ArrayDouble(v), Value::Double(x)) => v[i] = x,
                (HeapObj::ArrayByte(v), Value::Int(x)) => v[i] = x as i8,
                (HeapObj::ArrayChar(v), Value::Int(x)) => v[i] = x as u16,
                (HeapObj::ArrayShort(v), Value::Int(x)) => v[i] = x as i16,
                (HeapObj::ArrayRef { data, .. }, Value::Ref(r)) => data[i] = r,
                _ => {
                    return throw_vm(
                        state,
                        frames,
                        ctx,
                        tid,
                        "java/lang/ArrayStoreException",
                        "element type mismatch",
                    )
                }
            }
        }

        // ---- stack shuffles (slot-level, §6.1's explicit arrays) ----
        op::POP => {
            frame.pop_slot();
        }
        op::POP2 => {
            frame.pop_slot();
            frame.pop_slot();
        }
        op::DUP => {
            let v = *frame.peek(0);
            frame.stack.push(v);
        }
        op::DUP_X1 => {
            let v1 = frame.pop_slot();
            let v2 = frame.pop_slot();
            frame.stack.push(v1);
            frame.stack.push(v2);
            frame.stack.push(v1);
        }
        op::DUP_X2 => {
            let v1 = frame.pop_slot();
            let v2 = frame.pop_slot();
            let v3 = frame.pop_slot();
            frame.stack.push(v1);
            frame.stack.push(v3);
            frame.stack.push(v2);
            frame.stack.push(v1);
        }
        op::DUP2 => {
            let v1 = *frame.peek(0);
            let v2 = *frame.peek(1);
            frame.stack.push(v2);
            frame.stack.push(v1);
        }
        op::DUP2_X1 => {
            let v1 = frame.pop_slot();
            let v2 = frame.pop_slot();
            let v3 = frame.pop_slot();
            frame.stack.push(v2);
            frame.stack.push(v1);
            frame.stack.push(v3);
            frame.stack.push(v2);
            frame.stack.push(v1);
        }
        op::DUP2_X2 => {
            let v1 = frame.pop_slot();
            let v2 = frame.pop_slot();
            let v3 = frame.pop_slot();
            let v4 = frame.pop_slot();
            frame.stack.push(v2);
            frame.stack.push(v1);
            frame.stack.push(v4);
            frame.stack.push(v3);
            frame.stack.push(v2);
            frame.stack.push(v1);
        }
        op::SWAP => {
            let v1 = frame.pop_slot();
            let v2 = frame.pop_slot();
            frame.stack.push(v1);
            frame.stack.push(v2);
        }

        // ---- int arithmetic ----
        op::IADD
        | op::ISUB
        | op::IMUL
        | op::ISHL
        | op::ISHR
        | op::IUSHR
        | op::IAND
        | op::IOR
        | op::IXOR => {
            state.engine.charge(Cost::IntOp);
            let b = frame.pop_int();
            let a = frame.pop_int();
            let r = match opcode {
                op::IADD => a.wrapping_add(b),
                op::ISUB => a.wrapping_sub(b),
                op::IMUL => a.wrapping_mul(b),
                op::ISHL => a.wrapping_shl(b as u32 & 31),
                op::ISHR => a.wrapping_shr(b as u32 & 31),
                op::IUSHR => ((a as u32).wrapping_shr(b as u32 & 31)) as i32,
                op::IAND => a & b,
                op::IOR => a | b,
                _ => a ^ b,
            };
            frame.push(Value::Int(r));
        }
        op::IDIV | op::IREM => {
            state.engine.charge(Cost::IntOp);
            let b = frame.pop_int();
            let a = frame.pop_int();
            if b == 0 {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/ArithmeticException",
                    "/ by zero",
                );
            }
            let r = if opcode == op::IDIV {
                a.wrapping_div(b)
            } else {
                a.wrapping_rem(b)
            };
            frame.push(Value::Int(r));
        }
        op::INEG => {
            state.engine.charge(Cost::IntOp);
            let a = frame.pop_int();
            frame.push(Value::Int(a.wrapping_neg()));
        }

        // ---- long arithmetic (software Int64 territory, §8) ----
        op::LADD | op::LSUB | op::LMUL | op::LAND | op::LOR | op::LXOR => {
            state.engine.charge(Cost::LongOp);
            let b = frame.pop_long();
            let a = frame.pop_long();
            let r = match opcode {
                op::LADD => a.wrapping_add(b),
                op::LSUB => a.wrapping_sub(b),
                op::LMUL => a.wrapping_mul(b),
                op::LAND => a & b,
                op::LOR => a | b,
                _ => a ^ b,
            };
            frame.push(Value::Long(r));
        }
        op::LDIV | op::LREM => {
            state.engine.charge(Cost::LongOp);
            let b = frame.pop_long();
            let a = frame.pop_long();
            if b == 0 {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/ArithmeticException",
                    "/ by zero",
                );
            }
            let r = if opcode == op::LDIV {
                a.wrapping_div(b)
            } else {
                a.wrapping_rem(b)
            };
            frame.push(Value::Long(r));
        }
        op::LSHL | op::LSHR | op::LUSHR => {
            state.engine.charge(Cost::LongOp);
            let b = frame.pop_int();
            let a = frame.pop_long();
            let s = b as u32 & 63;
            let r = match opcode {
                op::LSHL => a.wrapping_shl(s),
                op::LSHR => a.wrapping_shr(s),
                _ => ((a as u64).wrapping_shr(s)) as i64,
            };
            frame.push(Value::Long(r));
        }
        op::LNEG => {
            state.engine.charge(Cost::LongOp);
            let a = frame.pop_long();
            frame.push(Value::Long(a.wrapping_neg()));
        }

        // ---- float/double arithmetic ----
        op::FADD | op::FSUB | op::FMUL | op::FDIV | op::FREM => {
            state.engine.charge(Cost::FloatOp);
            let b = frame.pop_float();
            let a = frame.pop_float();
            let r = match opcode {
                op::FADD => a + b,
                op::FSUB => a - b,
                op::FMUL => a * b,
                op::FDIV => a / b,
                _ => a % b,
            };
            frame.push(Value::Float(r));
        }
        op::DADD | op::DSUB | op::DMUL | op::DDIV | op::DREM => {
            state.engine.charge(Cost::FloatOp);
            let b = frame.pop_double();
            let a = frame.pop_double();
            let r = match opcode {
                op::DADD => a + b,
                op::DSUB => a - b,
                op::DMUL => a * b,
                op::DDIV => a / b,
                _ => a % b,
            };
            frame.push(Value::Double(r));
        }
        op::FNEG => {
            state.engine.charge(Cost::FloatOp);
            let a = frame.pop_float();
            frame.push(Value::Float(-a));
        }
        op::DNEG => {
            state.engine.charge(Cost::FloatOp);
            let a = frame.pop_double();
            frame.push(Value::Double(-a));
        }

        op::IINC => {
            state.engine.charge(Cost::IntOp);
            let idx = u8_at!(1) as usize;
            let delta = u8_at!(2) as i8 as i32;
            let v = frame.local(idx).as_int();
            frame.set_local(idx, Value::Int(v.wrapping_add(delta)));
        }

        // ---- conversions ----
        op::I2L => {
            state.engine.charge(Cost::LongOp);
            let v = frame.pop_int();
            frame.push(Value::Long(v as i64));
        }
        op::I2F => {
            state.engine.charge(Cost::FloatOp);
            let v = frame.pop_int();
            frame.push(Value::Float(v as f32));
        }
        op::I2D => {
            state.engine.charge(Cost::FloatOp);
            let v = frame.pop_int();
            frame.push(Value::Double(v as f64));
        }
        op::L2I => {
            state.engine.charge(Cost::LongOp);
            let v = frame.pop_long();
            frame.push(Value::Int(v as i32));
        }
        op::L2F => {
            state.engine.charge(Cost::LongOp);
            let v = frame.pop_long();
            frame.push(Value::Float(v as f32));
        }
        op::L2D => {
            state.engine.charge(Cost::LongOp);
            let v = frame.pop_long();
            frame.push(Value::Double(v as f64));
        }
        op::F2I => {
            state.engine.charge(Cost::FloatOp);
            let v = frame.pop_float();
            frame.push(Value::Int(f2i(v as f64)));
        }
        op::F2L => {
            state.engine.charge(Cost::LongOp);
            let v = frame.pop_float();
            frame.push(Value::Long(f2l(v as f64)));
        }
        op::F2D => {
            state.engine.charge(Cost::FloatOp);
            let v = frame.pop_float();
            frame.push(Value::Double(v as f64));
        }
        op::D2I => {
            state.engine.charge(Cost::FloatOp);
            let v = frame.pop_double();
            frame.push(Value::Int(f2i(v)));
        }
        op::D2L => {
            state.engine.charge(Cost::LongOp);
            let v = frame.pop_double();
            frame.push(Value::Long(f2l(v)));
        }
        op::D2F => {
            state.engine.charge(Cost::FloatOp);
            let v = frame.pop_double();
            frame.push(Value::Float(v as f32));
        }
        op::I2B => {
            state.engine.charge(Cost::IntOp);
            let v = frame.pop_int();
            frame.push(Value::Int(v as i8 as i32));
        }
        op::I2C => {
            state.engine.charge(Cost::IntOp);
            let v = frame.pop_int();
            frame.push(Value::Int(v as u16 as i32));
        }
        op::I2S => {
            state.engine.charge(Cost::IntOp);
            let v = frame.pop_int();
            frame.push(Value::Int(v as i16 as i32));
        }

        // ---- comparisons ----
        op::LCMP => {
            state.engine.charge(Cost::LongOp);
            let b = frame.pop_long();
            let a = frame.pop_long();
            frame.push(Value::Int(match a.cmp(&b) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            }));
        }
        op::FCMPL | op::FCMPG => {
            state.engine.charge(Cost::FloatOp);
            let b = frame.pop_float();
            let a = frame.pop_float();
            frame.push(Value::Int(fp_cmp(a as f64, b as f64, opcode == op::FCMPG)));
        }
        op::DCMPL | op::DCMPG => {
            state.engine.charge(Cost::FloatOp);
            let b = frame.pop_double();
            let a = frame.pop_double();
            frame.push(Value::Int(fp_cmp(a, b, opcode == op::DCMPG)));
        }

        // ---- branches ----
        op::IFEQ..=op::IFLE => {
            state.engine.charge(Cost::Branch);
            let v = frame.pop_int();
            let taken = match opcode {
                op::IFEQ => v == 0,
                op::IFNE => v != 0,
                op::IFLT => v < 0,
                op::IFGE => v >= 0,
                op::IFGT => v > 0,
                _ => v <= 0,
            };
            if taken {
                next_pc = (pc as i64 + i16_at!(1) as i64) as usize;
            }
        }
        op::IF_ICMPEQ..=op::IF_ICMPLE => {
            state.engine.charge(Cost::Branch);
            let b = frame.pop_int();
            let a = frame.pop_int();
            let taken = match opcode {
                op::IF_ICMPEQ => a == b,
                op::IF_ICMPNE => a != b,
                op::IF_ICMPLT => a < b,
                op::IF_ICMPGE => a >= b,
                op::IF_ICMPGT => a > b,
                _ => a <= b,
            };
            if taken {
                next_pc = (pc as i64 + i16_at!(1) as i64) as usize;
            }
        }
        op::IF_ACMPEQ | op::IF_ACMPNE => {
            state.engine.charge(Cost::Branch);
            let b = frame.pop_ref();
            let a = frame.pop_ref();
            let taken = (a == b) == (opcode == op::IF_ACMPEQ);
            if taken {
                next_pc = (pc as i64 + i16_at!(1) as i64) as usize;
            }
        }
        op::IFNULL | op::IFNONNULL => {
            state.engine.charge(Cost::Branch);
            let v = frame.pop_ref();
            let taken = v.is_none() == (opcode == op::IFNULL);
            if taken {
                next_pc = (pc as i64 + i16_at!(1) as i64) as usize;
            }
        }
        op::GOTO => {
            state.engine.charge(Cost::Branch);
            next_pc = (pc as i64 + i16_at!(1) as i64) as usize;
        }
        op::GOTO_W => {
            state.engine.charge(Cost::Branch);
            next_pc = (pc as i64 + i32_at!(1) as i64) as usize;
        }
        op::JSR => {
            frame.push(Value::RetAddr(pc + 3));
            next_pc = (pc as i64 + i16_at!(1) as i64) as usize;
        }
        op::JSR_W => {
            frame.push(Value::RetAddr(pc + 5));
            next_pc = (pc as i64 + i32_at!(1) as i64) as usize;
        }
        op::RET => {
            let idx = u8_at!(1) as usize;
            match frame.local(idx) {
                Value::RetAddr(a) => next_pc = a,
                other => {
                    return throw_vm(
                        state,
                        frames,
                        ctx,
                        tid,
                        "java/lang/InternalError",
                        &format!("ret of non-returnAddress {other:?}"),
                    )
                }
            }
        }

        op::TABLESWITCH => {
            state.engine.charge(Cost::Branch);
            let v = frame.pop_int();
            let base = (pc + 4) & !3;
            let default = i32::from_be_bytes([bc[base], bc[base + 1], bc[base + 2], bc[base + 3]]);
            let low = i32::from_be_bytes([bc[base + 4], bc[base + 5], bc[base + 6], bc[base + 7]]);
            let high =
                i32::from_be_bytes([bc[base + 8], bc[base + 9], bc[base + 10], bc[base + 11]]);
            let offset = if v < low || v > high {
                default
            } else {
                let slot = base + 12 + 4 * (v - low) as usize;
                i32::from_be_bytes([bc[slot], bc[slot + 1], bc[slot + 2], bc[slot + 3]])
            };
            next_pc = (pc as i64 + offset as i64) as usize;
        }
        op::LOOKUPSWITCH => {
            state.engine.charge(Cost::Branch);
            let v = frame.pop_int();
            let base = (pc + 4) & !3;
            let default = i32::from_be_bytes([bc[base], bc[base + 1], bc[base + 2], bc[base + 3]]);
            let npairs =
                i32::from_be_bytes([bc[base + 4], bc[base + 5], bc[base + 6], bc[base + 7]]);
            let mut offset = default;
            for p in 0..npairs as usize {
                let slot = base + 8 + 8 * p;
                let key = i32::from_be_bytes([bc[slot], bc[slot + 1], bc[slot + 2], bc[slot + 3]]);
                if key == v {
                    offset = i32::from_be_bytes([
                        bc[slot + 4],
                        bc[slot + 5],
                        bc[slot + 6],
                        bc[slot + 7],
                    ]);
                    break;
                }
            }
            next_pc = (pc as i64 + offset as i64) as usize;
        }

        // ---- returns ----
        op::IRETURN | op::LRETURN | op::FRETURN | op::DRETURN | op::ARETURN | op::RETURN => {
            let value = if opcode == op::RETURN {
                None
            } else {
                Some(frame.pop())
            };
            return do_return(state, frames, ctx, tid, value);
        }

        // ---- fields ----
        op::GETSTATIC | op::PUTSTATIC => {
            let idx = u16_at!(1);
            let fref = match cp_field(state, code.class, idx) {
                Some(f) => {
                    // Quickened: resolution AND the `<clinit>` protocol
                    // are already done (entries are only installed once
                    // the referenced class is `Initialized`).
                    state.perf.cp_hit.inc();
                    f
                }
                None => {
                    note_cp_miss(state, ctx, "static_field");
                    let cf = state
                        .registry
                        .get(code.class)
                        .cf
                        .as_ref()
                        .expect("class file");
                    let (cname, fname) = match cf.constant_pool.member_ref(idx) {
                        Ok(t) => (t.0.to_string(), t.1.to_string()),
                        Err(e) => {
                            let msg = e.to_string();
                            return throw_vm(
                                state,
                                frames,
                                ctx,
                                tid,
                                "java/lang/InternalError",
                                &msg,
                            );
                        }
                    };
                    let class_id = match ensure_class(state, &cname) {
                        Ok(id) => id,
                        Err(r) => return r,
                    };
                    match ensure_initialized(state, frames, tid, class_id) {
                        InitAction::Ready => {}
                        InitAction::Pushed => return StepResult::CallBoundary,
                    }
                    let Some(fr) = state.registry.resolve_field(class_id, &fname) else {
                        return throw_vm(
                            state,
                            frames,
                            ctx,
                            tid,
                            "java/lang/NoSuchFieldError",
                            &format!("{cname}.{fname}"),
                        );
                    };
                    let resolved = Rc::new(ResolvedField {
                        class: fr.class,
                        key: Rc::from(fr.key.as_str()),
                        default: Value::default_for(&fr.descriptor),
                        descriptor: Rc::from(fr.descriptor.as_str()),
                        is_static: fr.is_static,
                    });
                    // Quicken only once the `<clinit>` chain completed,
                    // so the hit path may skip the init protocol.
                    if matches!(
                        state.registry.get(class_id).clinit,
                        ClinitState::Initialized
                    ) {
                        quicken(state, code.class, idx, CpEntry::Field(resolved.clone()));
                    }
                    resolved
                }
            };
            state.engine.charge(Cost::MapOp);
            let frame = frames.last_mut().expect("frame");
            if opcode == op::GETSTATIC {
                state.engine.charge(Cost::FieldGet);
                let v = state
                    .registry
                    .get(fref.class)
                    .statics
                    .get(&*fref.key)
                    .copied()
                    .unwrap_or(fref.default);
                frame.push(v);
            } else {
                state.engine.charge(Cost::FieldPut);
                let v = frame.pop();
                let statics = &mut state.registry.get_mut(fref.class).statics;
                if let Some(slot) = statics.get_mut(&*fref.key) {
                    *slot = v;
                } else {
                    statics.insert(fref.key.to_string(), v);
                }
            }
        }
        op::GETFIELD | op::PUTFIELD => {
            let idx = u16_at!(1);
            let fref = match cp_field(state, code.class, idx) {
                Some(f) => {
                    state.perf.cp_hit.inc();
                    f
                }
                None => {
                    note_cp_miss(state, ctx, "field");
                    let cf = state
                        .registry
                        .get(code.class)
                        .cf
                        .as_ref()
                        .expect("class file");
                    let (cname, fname) = match cf.constant_pool.member_ref(idx) {
                        Ok(t) => (t.0.to_string(), t.1.to_string()),
                        Err(e) => {
                            let msg = e.to_string();
                            return throw_vm(
                                state,
                                frames,
                                ctx,
                                tid,
                                "java/lang/InternalError",
                                &msg,
                            );
                        }
                    };
                    let class_id = match ensure_class(state, &cname) {
                        Ok(id) => id,
                        Err(r) => return r,
                    };
                    let Some(fr) = state.registry.resolve_field(class_id, &fname) else {
                        return throw_vm(
                            state,
                            frames,
                            ctx,
                            tid,
                            "java/lang/NoSuchFieldError",
                            &format!("{cname}.{fname}"),
                        );
                    };
                    let resolved = Rc::new(ResolvedField {
                        class: fr.class,
                        key: Rc::from(fr.key.as_str()),
                        default: Value::default_for(&fr.descriptor),
                        descriptor: Rc::from(fr.descriptor.as_str()),
                        is_static: fr.is_static,
                    });
                    // Instance-field resolution is stable (classes are
                    // never redefined): quicken unconditionally.
                    quicken(state, code.class, idx, CpEntry::Field(resolved.clone()));
                    resolved
                }
            };
            // The dictionary lookup of §6.7.
            state.engine.charge(Cost::MapOp);
            let frame = frames.last_mut().expect("frame");
            if opcode == op::GETFIELD {
                state.engine.charge(Cost::FieldGet);
                let Some(obj) = frame.pop_ref() else {
                    return throw_vm(
                        state,
                        frames,
                        ctx,
                        tid,
                        "java/lang/NullPointerException",
                        &format!("getfield {}", fref.key),
                    );
                };
                let v = match state.heap.get(obj) {
                    HeapObj::Instance { fields, .. } => {
                        fields.get(&*fref.key).copied().unwrap_or(fref.default)
                    }
                    _ => fref.default,
                };
                frames.last_mut().expect("frame").push(v);
            } else {
                state.engine.charge(Cost::FieldPut);
                let v = frame.pop();
                let Some(obj) = frame.pop_ref() else {
                    return throw_vm(
                        state,
                        frames,
                        ctx,
                        tid,
                        "java/lang/NullPointerException",
                        &format!("putfield {}", fref.key),
                    );
                };
                if let HeapObj::Instance { fields, .. } = state.heap.get_mut(obj) {
                    if let Some(slot) = fields.get_mut(&*fref.key) {
                        *slot = v;
                    } else {
                        fields.insert(fref.key.to_string(), v);
                    }
                }
            }
        }

        // ---- invocations ----
        op::INVOKEVIRTUAL | op::INVOKESPECIAL | op::INVOKESTATIC | op::INVOKEINTERFACE => {
            return invoke(state, frames, ctx, tid, opcode, pc, next_pc);
        }

        // ---- object/array creation ----
        op::NEW => {
            let idx = u16_at!(1);
            let cached = match state.registry.get(code.class).cp_cache.borrow().get(&idx) {
                Some(CpEntry::Class(cc)) => Some(cc.clone()),
                _ => None,
            };
            let cc = match cached {
                Some(cc) => {
                    if let Some(id) = cc.init_id.get() {
                        // Fully quickened: class resolved and its
                        // `<clinit>` chain already ran.
                        state.perf.cp_hit.inc();
                        let r = alloc_instance(state, id);
                        frames.last_mut().expect("frame").push(Value::Ref(Some(r)));
                        frames.last_mut().expect("frame").pc = next_pc;
                        return StepResult::Continue;
                    }
                    note_cp_miss(state, ctx, "new");
                    cc
                }
                None => match cp_class(state, ctx, code.class, idx) {
                    Ok(cc) => cc,
                    Err(msg) => {
                        return throw_vm(state, frames, ctx, tid, "java/lang/InternalError", &msg)
                    }
                },
            };
            let class_id = match ensure_class(state, &cc.name) {
                Ok(id) => id,
                Err(r) => return r,
            };
            match ensure_initialized(state, frames, tid, class_id) {
                InitAction::Ready => {}
                InitAction::Pushed => return StepResult::CallBoundary,
            }
            if matches!(
                state.registry.get(class_id).clinit,
                ClinitState::Initialized
            ) {
                cc.init_id.set(Some(class_id));
            }
            let r = alloc_instance(state, class_id);
            frames.last_mut().expect("frame").push(Value::Ref(Some(r)));
        }
        op::NEWARRAY => {
            state.engine.charge(Cost::Alloc);
            let atype = u8_at!(1);
            let len = frame.pop_int();
            if len < 0 {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/NegativeArraySizeException",
                    &len.to_string(),
                );
            }
            // DoppioJVM backs binary arrays (boolean[], char[], byte[])
            // with typed arrays; register the allocation so Safari's
            // leak model (§7.1) sees JVM-level buffer churn too. The
            // matching free models the JS garbage collector.
            if matches!(atype, 4 | 5 | 8) && state.engine.profile().has_typed_arrays {
                let bytes = len as usize * if atype == 5 { 2 } else { 1 };
                state.engine.typed_array_alloc(bytes);
                state.engine.typed_array_free(bytes);
            }
            let Some(r) = state.heap.alloc_primitive_array(atype, len as usize) else {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/InternalError",
                    "bad atype",
                );
            };
            frames.last_mut().expect("frame").push(Value::Ref(Some(r)));
        }
        op::ANEWARRAY => {
            state.engine.charge(Cost::Alloc);
            let idx = u16_at!(1);
            let cname = match cp_class(state, ctx, code.class, idx) {
                Ok(cc) => cc.name.to_string(),
                Err(msg) => {
                    return throw_vm(state, frames, ctx, tid, "java/lang/InternalError", &msg)
                }
            };
            let len = frame.pop_int();
            if len < 0 {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/NegativeArraySizeException",
                    &len.to_string(),
                );
            }
            let r = state.heap.alloc(HeapObj::ArrayRef {
                component: cname,
                data: vec![None; len as usize],
            });
            frames.last_mut().expect("frame").push(Value::Ref(Some(r)));
        }
        op::MULTIANEWARRAY => {
            state.engine.charge(Cost::Alloc);
            let idx = u16_at!(1);
            let dims = u8_at!(3) as usize;
            let desc = match cp_class(state, ctx, code.class, idx) {
                Ok(cc) => cc.name.clone(),
                Err(msg) => {
                    return throw_vm(state, frames, ctx, tid, "java/lang/InternalError", &msg)
                }
            };
            let mut sizes = vec![0i32; dims];
            for d in (0..dims).rev() {
                sizes[d] = frame.pop_int();
            }
            if sizes.iter().any(|&s| s < 0) {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/NegativeArraySizeException",
                    "multianewarray",
                );
            }
            let r = alloc_multi(state, &desc, &sizes);
            frames.last_mut().expect("frame").push(Value::Ref(Some(r)));
        }
        op::ARRAYLENGTH => {
            state.engine.charge(Cost::IntOp);
            let Some(arr) = frame.pop_ref() else {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/NullPointerException",
                    "arraylength",
                );
            };
            let Some(len) = state.heap.get(arr).array_len() else {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/InternalError",
                    "not an array",
                );
            };
            frames
                .last_mut()
                .expect("frame")
                .push(Value::Int(len as i32));
        }

        op::ATHROW => {
            let Some(ex) = frame.pop_ref() else {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/NullPointerException",
                    "athrow null",
                );
            };
            return dispatch_exception(state, frames, ctx, tid, ex);
        }

        op::CHECKCAST | op::INSTANCEOF => {
            let idx = u16_at!(1);
            let target = match cp_class(state, ctx, code.class, idx) {
                Ok(cc) => cc.name.clone(),
                Err(msg) => {
                    return throw_vm(state, frames, ctx, tid, "java/lang/InternalError", &msg)
                }
            };
            state.engine.charge(Cost::MapOp);
            let obj = *frame.peek(0);
            let r = obj.as_ref();
            let matches = match r {
                None => opcode == op::CHECKCAST, // null passes checkcast, fails instanceof
                Some(obj) => {
                    let cid = runtime_class_of(state, obj);
                    match cid {
                        Ok(cid) => state.registry.is_assignable(cid, &target),
                        Err(r) => return r,
                    }
                }
            };
            if opcode == op::INSTANCEOF {
                frame.pop_ref();
                frame.push(Value::Int(i32::from(matches && r.is_some())));
            } else if !matches {
                let name = r
                    .and_then(|o| runtime_class_of(state, o).ok())
                    .map(|c| state.registry.get(c).name.clone())
                    .unwrap_or_default();
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/ClassCastException",
                    &format!("{name} cannot be cast to {target}"),
                );
            }
        }

        op::MONITORENTER => {
            let Some(&Value::Ref(obj)) = frame.stack.last() else {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/InternalError",
                    "monitorenter",
                );
            };
            let Some(obj) = obj else {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/NullPointerException",
                    "monitorenter",
                );
            };
            if try_enter_monitor(state, ctx, obj, tid) {
                frames.last_mut().expect("frame").pop_ref();
            } else {
                queue_on_monitor(state, obj, tid);
                return StepResult::MonitorBlocked(obj); // retry when woken
            }
        }
        op::MONITOREXIT => {
            let Some(obj) = frame.pop_ref() else {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/NullPointerException",
                    "monitorexit",
                );
            };
            if let Err(msg) = exit_monitor(state, ctx, obj, tid) {
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/IllegalMonitorStateException",
                    &msg,
                );
            }
        }

        op::WIDE => {
            let sub = u8_at!(1);
            let idx = u16_at!(2) as usize;
            match sub {
                op::ILOAD | op::FLOAD | op::ALOAD => {
                    let v = frame.local(idx);
                    frame.push(v);
                }
                op::LLOAD | op::DLOAD => {
                    let v = frame.local(idx);
                    frame.push(v);
                }
                op::ISTORE | op::FSTORE | op::ASTORE | op::LSTORE | op::DSTORE => {
                    let v = frame.pop();
                    frame.set_local(idx, v);
                }
                op::IINC => {
                    let delta = i16_at!(4) as i32;
                    let v = frame.local(idx).as_int();
                    frame.set_local(idx, Value::Int(v.wrapping_add(delta)));
                }
                op::RET => match frame.local(idx) {
                    Value::RetAddr(a) => next_pc = a,
                    _ => {
                        return throw_vm(
                            state,
                            frames,
                            ctx,
                            tid,
                            "java/lang/InternalError",
                            "wide ret",
                        )
                    }
                },
                _ => {
                    return throw_vm(
                        state,
                        frames,
                        ctx,
                        tid,
                        "java/lang/InternalError",
                        "bad wide",
                    )
                }
            }
        }

        _ => {
            return throw_vm(
                state,
                frames,
                ctx,
                tid,
                "java/lang/InternalError",
                &format!("undefined opcode {opcode:#04x}"),
            )
        }
    }

    if let Some(frame) = frames.last_mut() {
        frame.pc = next_pc;
    }
    // Host-only backedge profiling: feeds the tier-up oracle but never
    // charges the virtual clock, so it cannot perturb a transcript.
    if state.tier_up && next_pc < pc {
        code.hotness.set(
            code.hotness
                .get()
                .saturating_add(crate::tiered::BACKEDGE_BOOST),
        );
    }
    // §6.1: suspend checks happen at call boundaries, which "is not a
    // perfect solution, as it is possible in theory to execute an
    // extremely long-running loop that makes no method calls. ... it
    // would be possible to instrument loop back edges to perform the
    // same checks." That instrumentation, behind a flag:
    if state.check_backedges && next_pc < pc {
        state.engine.charge(Cost::IntOp); // the instrumented check
        return StepResult::CallBoundary;
    }
    StepResult::Continue
}

/// Operand length of fixed-width instructions; variable-width ones
/// (`tableswitch`, `lookupswitch`, `wide`) are computed here too since
/// the interpreter sets `next_pc` before executing.
fn fixed_operand_len(opcode: u8, bc: &[u8], pc: usize) -> usize {
    use doppio_classfile::opcodes::{INFO, VARIABLE};
    let info = INFO[opcode as usize];
    if info.operands != VARIABLE {
        return info.operands as usize;
    }
    match opcode {
        op::WIDE => {
            if bc[pc + 1] == op::IINC {
                5
            } else {
                3
            }
        }
        op::TABLESWITCH => {
            let base = (pc + 4) & !3;
            let low = i32::from_be_bytes([bc[base + 4], bc[base + 5], bc[base + 6], bc[base + 7]]);
            let high =
                i32::from_be_bytes([bc[base + 8], bc[base + 9], bc[base + 10], bc[base + 11]]);
            base + 12 + 4 * (high - low + 1) as usize - pc - 1
        }
        op::LOOKUPSWITCH => {
            let base = (pc + 4) & !3;
            let npairs =
                i32::from_be_bytes([bc[base + 4], bc[base + 5], bc[base + 6], bc[base + 7]]);
            base + 8 + 8 * npairs as usize - pc - 1
        }
        _ => 0,
    }
}

/// JVM `f2i`/`d2i` conversion: NaN → 0, saturating.
pub(crate) fn f2i(v: f64) -> i32 {
    if v.is_nan() {
        0
    } else if v >= i32::MAX as f64 {
        i32::MAX
    } else if v <= i32::MIN as f64 {
        i32::MIN
    } else {
        v as i32
    }
}

/// JVM `f2l`/`d2l` conversion.
pub(crate) fn f2l(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else if v >= i64::MAX as f64 {
        i64::MAX
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else {
        v as i64
    }
}

/// `fcmpl`/`fcmpg`/`dcmpl`/`dcmpg`: NaN pushes -1 or +1 per variant.
pub(crate) fn fp_cmp(a: f64, b: f64, greater_on_nan: bool) -> i32 {
    if a.is_nan() || b.is_nan() {
        if greater_on_nan {
            1
        } else {
            -1
        }
    } else if a < b {
        -1
    } else if a > b {
        1
    } else {
        0
    }
}

/// The runtime class id of a heap object.
pub fn runtime_class_of(state: &mut JvmState, obj: ObjRef) -> Result<ClassId, StepResult> {
    let name = match state.heap.get(obj) {
        HeapObj::Instance { class, .. } => return Ok(*class),
        HeapObj::JavaString(_) => "java/lang/String".to_string(),
        HeapObj::StringBuilder(_) => "java/lang/StringBuilder".to_string(),
        other => other.array_class_name().expect("array"),
    };
    if name.starts_with('[') {
        state
            .registry
            .ensure_array_class(&name)
            .map_err(|_| StepResult::NeedClass(name))
    } else {
        state
            .registry
            .lookup(&name)
            .ok_or(StepResult::NeedClass(name))
    }
}

/// Look up a class, requesting a load if undefined.
pub fn ensure_class(state: &mut JvmState, name: &str) -> Result<ClassId, StepResult> {
    if name.starts_with('[') {
        return state
            .registry
            .ensure_array_class(name)
            .map_err(|_| StepResult::NeedClass(name.to_string()));
    }
    state
        .registry
        .lookup(name)
        .ok_or_else(|| StepResult::NeedClass(name.to_string()))
}

// ----------------------------------------------------------------
// Resolution caches (the interpreter fast path)
// ----------------------------------------------------------------

/// Install a quickened entry for CP index `idx` of `class`.
fn quicken(state: &JvmState, class: ClassId, idx: u16, entry: CpEntry) {
    state
        .registry
        .get(class)
        .cp_cache
        .borrow_mut()
        .insert(idx, entry);
}

/// The quickened field entry at `idx` of `class`, if installed.
fn cp_field(state: &JvmState, class: ClassId, idx: u16) -> Option<Rc<ResolvedField>> {
    match state.registry.get(class).cp_cache.borrow().get(&idx) {
        Some(CpEntry::Field(f)) => Some(f.clone()),
        _ => None,
    }
}

/// The quickened class constant at `idx` of `class`: returns the cached
/// entry (a cp-cache hit) or decodes the name from the constant pool
/// and installs a fresh one (a miss). `Err` carries a CP decode error.
fn cp_class(
    state: &JvmState,
    ctx: &ThreadContext<'_>,
    class: ClassId,
    idx: u16,
) -> Result<Rc<ClassConst>, String> {
    if let Some(CpEntry::Class(cc)) = state.registry.get(class).cp_cache.borrow().get(&idx) {
        state.perf.cp_hit.inc();
        return Ok(cc.clone());
    }
    note_cp_miss(state, ctx, "class");
    let rc = state.registry.get(class);
    let cf = rc.cf.as_ref().expect("class file");
    let name = cf
        .constant_pool
        .class_name(idx)
        .map_err(|e| e.to_string())?;
    let cc = Rc::new(ClassConst {
        name: Rc::from(name),
        init_id: Cell::new(None),
        mirror: Cell::new(None),
    });
    rc.cp_cache
        .borrow_mut()
        .insert(idx, CpEntry::Class(cc.clone()));
    Ok(cc)
}

/// The access flags of a resolved method.
fn method_flags_of(state: &JvmState, target: crate::class::MethodRef) -> u16 {
    state
        .registry
        .get(target.class)
        .cf
        .as_ref()
        .expect("method class")
        .methods[target.index]
        .access_flags
}

/// Count a constant-pool cache miss and, when tracing, mark the
/// quickening point under the `perf` category.
fn note_cp_miss(state: &JvmState, ctx: &ThreadContext<'_>, what: &'static str) {
    state.perf.cp_miss.inc();
    let tracer = state.engine.tracer();
    if tracer.enabled() {
        tracer.instant(
            cat::PERF,
            "cp_quicken",
            state.engine.now_ns(),
            ctx.trace_lane(),
            vec![("kind", what.into())],
        );
    }
}

/// Count an inline-cache miss at an invoke site and, when tracing, mark
/// the re-dispatch under the `perf` category.
fn note_ic_miss(state: &JvmState, ctx: &ThreadContext<'_>, method: &Rc<str>) {
    state.perf.ic_miss.inc();
    let tracer = state.engine.tracer();
    if tracer.enabled() {
        tracer.instant(
            cat::PERF,
            "icache_miss",
            state.engine.now_ns(),
            ctx.trace_lane(),
            vec![("method", method.to_string().into())],
        );
    }
}

enum InitAction {
    Ready,
    Pushed,
}

/// Ensure a class (and its superclasses) are initialized; pushes the
/// outermost pending `<clinit>` frame if needed (the caller's current
/// instruction retries afterwards).
fn ensure_initialized(
    state: &mut JvmState,
    frames: &mut Vec<Frame>,
    tid: ThreadId,
    class: ClassId,
) -> InitAction {
    // Find the outermost un-initialized ancestor.
    let mut chain = Vec::new();
    let mut cur = Some(class);
    while let Some(id) = cur {
        chain.push(id);
        cur = state.registry.get(id).super_id;
    }
    for &id in chain.iter().rev() {
        match state.registry.get(id).clinit {
            ClinitState::Initialized => continue,
            ClinitState::InProgress(owner) if owner == tid.0 => continue,
            ClinitState::InProgress(_) => continue, // simplification: no cross-thread wait
            ClinitState::NotStarted => {
                // Look for a <clinit>.
                let clinit = state.registry.get(id).cf.as_ref().and_then(|cf| {
                    cf.methods
                        .iter()
                        .position(|m| m.name == "<clinit>" && m.descriptor == "()V")
                });
                state.registry.get_mut(id).clinit = match clinit {
                    None => ClinitState::Initialized,
                    Some(_) => ClinitState::InProgress(tid.0),
                };
                if let Some(midx) = clinit {
                    let blob = state.code_blob(id, midx).expect("clinit has code");
                    frames.push(Frame::new(blob));
                    return InitAction::Pushed;
                }
            }
        }
    }
    InitAction::Ready
}

/// Allocate an instance with its field dictionary pre-populated (§6.7).
pub fn alloc_instance(state: &mut JvmState, class: ClassId) -> ObjRef {
    state.engine.charge(Cost::Alloc);
    let layout = state.registry.instance_field_layout(class);
    state.engine.charge_n(Cost::MapOp, layout.len() as u64);
    let fields = layout
        .into_iter()
        .map(|(key, desc)| (key, Value::default_for(&desc)))
        .collect();
    state.heap.alloc(HeapObj::Instance { class, fields })
}

fn alloc_multi(state: &mut JvmState, desc: &str, sizes: &[i32]) -> ObjRef {
    let len = sizes[0] as usize;
    if sizes.len() == 1 {
        // Innermost dimension: choose representation by component.
        let component = &desc[1..];
        return match component.as_bytes().first() {
            Some(b'I') => state.heap.alloc(HeapObj::ArrayInt(vec![0; len])),
            Some(b'J') => state.heap.alloc(HeapObj::ArrayLong(vec![0; len])),
            Some(b'F') => state.heap.alloc(HeapObj::ArrayFloat(vec![0.0; len])),
            Some(b'D') => state.heap.alloc(HeapObj::ArrayDouble(vec![0.0; len])),
            Some(b'B') | Some(b'Z') => state.heap.alloc(HeapObj::ArrayByte(vec![0; len])),
            Some(b'C') => state.heap.alloc(HeapObj::ArrayChar(vec![0; len])),
            Some(b'S') => state.heap.alloc(HeapObj::ArrayShort(vec![0; len])),
            _ => {
                let comp = component
                    .strip_prefix('L')
                    .map(|s| s.trim_end_matches(';').to_string())
                    .unwrap_or_else(|| component.to_string());
                state.heap.alloc(HeapObj::ArrayRef {
                    component: comp,
                    data: vec![None; len],
                })
            }
        };
    }
    let inner_desc = &desc[1..];
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(Some(alloc_multi(state, inner_desc, &sizes[1..])));
    }
    state.heap.alloc(HeapObj::ArrayRef {
        component: inner_desc.to_string(),
        data,
    })
}

/// A java/lang/Class mirror object for `name` (cached).
pub fn class_object(state: &mut JvmState, name: &str) -> ObjRef {
    let key = format!("\u{0}class:{name}");
    if let Some(&r) = state.string_pool.get(&key) {
        return r;
    }
    let class_id = state.registry.lookup("java/lang/Class");
    let r = match class_id {
        Some(cid) => {
            let name_ref = state.intern_string(name);
            let mut fields = std::collections::HashMap::new();
            fields.insert(
                "java/lang/Class.name".to_string(),
                Value::Ref(Some(name_ref)),
            );
            state.heap.alloc(HeapObj::Instance { class: cid, fields })
        }
        None => state.heap.alloc_string(name),
    };
    state.string_pool.insert(key, r);
    r
}

// ----------------------------------------------------------------
// Monitors (§6.2 context-switch points)
// ----------------------------------------------------------------

/// Try to acquire a monitor; true on success (including recursion).
/// Outermost acquisitions feed the runtime's wait-for graph and
/// lock-order-inversion detector.
pub fn try_enter_monitor(
    state: &mut JvmState,
    ctx: &mut ThreadContext<'_>,
    obj: ObjRef,
    tid: ThreadId,
) -> bool {
    let m = state.monitors.entry(obj).or_default();
    match &mut m.owner {
        None => {
            m.owner = Some((tid, 1));
            ctx.runtime()
                .note_acquire(tid, Resource::Monitor(obj as u64));
            true
        }
        Some((owner, count)) if *owner == tid => {
            *count += 1;
            true
        }
        _ => false,
    }
}

/// Queue the thread on a contended monitor.
pub fn queue_on_monitor(state: &mut JvmState, obj: ObjRef, tid: ThreadId) {
    let m = state.monitors.entry(obj).or_default();
    if !m.entry_queue.contains(&tid) {
        m.entry_queue.push_back(tid);
    }
}

/// Release one recursion level; wakes the next queued thread when the
/// monitor becomes free.
pub fn exit_monitor(
    state: &mut JvmState,
    ctx: &mut ThreadContext<'_>,
    obj: ObjRef,
    tid: ThreadId,
) -> Result<(), String> {
    let m = state
        .monitors
        .get_mut(&obj)
        .ok_or_else(|| "monitor not held".to_string())?;
    match &mut m.owner {
        Some((owner, count)) if *owner == tid => {
            *count -= 1;
            if *count == 0 {
                m.owner = None;
                let next = m.entry_queue.pop_front();
                ctx.runtime()
                    .note_release(tid, Resource::Monitor(obj as u64));
                if let Some(next) = next {
                    ctx.wake(next);
                }
            }
            Ok(())
        }
        _ => Err("monitor owned by another thread".to_string()),
    }
}

/// "Class.method" for the thread's innermost frame — the site string
/// deadlock blame and wait-for edges carry.
pub fn current_site(state: &JvmState, frames: &[Frame]) -> String {
    match frames.last() {
        Some(f) => format!("{}.{}", state.registry.get(f.code.class).name, f.code.name),
        None => "<no frame>".to_string(),
    }
}

/// The thread's whole frame stack as "Class.method" strings, outermost
/// first — the shape the sampling profiler folds into `a;b;c` stacks.
pub fn stack_trace(state: &JvmState, frames: &[Frame]) -> Vec<String> {
    frames
        .iter()
        .map(|f| format!("{}.{}", state.registry.get(f.code.class).name, f.code.name))
        .collect()
}

// ----------------------------------------------------------------
// Exceptions (§6.6)
// ----------------------------------------------------------------

/// Allocate and throw a VM exception by class name.
pub fn throw_vm(
    state: &mut JvmState,
    frames: &mut Vec<Frame>,
    ctx: &mut ThreadContext<'_>,
    tid: ThreadId,
    class_name: &str,
    message: &str,
) -> StepResult {
    let ex = make_exception(state, class_name, message);
    dispatch_exception(state, frames, ctx, tid, ex)
}

/// Build an exception instance (class must be defined — the runtime
/// library guarantees the VM exception classes are).
pub fn make_exception(state: &mut JvmState, class_name: &str, message: &str) -> ObjRef {
    let msg_ref = state.intern_string(message);
    match state.registry.lookup(class_name) {
        Some(cid) => {
            let r = alloc_instance(state, cid);
            if let HeapObj::Instance { fields, .. } = state.heap.get_mut(r) {
                fields.insert(
                    "java/lang/Throwable.message".to_string(),
                    Value::Ref(Some(msg_ref)),
                );
            }
            r
        }
        // Bootstrap fallback: a bare string stands in for the object.
        None => state.heap.alloc_string(format!("{class_name}: {message}")),
    }
}

/// Walk the virtual stack for a handler — "DoppioJVM emulates JVM
/// exception handling semantics by iterating through its virtual stack
/// representation until it finds a stack frame with an applicable
/// exception handler, or until it empties the stack".
pub fn dispatch_exception(
    state: &mut JvmState,
    frames: &mut Vec<Frame>,
    ctx: &mut ThreadContext<'_>,
    tid: ThreadId,
    ex: ObjRef,
) -> StepResult {
    let ex_class = runtime_class_of(state, ex).ok();
    while let Some(frame) = frames.last_mut() {
        let pc = frame.pc as u16;
        let code = frame.code.clone();
        let mut matched = None;
        for entry in &code.exceptions {
            if pc < entry.start_pc || pc >= entry.end_pc {
                continue;
            }
            let applies = if entry.catch_type == 0 {
                true
            } else {
                let cf = state
                    .registry
                    .get(code.class)
                    .cf
                    .as_ref()
                    .expect("class file");
                match (cf.constant_pool.class_name(entry.catch_type), ex_class) {
                    (Ok(catch_name), Some(exc)) => {
                        let catch_name = catch_name.to_string();
                        state.registry.is_assignable(exc, &catch_name)
                    }
                    _ => false,
                }
            };
            if applies {
                matched = Some(entry.handler_pc);
                break;
            }
        }
        if let Some(handler_pc) = matched {
            let frame = frames.last_mut().expect("frame");
            frame.stack.clear();
            frame.push(Value::Ref(Some(ex)));
            frame.pc = handler_pc as usize;
            return StepResult::Continue;
        }
        // Unwind: release a synchronized method's monitor.
        let popped = frames.pop().expect("frame");
        if popped.code.name == "<clinit>" {
            state.registry.get_mut(popped.code.class).clinit = ClinitState::Initialized;
        }
        if let Some(mon) = popped.held_monitor {
            let _ = exit_monitor(state, ctx, mon, tid);
        }
    }
    StepResult::Uncaught(ex)
}

// ----------------------------------------------------------------
// Calls and returns
// ----------------------------------------------------------------

/// Pop a frame, delivering `value` to the caller.
pub fn do_return(
    state: &mut JvmState,
    frames: &mut Vec<Frame>,
    ctx: &mut ThreadContext<'_>,
    tid: ThreadId,
    value: Option<Value>,
) -> StepResult {
    let popped = frames.pop().expect("returning frame");
    if popped.code.name == "<clinit>" {
        state.registry.get_mut(popped.code.class).clinit = ClinitState::Initialized;
    }
    if let Some(mon) = popped.held_monitor {
        let _ = exit_monitor(state, ctx, mon, tid);
    }
    match frames.last_mut() {
        None => StepResult::Finished,
        Some(caller) => {
            if let Some(v) = value {
                caller.push(v);
            }
            StepResult::CallBoundary
        }
    }
}

/// Execute one of the four invoke instructions at `pc`.
fn invoke(
    state: &mut JvmState,
    frames: &mut Vec<Frame>,
    ctx: &mut ThreadContext<'_>,
    tid: ThreadId,
    opcode: u8,
    pc: usize,
    next_pc: usize,
) -> StepResult {
    state.engine.charge(Cost::Call);
    let code = frames.last().expect("frame").code.clone();

    // Quickened call site: the CP member ref and its descriptor are
    // decoded once per (method, bytecode offset).
    let cached = code.ics.borrow().get(&pc).cloned();
    let site = match cached {
        Some(s) => {
            state.perf.cp_hit.inc();
            s
        }
        None => {
            note_cp_miss(state, ctx, "invoke");
            let cf = state
                .registry
                .get(code.class)
                .cf
                .as_ref()
                .expect("class file");
            let idx = u16::from_be_bytes([code.bytecode[pc + 1], code.bytecode[pc + 2]]);
            let (cname, mname, mdesc) = match cf.constant_pool.member_ref(idx) {
                Ok(t) => t,
                Err(e) => {
                    let msg = e.to_string();
                    return throw_vm(state, frames, ctx, tid, "java/lang/InternalError", &msg);
                }
            };
            let desc = match doppio_classfile::descriptor::parse_method_descriptor(mdesc) {
                Ok(d) => d,
                Err(e) => {
                    let msg = e.to_string();
                    return throw_vm(state, frames, ctx, tid, "java/lang/InternalError", &msg);
                }
            };
            let site = Rc::new(CallSite {
                cname: Rc::from(cname),
                name: Rc::from(mname),
                desc: Rc::from(mdesc),
                arg_slots: desc.param_slots() as usize,
                ref_class: Cell::new(None),
                direct: Cell::new(None),
                mono: Cell::new(None),
            });
            code.ics.borrow_mut().insert(pc, site.clone());
            site
        }
    };
    invoke_with_site(state, frames, ctx, tid, opcode, next_pc, &site, false)
}

/// The body of an invoke once its call site is resolved: dispatch,
/// synchronization, argument transfer and the frame push. The tiered
/// interpreter enters here directly with its baked [`CallSite`]
/// (`from_tier` set), so quickening transitions and inline-cache
/// repair happen at identical program points in both tiers; an
/// inline-cache miss from the tier is counted as a deoptimization.
#[allow(clippy::too_many_arguments)]
pub(crate) fn invoke_with_site(
    state: &mut JvmState,
    frames: &mut Vec<Frame>,
    ctx: &mut ThreadContext<'_>,
    tid: ThreadId,
    opcode: u8,
    next_pc: usize,
    site: &Rc<CallSite>,
    from_tier: bool,
) -> StepResult {
    let arg_slots = site.arg_slots;
    let has_receiver = opcode != op::INVOKESTATIC;

    // Select the target method.
    let (target, method_flags) = if opcode == op::INVOKEVIRTUAL || opcode == op::INVOKEINTERFACE {
        // Peek the receiver under the arguments for dynamic dispatch.
        let frame = frames.last().expect("frame");
        let recv = match frame.peek(arg_slots) {
            Value::Ref(Some(r)) => *r,
            Value::Ref(None) => {
                let msg = format!("invoke {}", site.name);
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/NullPointerException",
                    &msg,
                );
            }
            other => {
                let msg = format!("receiver is {other:?}");
                return throw_vm(state, frames, ctx, tid, "java/lang/InternalError", &msg);
            }
        };
        let runtime_class = match runtime_class_of(state, recv) {
            Ok(c) => c,
            Err(r) => return r,
        };
        match site.mono.get() {
            Some((cls, t, flags)) if cls == runtime_class => {
                // Monomorphic hit: the §6.7 method dictionary lookup
                // (and its Cost::MapOp) is skipped entirely. A subclass
                // loaded mid-run has a fresh ClassId and lands in the
                // arm below, so the cache self-invalidates.
                state.perf.ic_hit.inc();
                (t, flags)
            }
            _ => {
                note_ic_miss(state, ctx, &site.name);
                if from_tier {
                    crate::tiered::note_deopt(state, ctx, "ic_miss");
                }
                if site.ref_class.get().is_none() {
                    match ensure_class(state, &site.cname) {
                        Ok(id) => site.ref_class.set(Some(id)),
                        Err(r) => return r,
                    }
                }
                // §6.7's method dictionary lookup.
                state.engine.charge(Cost::MapOp);
                let Some(t) = state
                    .registry
                    .select_virtual(runtime_class, &site.name, &site.desc)
                else {
                    let msg = format!("{}.{}{}", site.cname, site.name, site.desc);
                    return throw_vm(state, frames, ctx, tid, "java/lang/NoSuchMethodError", &msg);
                };
                let flags = method_flags_of(state, t);
                site.mono.set(Some((runtime_class, t, flags)));
                (t, flags)
            }
        }
    } else {
        if opcode == op::INVOKESPECIAL {
            // invokespecial still null-checks its receiver.
            let frame = frames.last().expect("frame");
            if matches!(frame.peek(arg_slots), Value::Ref(None)) {
                let msg = format!("invokespecial {}", site.name);
                return throw_vm(
                    state,
                    frames,
                    ctx,
                    tid,
                    "java/lang/NullPointerException",
                    &msg,
                );
            }
        }
        match site.direct.get() {
            Some((t, flags)) => {
                // Statically-bound hit: resolution (and, for
                // invokestatic, the `<clinit>` protocol) already done.
                state.perf.ic_hit.inc();
                (t, flags)
            }
            None => {
                note_ic_miss(state, ctx, &site.name);
                if from_tier {
                    crate::tiered::note_deopt(state, ctx, "ic_miss");
                }
                let ref_class = match site.ref_class.get() {
                    Some(id) => id,
                    None => match ensure_class(state, &site.cname) {
                        Ok(id) => {
                            site.ref_class.set(Some(id));
                            id
                        }
                        Err(r) => return r,
                    },
                };
                if opcode == op::INVOKESTATIC {
                    match ensure_initialized(state, frames, tid, ref_class) {
                        InitAction::Ready => {}
                        InitAction::Pushed => return StepResult::CallBoundary,
                    }
                }
                let Some(t) = state
                    .registry
                    .resolve_method(ref_class, &site.name, &site.desc)
                else {
                    let msg = format!("{}.{}{}", site.cname, site.name, site.desc);
                    return throw_vm(state, frames, ctx, tid, "java/lang/NoSuchMethodError", &msg);
                };
                let flags = method_flags_of(state, t);
                // invokespecial binds statically; invokestatic binds
                // once its class finished `<clinit>` (so the hit path
                // may skip the initialization protocol).
                if opcode == op::INVOKESPECIAL
                    || matches!(
                        state.registry.get(ref_class).clinit,
                        ClinitState::Initialized
                    )
                {
                    site.direct.set(Some((t, flags)));
                }
                (t, flags)
            }
        }
    };

    // Synchronized methods: acquire the monitor before popping args.
    let mut acquired_monitor = None;
    if method_flags & access::ACC_SYNCHRONIZED != 0 && &*site.name != "<clinit>" {
        let lock_obj = if method_flags & access::ACC_STATIC != 0 {
            let cls_name = state.registry.get(target.class).name.clone();
            class_object(state, &cls_name)
        } else {
            let frame = frames.last().expect("frame");
            match frame.peek(arg_slots) {
                Value::Ref(Some(r)) => *r,
                _ => {
                    return throw_vm(
                        state,
                        frames,
                        ctx,
                        tid,
                        "java/lang/NullPointerException",
                        "sync",
                    )
                }
            }
        };
        if try_enter_monitor(state, ctx, lock_obj, tid) {
            acquired_monitor = Some(lock_obj);
        } else {
            queue_on_monitor(state, lock_obj, tid);
            return StepResult::MonitorBlocked(lock_obj);
        }
    }

    // Pop arguments (and receiver) into a locals prefix.
    let frame = frames.last_mut().expect("frame");
    let total_slots = arg_slots + usize::from(has_receiver);
    let split = frame.stack.len() - total_slots;
    let args: Vec<Value> = frame.stack.split_off(split);
    frame.pc = next_pc; // the call returns past the invoke

    // Native?
    if method_flags & access::ACC_NATIVE != 0 {
        // Natives see logical values, not stack slots: drop the
        // padding slots of wide arguments.
        let args: Vec<Value> = args
            .into_iter()
            .filter(|v| !matches!(v, Value::Padding))
            .collect();
        let class_name = state.registry.get(target.class).name.clone();
        let outcome = natives::call_native(
            &mut NativeCtx {
                state,
                frames,
                ctx,
                tid,
            },
            &class_name,
            &site.name,
            &site.desc,
            args,
        );
        return natives::apply_outcome(state, frames, ctx, tid, outcome);
    }

    if frames.len() >= 8192 {
        return throw_vm(
            state,
            frames,
            ctx,
            tid,
            "java/lang/StackOverflowError",
            &format!("invoking {}", site.name),
        );
    }
    let Some(blob) = state.code_blob(target.class, target.index) else {
        return throw_vm(
            state,
            frames,
            ctx,
            tid,
            "java/lang/AbstractMethodError",
            &format!("{}.{}{}", site.cname, site.name, site.desc),
        );
    };
    // Host-only invocation counter: the §6.1 call-boundary hook that
    // feeds the tier-up oracle. Never charges the virtual clock.
    if state.tier_up {
        blob.hotness.set(
            blob.hotness
                .get()
                .saturating_add(crate::tiered::INVOKE_BOOST),
        );
    }
    let mut new_frame = Frame::new(blob);
    new_frame.held_monitor = acquired_monitor;
    // Copy argument slots verbatim (they are already slot-expanded).
    new_frame.locals[..args.len()].copy_from_slice(&args);
    frames.push(new_frame);
    StepResult::CallBoundary
}
