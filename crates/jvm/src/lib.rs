//! DoppioJVM: a Java Virtual Machine interpreter on the Doppio runtime
//! system (§6 of the Doppio paper, PLDI 2014).
//!
//! DoppioJVM interprets real JVM class files entirely on top of the
//! simulated browser substrate: it implements the full JVMS2 bytecode
//! set, keeps its call stacks in explicit frame objects (§6.1) so it
//! can suspend-and-resume through the Doppio execution environment,
//! emulates JVM exception handling by walking that virtual stack
//! (§6.6), maps objects to class-reference + field-dictionary pairs
//! (§6.7), loads classes lazily through asynchronous file-system
//! downloads (§6.4), and bridges native methods to the Doppio file
//! system, unmanaged heap, and sockets (§6.3, §6.5).
//!
//! # Example
//!
//! ```
//! use doppio_classfile::access::{ACC_PUBLIC, ACC_STATIC};
//! use doppio_classfile::builder::{ClassBuilder, MethodBuilder};
//! use doppio_fs::{backends, FileSystem};
//! use doppio_jsengine::{Browser, Engine};
//! use doppio_jvm::{fsutil, Jvm};
//!
//! // Assemble: class Hello { public static void main(String[] a) {
//! //   System.out.println("Hello from the browser!"); } }
//! let mut b = ClassBuilder::new("Hello", "java/lang/Object");
//! let mut m = MethodBuilder::new(ACC_PUBLIC | ACC_STATIC, "main", "([Ljava/lang/String;)V", 1);
//! m.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
//! m.ldc_string("Hello from the browser!");
//! m.invokevirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V");
//! m.return_void();
//! b.add_method(m);
//!
//! let engine = Engine::new(Browser::Chrome);
//! let fs = FileSystem::new(&engine, backends::in_memory(&engine));
//! fsutil::mount_classes(&engine, &fs, "/classes", &[b.finish()]);
//!
//! let jvm = Jvm::new(&engine, fs);
//! jvm.launch("Hello", &[]);
//! let result = jvm.run_to_completion().unwrap();
//! assert_eq!(result.stdout, "Hello from the browser!\n");
//! ```

pub mod class;
pub mod frame;
pub mod fsutil;
pub mod interp;
pub mod jvm;
pub mod loader;
pub mod natives;
pub mod object;
pub mod process;
pub mod rtlib;
pub mod state;
pub mod thread;
pub mod tiered;
pub mod value;

pub use jvm::{Jvm, JvmRunResult, JvmStdin, UserNative};
pub use natives::{NativeCtx, NativeOutcome};
pub use process::spawn_jvm;
pub use value::{ObjRef, Value};

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_classfile::access::{ACC_PUBLIC, ACC_STATIC, ACC_SYNCHRONIZED};
    use doppio_classfile::builder::{ClassBuilder, MethodBuilder};
    use doppio_classfile::opcodes as op;
    use doppio_classfile::ClassFile;
    use doppio_fs::{backends, FileSystem};
    use doppio_jsengine::{Browser, Engine};

    const MAIN_DESC: &str = "([Ljava/lang/String;)V";
    const PS: &str = "java/io/PrintStream";
    const PUB_STATIC: u16 = ACC_PUBLIC | ACC_STATIC;

    fn run_classes(classes: Vec<ClassFile>, main: &str) -> JvmRunResult {
        run_classes_on(Browser::Chrome, classes, main)
    }

    fn run_classes_on(browser: Browser, classes: Vec<ClassFile>, main: &str) -> JvmRunResult {
        let engine = Engine::new(browser);
        let fs = FileSystem::new(&engine, backends::in_memory(&engine));
        fsutil::mount_classes(&engine, &fs, "/classes", &classes);
        let jvm = Jvm::new(&engine, fs);
        jvm.launch(main, &[]);
        jvm.run_to_completion().unwrap()
    }

    /// `System.out.println(<string produced by f>)`.
    fn println_str(m: &mut MethodBuilder, f: impl FnOnce(&mut MethodBuilder)) {
        m.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
        f(m);
        m.invokevirtual(PS, "println", "(Ljava/lang/String;)V");
    }

    fn println_int(m: &mut MethodBuilder, f: impl FnOnce(&mut MethodBuilder)) {
        m.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
        f(m);
        m.invokevirtual(PS, "println", "(I)V");
    }

    #[test]
    fn hello_world() {
        let mut b = ClassBuilder::new("Hello", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 1);
        println_str(&mut m, |m| m.ldc_string("Hello, browser!"));
        m.return_void();
        b.add_method(m);
        let r = run_classes(vec![b.finish()], "Hello");
        assert_eq!(r.stdout, "Hello, browser!\n");
        assert!(r.uncaught.is_none());
        assert!(r.instructions > 0);
    }

    #[test]
    fn loop_arithmetic_sums() {
        let mut b = ClassBuilder::new("Sum", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 3);
        let top = m.new_label();
        let done = m.new_label();
        m.ldc_int(0);
        m.istore(1);
        m.ldc_int(0);
        m.istore(2);
        m.bind(top);
        m.iload(2);
        m.ldc_int(100);
        m.branch(op::IF_ICMPGE, done);
        m.iload(1);
        m.iload(2);
        m.iadd();
        m.istore(1);
        m.iinc(2, 1);
        m.goto_(top);
        m.bind(done);
        println_int(&mut m, |m| m.iload(1));
        m.return_void();
        b.add_method(m);
        let r = run_classes(vec![b.finish()], "Sum");
        assert_eq!(r.stdout, "4950\n");
    }

    #[test]
    fn recursion_computes_factorial() {
        let mut b = ClassBuilder::new("Fact", "java/lang/Object");
        let mut f = MethodBuilder::new(PUB_STATIC, "f", "(I)I", 1);
        let rec = f.new_label();
        f.iload(0);
        f.ldc_int(1);
        f.branch(op::IF_ICMPGT, rec);
        f.ldc_int(1);
        f.ireturn();
        f.bind(rec);
        f.iload(0);
        f.iload(0);
        f.ldc_int(1);
        f.isub();
        f.invokestatic("Fact", "f", "(I)I");
        f.imul();
        f.ireturn();
        b.add_method(f);
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 1);
        println_int(&mut m, |m| {
            m.ldc_int(10);
            m.invokestatic("Fact", "f", "(I)I");
        });
        m.return_void();
        b.add_method(m);
        let r = run_classes(vec![b.finish()], "Fact");
        assert_eq!(r.stdout, "3628800\n");
    }

    #[test]
    fn long_arithmetic_and_comparison() {
        let mut b = ClassBuilder::new("Longs", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 5);
        m.ldc_long(1i64 << 40);
        m.lstore(1);
        m.lload(1);
        m.ldc_long(3);
        m.simple(op::LMUL);
        m.ldc_long(7);
        m.simple(op::LADD);
        m.lstore(3);
        m.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
        m.lload(3);
        m.invokevirtual(PS, "println", "(J)V");
        let gt = m.new_label();
        let end = m.new_label();
        m.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
        m.lload(3);
        m.lload(1);
        m.simple(op::LCMP);
        m.branch(op::IFGT, gt);
        m.ldc_int(0);
        m.goto_(end);
        m.bind(gt);
        m.ldc_int(1);
        m.bind(end);
        m.invokevirtual(PS, "println", "(Z)V");
        m.return_void();
        b.add_method(m);
        let r = run_classes(vec![b.finish()], "Longs");
        assert_eq!(r.stdout, format!("{}\ntrue\n", (1i64 << 40) * 3 + 7));
    }

    fn animal_classes() -> Vec<ClassFile> {
        let mut animal = ClassBuilder::new("Animal", "java/lang/Object");
        {
            let mut init = MethodBuilder::new(ACC_PUBLIC, "<init>", "()V", 1);
            init.aload(0);
            init.invokespecial("java/lang/Object", "<init>", "()V");
            init.return_void();
            animal.add_method(init);
            let mut s = MethodBuilder::new(ACC_PUBLIC, "sound", "()Ljava/lang/String;", 1);
            s.ldc_string("...");
            s.areturn();
            animal.add_method(s);
            let mut d = MethodBuilder::new(ACC_PUBLIC, "describe", "()Ljava/lang/String;", 1);
            d.aload(0);
            d.invokevirtual("Animal", "sound", "()Ljava/lang/String;");
            d.areturn();
            animal.add_method(d);
        }
        let mut dog = ClassBuilder::new("Dog", "Animal");
        {
            let mut init = MethodBuilder::new(ACC_PUBLIC, "<init>", "()V", 1);
            init.aload(0);
            init.invokespecial("Animal", "<init>", "()V");
            init.return_void();
            dog.add_method(init);
            let mut s = MethodBuilder::new(ACC_PUBLIC, "sound", "()Ljava/lang/String;", 1);
            s.ldc_string("woof");
            s.areturn();
            dog.add_method(s);
        }
        vec![animal.finish(), dog.finish()]
    }

    #[test]
    fn virtual_dispatch_through_supertype() {
        let mut main = ClassBuilder::new("Zoo", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 2);
        m.new_object("Dog");
        m.dup();
        m.invokespecial("Dog", "<init>", "()V");
        m.astore(1);
        println_str(&mut m, |m| {
            m.aload(1);
            m.invokevirtual("Animal", "describe", "()Ljava/lang/String;");
        });
        m.return_void();
        main.add_method(m);
        let mut classes = animal_classes();
        classes.push(main.finish());
        let r = run_classes(classes, "Zoo");
        assert_eq!(r.stdout, "woof\n");
        // Three user classes were fetched through the fs (§6.4).
        assert_eq!(r.class_fetches, 3);
    }

    #[test]
    fn interface_dispatch() {
        let mut task = ClassBuilder::new("Task", "java/lang/Object");
        task.add_interface("java/lang/Runnable");
        let mut init = MethodBuilder::new(ACC_PUBLIC, "<init>", "()V", 1);
        init.aload(0);
        init.invokespecial("java/lang/Object", "<init>", "()V");
        init.return_void();
        task.add_method(init);
        let mut run = MethodBuilder::new(ACC_PUBLIC, "run", "()V", 1);
        println_str(&mut run, |m| m.ldc_string("ran"));
        run.return_void();
        task.add_method(run);

        let mut main = ClassBuilder::new("Iface", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 2);
        m.new_object("Task");
        m.dup();
        m.invokespecial("Task", "<init>", "()V");
        m.astore(1);
        m.aload(1);
        m.invokeinterface("java/lang/Runnable", "run", "()V");
        m.return_void();
        main.add_method(m);
        let r = run_classes(vec![task.finish(), main.finish()], "Iface");
        assert_eq!(r.stdout, "ran\n");
    }

    #[test]
    fn caught_exception_reaches_handler() {
        let mut b = ClassBuilder::new("Catch", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 2);
        let start = m.new_label();
        let end = m.new_label();
        let handler = m.new_label();
        let out = m.new_label();
        m.bind(start);
        m.ldc_int(1);
        m.ldc_int(0);
        m.simple(op::IDIV);
        m.pop();
        m.bind(end);
        m.goto_(out);
        m.bind(handler);
        m.astore(1);
        println_str(&mut m, |m| {
            m.ldc_string("caught: ");
            m.aload(1);
            m.invokevirtual("java/lang/Throwable", "getMessage", "()Ljava/lang/String;");
            m.invokevirtual(
                "java/lang/String",
                "concat",
                "(Ljava/lang/String;)Ljava/lang/String;",
            );
        });
        m.bind(out);
        m.return_void();
        m.add_exception_handler(start, end, handler, Some("java/lang/ArithmeticException"));
        b.add_method(m);
        let r = run_classes(vec![b.finish()], "Catch");
        assert_eq!(r.stdout, "caught: / by zero\n");
        assert!(r.uncaught.is_none());
    }

    #[test]
    fn uncaught_exception_is_reported() {
        let mut b = ClassBuilder::new("Boom", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 1);
        m.new_object("java/lang/RuntimeException");
        m.dup();
        m.ldc_string("kaboom");
        m.invokespecial(
            "java/lang/RuntimeException",
            "<init>",
            "(Ljava/lang/String;)V",
        );
        m.athrow();
        b.add_method(m);
        let r = run_classes(vec![b.finish()], "Boom");
        assert_eq!(
            r.uncaught.as_deref(),
            Some("java.lang.RuntimeException: kaboom")
        );
        assert!(r.stderr.contains("Exception in thread \"main\""));
        assert!(r.stderr.contains("kaboom"));
    }

    #[test]
    fn array_operations_and_bounds_check() {
        let mut b = ClassBuilder::new("Arrays", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 2);
        m.ldc_int(5);
        m.newarray(10); // int[]
        m.astore(1);
        m.aload(1);
        m.ldc_int(3);
        m.ldc_int(42);
        m.simple(op::IASTORE);
        println_int(&mut m, |m| {
            m.aload(1);
            m.ldc_int(3);
            m.simple(op::IALOAD);
            m.aload(1);
            m.arraylength();
            m.iadd();
        });
        let s = m.new_label();
        let e = m.new_label();
        let h = m.new_label();
        let done = m.new_label();
        m.bind(s);
        m.aload(1);
        m.ldc_int(9);
        m.simple(op::IALOAD);
        m.pop();
        m.bind(e);
        m.goto_(done);
        m.bind(h);
        m.pop();
        println_str(&mut m, |m| m.ldc_string("bounds!"));
        m.bind(done);
        m.return_void();
        m.add_exception_handler(s, e, h, Some("java/lang/ArrayIndexOutOfBoundsException"));
        b.add_method(m);
        let r = run_classes(vec![b.finish()], "Arrays");
        assert_eq!(r.stdout, "47\nbounds!\n");
    }

    #[test]
    fn string_builder_concatenation() {
        let mut b = ClassBuilder::new("Strings", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 1);
        println_str(&mut m, |m| {
            m.new_object("java/lang/StringBuilder");
            m.dup();
            m.invokespecial("java/lang/StringBuilder", "<init>", "()V");
            m.ldc_string("answer=");
            m.invokevirtual(
                "java/lang/StringBuilder",
                "append",
                "(Ljava/lang/String;)Ljava/lang/StringBuilder;",
            );
            m.ldc_int(42);
            m.invokevirtual(
                "java/lang/StringBuilder",
                "append",
                "(I)Ljava/lang/StringBuilder;",
            );
            m.ldc_long(7);
            m.invokevirtual(
                "java/lang/StringBuilder",
                "append",
                "(J)Ljava/lang/StringBuilder;",
            );
            m.invokevirtual(
                "java/lang/StringBuilder",
                "toString",
                "()Ljava/lang/String;",
            );
        });
        m.return_void();
        b.add_method(m);
        let r = run_classes(vec![b.finish()], "Strings");
        assert_eq!(r.stdout, "answer=427\n");
    }

    #[test]
    fn static_initializer_runs_once_before_use() {
        let mut holder = ClassBuilder::new("Holder", "java/lang/Object");
        holder.add_field(PUB_STATIC, "value", "I");
        let mut clinit = MethodBuilder::new(ACC_STATIC, "<clinit>", "()V", 0);
        println_str(&mut clinit, |m| m.ldc_string("init!"));
        clinit.ldc_int(99);
        clinit.putstatic("Holder", "value", "I");
        clinit.return_void();
        holder.add_method(clinit);

        let mut main = ClassBuilder::new("UseHolder", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 1);
        println_int(&mut m, |m| m.getstatic("Holder", "value", "I"));
        println_int(&mut m, |m| m.getstatic("Holder", "value", "I"));
        m.return_void();
        main.add_method(m);
        let r = run_classes(vec![holder.finish(), main.finish()], "UseHolder");
        assert_eq!(r.stdout, "init!\n99\n99\n");
    }

    #[test]
    fn switches_select_correctly() {
        let mut b = ClassBuilder::new("Switches", "java/lang/Object");
        let mut pick = MethodBuilder::new(PUB_STATIC, "pick", "(I)I", 1);
        let c0 = pick.new_label();
        let c1 = pick.new_label();
        let def = pick.new_label();
        pick.iload(0);
        pick.tableswitch(0, vec![c0, c1], def);
        pick.bind(c0);
        pick.ldc_int(100);
        pick.ireturn();
        pick.bind(c1);
        pick.ldc_int(200);
        pick.ireturn();
        pick.bind(def);
        pick.ldc_int(-1);
        pick.ireturn();
        b.add_method(pick);
        let mut look = MethodBuilder::new(PUB_STATIC, "look", "(I)I", 1);
        let ca = look.new_label();
        let cb = look.new_label();
        let df = look.new_label();
        look.iload(0);
        look.lookupswitch(vec![(-5, ca), (1000, cb)], df);
        look.bind(ca);
        look.ldc_int(11);
        look.ireturn();
        look.bind(cb);
        look.ldc_int(22);
        look.ireturn();
        look.bind(df);
        look.ldc_int(-1);
        look.ireturn();
        b.add_method(look);
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 1);
        for (method, arg) in [
            ("pick", 0),
            ("pick", 1),
            ("pick", 7),
            ("look", -5),
            ("look", 1000),
            ("look", 3),
        ] {
            println_int(&mut m, |m| {
                m.ldc_int(arg);
                m.invokestatic("Switches", method, "(I)I");
            });
        }
        m.return_void();
        b.add_method(m);
        let r = run_classes(vec![b.finish()], "Switches");
        assert_eq!(r.stdout, "100\n200\n-1\n11\n22\n-1\n");
    }

    #[test]
    fn checkcast_and_instanceof() {
        let mut main = ClassBuilder::new("Casts", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 2);
        m.new_object("Dog");
        m.dup();
        m.invokespecial("Dog", "<init>", "()V");
        m.astore(1);
        m.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
        m.aload(1);
        m.instanceof("Animal");
        m.invokevirtual(PS, "println", "(Z)V");
        m.aload(1);
        m.checkcast("Animal");
        m.pop();
        let s = m.new_label();
        let e = m.new_label();
        let h = m.new_label();
        let done = m.new_label();
        m.bind(s);
        m.aload(1);
        m.checkcast("java/lang/String");
        m.pop();
        m.bind(e);
        m.goto_(done);
        m.bind(h);
        m.pop();
        println_str(&mut m, |m| m.ldc_string("bad cast"));
        m.bind(done);
        m.return_void();
        m.add_exception_handler(s, e, h, Some("java/lang/ClassCastException"));
        main.add_method(m);
        let mut classes = animal_classes();
        classes.push(main.finish());
        let r = run_classes(classes, "Casts");
        assert_eq!(r.stdout, "true\nbad cast\n");
    }

    #[test]
    fn unsafe_heap_round_trips() {
        let mut b = ClassBuilder::new("Mem", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 4);
        m.invokestatic("sun/misc/Unsafe", "getUnsafe", "()Lsun/misc/Unsafe;");
        m.astore(1);
        m.aload(1);
        m.ldc_long(16);
        m.invokevirtual("sun/misc/Unsafe", "allocateMemory", "(J)J");
        m.lstore(2);
        m.aload(1);
        m.lload(2);
        m.ldc_int(0x1234);
        m.invokevirtual("sun/misc/Unsafe", "putInt", "(JI)V");
        println_int(&mut m, |m| {
            m.aload(1);
            m.lload(2);
            m.invokevirtual("sun/misc/Unsafe", "getInt", "(J)I");
        });
        m.aload(1);
        m.lload(2);
        m.invokevirtual("sun/misc/Unsafe", "freeMemory", "(J)V");
        m.return_void();
        b.add_method(m);
        let r = run_classes(vec![b.finish()], "Mem");
        assert_eq!(r.stdout, format!("{}\n", 0x1234));
    }

    #[test]
    fn stack_overflow_is_an_error_not_a_crash() {
        let mut b = ClassBuilder::new("Deep", "java/lang/Object");
        let mut f = MethodBuilder::new(PUB_STATIC, "f", "()V", 0);
        f.invokestatic("Deep", "f", "()V");
        f.return_void();
        b.add_method(f);
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 1);
        m.invokestatic("Deep", "f", "()V");
        m.return_void();
        b.add_method(m);
        let r = run_classes(vec![b.finish()], "Deep");
        assert!(r
            .uncaught
            .as_deref()
            .unwrap_or_default()
            .contains("StackOverflowError"));
    }

    #[test]
    fn synchronized_threads_do_not_lose_updates() {
        let mut counter = ClassBuilder::new("Counter", "java/lang/Object");
        counter.add_field(PUB_STATIC, "n", "I");
        let mut bump = MethodBuilder::new(PUB_STATIC | ACC_SYNCHRONIZED, "bump", "()V", 0);
        bump.getstatic("Counter", "n", "I");
        bump.ldc_int(1);
        bump.iadd();
        bump.putstatic("Counter", "n", "I");
        bump.return_void();
        counter.add_method(bump);

        let mut worker = ClassBuilder::new("Worker", "java/lang/Thread");
        let mut init = MethodBuilder::new(ACC_PUBLIC, "<init>", "()V", 1);
        init.aload(0);
        init.invokespecial("java/lang/Thread", "<init>", "()V");
        init.return_void();
        worker.add_method(init);
        let mut run = MethodBuilder::new(ACC_PUBLIC, "run", "()V", 2);
        let top = run.new_label();
        let done = run.new_label();
        run.ldc_int(0);
        run.istore(1);
        run.bind(top);
        run.iload(1);
        run.ldc_int(500);
        run.branch(op::IF_ICMPGE, done);
        run.invokestatic("Counter", "bump", "()V");
        run.iinc(1, 1);
        run.goto_(top);
        run.bind(done);
        run.return_void();
        worker.add_method(run);

        let mut main = ClassBuilder::new("Race", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 3);
        for slot in [1u16, 2] {
            m.new_object("Worker");
            m.dup();
            m.invokespecial("Worker", "<init>", "()V");
            m.astore(slot);
            m.aload(slot);
            m.invokevirtual("java/lang/Thread", "start", "()V");
        }
        for slot in [1u16, 2] {
            m.aload(slot);
            m.invokevirtual("java/lang/Thread", "join", "()V");
        }
        println_int(&mut m, |m| m.getstatic("Counter", "n", "I"));
        m.return_void();
        main.add_method(m);
        let r = run_classes(
            vec![counter.finish(), worker.finish(), main.finish()],
            "Race",
        );
        assert_eq!(r.stdout, "1000\n");
        assert!(r.runtime.context_switches > 0);
    }

    #[test]
    fn blocking_stdin_read_resumes_on_input() {
        let mut b = ClassBuilder::new("Greeter", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 2);
        m.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
        m.ldc_string("Please enter your name: ");
        m.invokevirtual(PS, "print", "(Ljava/lang/String;)V");
        m.invokestatic("doppio/runtime/Console", "readLine", "()Ljava/lang/String;");
        m.astore(1);
        println_str(&mut m, |m| {
            m.ldc_string("Your name is ");
            m.aload(1);
            m.invokevirtual(
                "java/lang/String",
                "concat",
                "(Ljava/lang/String;)Ljava/lang/String;",
            );
        });
        m.return_void();
        b.add_method(m);

        let engine = Engine::new(Browser::Chrome);
        let fs = FileSystem::new(&engine, backends::in_memory(&engine));
        fsutil::mount_classes(&engine, &fs, "/classes", &[b.finish()]);
        let jvm = Jvm::new(&engine, fs);
        jvm.launch("Greeter", &[]);
        jvm.runtime().start();
        engine.run_until_idle();
        assert!(!jvm.is_finished());
        assert!(jvm
            .with_state(|s| s.stdout_text())
            .contains("enter your name"));
        jvm.push_stdin(b"Ada\n");
        engine.run_until_idle();
        assert!(jvm.is_finished());
        assert!(jvm
            .with_state(|s| s.stdout_text())
            .ends_with("Your name is Ada\n"));
    }

    #[test]
    fn long_computation_stays_responsive_in_browser() {
        let mut b = ClassBuilder::new("Busy", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 3);
        let top = m.new_label();
        let done = m.new_label();
        m.ldc_int(0);
        m.istore(1);
        m.bind(top);
        m.iload(1);
        m.ldc_int(300_000);
        m.branch(op::IF_ICMPGE, done);
        m.ldc_int(3);
        m.invokestatic("Busy", "twice", "(I)I");
        m.pop();
        m.iinc(1, 1);
        m.goto_(top);
        m.bind(done);
        println_str(&mut m, |m| m.ldc_string("done"));
        m.return_void();
        b.add_method(m);
        let mut twice = MethodBuilder::new(PUB_STATIC, "twice", "(I)I", 1);
        twice.iload(0);
        twice.ldc_int(2);
        twice.imul();
        twice.ireturn();
        b.add_method(twice);
        let r = run_classes(vec![b.finish()], "Busy");
        assert_eq!(r.stdout, "done\n");
        assert!(r.runtime.suspensions > 10, "{:?}", r.runtime);
    }

    #[test]
    fn js_interop_eval() {
        let mut b = ClassBuilder::new("Evals", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 1);
        println_str(&mut m, |m| {
            m.ldc_string("6*7");
            m.invokestatic(
                "doppio/runtime/JS",
                "eval",
                "(Ljava/lang/String;)Ljava/lang/String;",
            );
        });
        m.return_void();
        b.add_method(m);

        let engine = Engine::new(Browser::Chrome);
        let fs = FileSystem::new(&engine, backends::in_memory(&engine));
        fsutil::mount_classes(&engine, &fs, "/classes", &[b.finish()]);
        let jvm = Jvm::new(&engine, fs);
        jvm.set_js_eval(|_, src| {
            if src == "6*7" {
                "42".to_string()
            } else {
                "undefined".to_string()
            }
        });
        jvm.launch("Evals", &[]);
        let r = jvm.run_to_completion().unwrap();
        assert_eq!(r.stdout, "42\n");
    }

    #[test]
    fn file_natives_use_the_doppio_fs() {
        let mut b = ClassBuilder::new("Files", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 2);
        m.ldc_string("/data/in.txt");
        m.invokestatic(
            "doppio/runtime/FileSystem",
            "readFileBytes",
            "(Ljava/lang/String;)[B",
        );
        m.astore(1);
        println_str(&mut m, |m| {
            m.new_object("java/lang/String");
            m.dup();
            m.aload(1);
            m.invokespecial("java/lang/String", "<init>", "([B)V");
        });
        m.ldc_string("/data/out.txt");
        m.aload(1);
        m.invokestatic(
            "doppio/runtime/FileSystem",
            "writeFileBytes",
            "(Ljava/lang/String;[B)V",
        );
        m.return_void();
        b.add_method(m);

        let engine = Engine::new(Browser::Chrome);
        let fs = FileSystem::new(&engine, backends::in_memory(&engine));
        fsutil::mount_classes(&engine, &fs, "/classes", &[b.finish()]);
        fs.mkdir("/data", |_, r| r.unwrap());
        engine.run_until_idle();
        fs.write_file("/data/in.txt", b"file payload".to_vec(), |_, r| r.unwrap());
        engine.run_until_idle();

        let jvm = Jvm::new(&engine, fs.clone());
        jvm.launch("Files", &[]);
        let r = jvm.run_to_completion().unwrap();
        assert_eq!(r.stdout, "file payload\n");
        let out = std::rc::Rc::new(std::cell::RefCell::new(None));
        let o = out.clone();
        fs.read_file("/data/out.txt", move |_, r| {
            *o.borrow_mut() = Some(r.unwrap())
        });
        engine.run_until_idle();
        assert_eq!(out.borrow().as_deref(), Some(&b"file payload"[..]));
    }

    #[test]
    fn missing_class_raises_noclassdef() {
        let mut b = ClassBuilder::new("Missing", "java/lang/Object");
        let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 1);
        m.invokestatic("does/not/Exist", "f", "()V");
        m.return_void();
        b.add_method(m);
        let r = run_classes(vec![b.finish()], "Missing");
        assert!(r
            .uncaught
            .as_deref()
            .unwrap_or_default()
            .contains("NoClassDefFoundError"));
    }

    #[test]
    fn runs_on_every_browser_profile() {
        for browser in Browser::EVALUATED {
            let mut b = ClassBuilder::new("Porta", "java/lang/Object");
            let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 1);
            println_int(&mut m, |m| {
                m.ldc_int(21);
                m.ldc_int(2);
                m.imul();
            });
            m.return_void();
            b.add_method(m);
            let r = run_classes_on(browser, vec![b.finish()], "Porta");
            assert_eq!(r.stdout, "42\n", "browser {browser}");
        }
    }

    #[test]
    fn wall_clock_ordering_matches_figure3_shape() {
        let make = || {
            let mut b = ClassBuilder::new("Bench", "java/lang/Object");
            let mut m = MethodBuilder::new(PUB_STATIC, "main", MAIN_DESC, 2);
            let top = m.new_label();
            let done = m.new_label();
            m.ldc_int(0);
            m.istore(1);
            m.bind(top);
            m.iload(1);
            m.ldc_int(50_000);
            m.branch(op::IF_ICMPGE, done);
            m.iinc(1, 1);
            m.goto_(top);
            m.bind(done);
            m.return_void();
            b.add_method(m);
            vec![b.finish()]
        };
        let native = run_classes_on(Browser::Native, make(), "Bench").wall_ns;
        let chrome = run_classes_on(Browser::Chrome, make(), "Bench").wall_ns;
        let opera = run_classes_on(Browser::Opera, make(), "Bench").wall_ns;
        assert!(chrome > 10 * native, "chrome {chrome} native {native}");
        assert!(opera > chrome, "opera {opera} chrome {chrome}");
    }
}

#[cfg(test)]
mod backedge_tests {
    use super::*;
    use doppio_classfile::access::{ACC_PUBLIC, ACC_STATIC};
    use doppio_classfile::builder::{ClassBuilder, MethodBuilder};
    use doppio_classfile::opcodes as op;
    use doppio_fs::{backends, FileSystem};
    use doppio_jsengine::{Browser, Engine};

    /// A call-free loop long enough (> 5 virtual seconds in Chrome)
    /// that, with suspend checks only at call boundaries (§6.1), the
    /// whole method runs as one event and the watchdog kills the page.
    fn spin_class() -> doppio_classfile::ClassFile {
        let mut b = ClassBuilder::new("Spin", "java/lang/Object");
        let mut m =
            MethodBuilder::new(ACC_PUBLIC | ACC_STATIC, "main", "([Ljava/lang/String;)V", 2);
        let top = m.new_label();
        let done = m.new_label();
        m.ldc_int(0);
        m.istore(1);
        m.bind(top);
        m.iload(1);
        m.ldc_int(12_000_000);
        m.branch(op::IF_ICMPGE, done);
        m.iinc(1, 1);
        m.goto_(top);
        m.bind(done);
        m.return_void();
        b.add_method(m);
        b.finish()
    }

    fn run_spin(check_backedges: bool) -> (u64, u64) {
        let engine = Engine::new(Browser::Chrome);
        let fs = FileSystem::new(&engine, backends::in_memory(&engine));
        fsutil::mount_classes(&engine, &fs, "/classes", &[spin_class()]);
        let jvm = Jvm::new(&engine, fs);
        jvm.set_check_backedges(check_backedges);
        jvm.launch("Spin", &[]);
        let r = jvm.run_to_completion().unwrap();
        assert!(r.uncaught.is_none());
        (engine.stats().watchdog_kills, r.runtime.suspensions)
    }

    #[test]
    fn call_free_loops_defeat_call_boundary_checks() {
        // The §6.1 caveat, demonstrated: no calls → no suspend checks
        // → one monolithic multi-second event → watchdog kill.
        let (kills, suspensions) = run_spin(false);
        assert_eq!(suspensions, 0);
        assert!(kills >= 1, "the watchdog should have fired");
    }

    #[test]
    fn backedge_instrumentation_fixes_the_starvation() {
        // The fix the paper sketches: checks on loop back edges keep
        // every event finite.
        let (kills, suspensions) = run_spin(true);
        assert_eq!(kills, 0);
        assert!(suspensions > 10, "suspended {suspensions} times");
    }
}

#[cfg(test)]
mod opcode_coverage_tests {
    use super::*;
    use doppio_classfile::access::{ACC_PUBLIC, ACC_STATIC};
    use doppio_classfile::builder::{ClassBuilder, MethodBuilder};
    use doppio_classfile::opcodes as op;
    use doppio_fs::{backends, FileSystem};
    use doppio_jsengine::{Browser, Engine};

    fn run_main(build: impl FnOnce(&mut MethodBuilder)) -> String {
        let mut b = ClassBuilder::new("Ops", "java/lang/Object");
        let mut m =
            MethodBuilder::new(ACC_PUBLIC | ACC_STATIC, "main", "([Ljava/lang/String;)V", 8);
        build(&mut m);
        m.return_void();
        b.add_method(m);
        let engine = Engine::new(Browser::Chrome);
        let fs = FileSystem::new(&engine, backends::in_memory(&engine));
        fsutil::mount_classes(&engine, &fs, "/classes", &[b.finish()]);
        let jvm = Jvm::new(&engine, fs);
        jvm.launch("Ops", &[]);
        let r = jvm.run_to_completion().unwrap();
        assert!(r.uncaught.is_none(), "{:?} / {}", r.uncaught, r.stderr);
        r.stdout
    }

    fn println_top_int(m: &mut MethodBuilder) {
        // ..., value → print it (value computed before out is loaded,
        // so swap them into call order).
        m.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
        m.swap();
        m.invokevirtual("java/io/PrintStream", "println", "(I)V");
    }

    #[test]
    fn single_slot_shuffles() {
        // dup_x1: a b -> b a b ; dup_x2: a b c -> c a b c ; swap.
        let out = run_main(|m| {
            // (10 - 3) via swap: push 3, push 10, swap, isub = 10-3
            m.ldc_int(3);
            m.ldc_int(10);
            m.swap();
            m.isub();
            println_top_int(m); // -7? no: swap makes 3 - ... wait: stack [3,10] -> swap -> [10,3]; isub = 10-3 = 7
                                // dup_x1: compute a*b + b with one load of b:
                                // push a=6, push b=7, dup_x1 -> [7,6,7], imul -> [7,42], iadd -> 49
            m.ldc_int(6);
            m.ldc_int(7);
            m.simple(op::DUP_X1);
            m.pop(); // [7,6]
            m.imul(); // 42
            println_top_int(m);
            // dup_x2 with three category-1 values: a b c -> c a b c
            m.ldc_int(1);
            m.ldc_int(2);
            m.ldc_int(4);
            m.simple(op::DUP_X2); // [4,1,2,4]
            m.iadd(); // [4,1,6]
            m.iadd(); // [4,7]
            m.imul(); // 28
            println_top_int(m);
        });
        assert_eq!(out, "7\n42\n28\n");
    }

    #[test]
    fn two_slot_shuffles_with_longs() {
        let out = run_main(|m| {
            // dup2 on a long: [L] -> [L,L]; ladd doubles it.
            m.ldc_long(21);
            m.simple(op::DUP2);
            m.simple(op::LADD); // 42
            m.simple(op::L2I);
            println_top_int(m);
            // dup2_x1: [i, L] -> [L, i, L]
            m.ldc_int(5);
            m.ldc_long(100);
            m.simple(op::DUP2_X1); // [L100, 5, L100]
            m.simple(op::L2I); // [L100, 5, 100]
            m.iadd(); // [L100, 105]
            println_top_int(m);
            m.simple(op::POP2); // drop the leftover long
                                // dup2_x2: [L, L] -> [L2, L1, L2]
            m.ldc_long(7);
            m.ldc_long(8);
            m.simple(op::DUP2_X2); // [L8, L7, L8]
            m.simple(op::LADD); // [L8, L15]
            m.simple(op::L2I);
            println_top_int(m);
            m.simple(op::POP2);
        });
        assert_eq!(out, "42\n105\n15\n");
    }

    #[test]
    fn jsr_ret_subroutine() {
        // The classic finally-block encoding: jsr to a subroutine that
        // stores its return address with astore, does work, and rets.
        let out = run_main(|m| {
            let sub = m.new_label();
            let after1 = m.new_label();
            let after2 = m.new_label();
            m.ldc_int(0);
            m.istore(1); // counter
            m.branch(op::JSR, sub);
            m.bind(after1);
            m.branch(op::JSR, sub);
            m.bind(after2);
            m.iload(1);
            println_top_int(m);
            let done = m.new_label();
            m.goto_(done);
            // Subroutine: locals[4] = return address; counter += 10.
            m.bind(sub);
            m.astore(4);
            m.iinc(1, 10);
            m.ret(4);
            m.bind(done);
        });
        assert_eq!(out, "20\n");
    }

    #[test]
    fn negative_array_size_and_null_checks() {
        // Runtime exception arms not covered elsewhere.
        let mut b = ClassBuilder::new("Ops", "java/lang/Object");
        let mut m =
            MethodBuilder::new(ACC_PUBLIC | ACC_STATIC, "main", "([Ljava/lang/String;)V", 3);
        // new int[-1] caught:
        let s1 = m.new_label();
        let e1 = m.new_label();
        let h1 = m.new_label();
        let next = m.new_label();
        m.bind(s1);
        m.ldc_int(-1);
        m.newarray(10);
        m.pop();
        m.bind(e1);
        m.goto_(next);
        m.bind(h1);
        m.pop();
        m.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
        m.ldc_string("negsize");
        m.invokevirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V");
        m.bind(next);
        // null.length caught:
        let s2 = m.new_label();
        let e2 = m.new_label();
        let h2 = m.new_label();
        let done = m.new_label();
        m.bind(s2);
        m.aconst_null();
        m.checkcast("[I");
        m.arraylength();
        m.pop();
        m.bind(e2);
        m.goto_(done);
        m.bind(h2);
        m.pop();
        m.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
        m.ldc_string("npe");
        m.invokevirtual("java/io/PrintStream", "println", "(Ljava/lang/String;)V");
        m.bind(done);
        m.return_void();
        m.add_exception_handler(s1, e1, h1, Some("java/lang/NegativeArraySizeException"));
        m.add_exception_handler(s2, e2, h2, Some("java/lang/NullPointerException"));
        b.add_method(m);

        let engine = Engine::new(Browser::Chrome);
        let fs = FileSystem::new(&engine, backends::in_memory(&engine));
        fsutil::mount_classes(&engine, &fs, "/classes", &[b.finish()]);
        let jvm = Jvm::new(&engine, fs);
        jvm.launch("Ops", &[]);
        let r = jvm.run_to_completion().unwrap();
        assert_eq!(r.stdout, "negsize\nnpe\n");
    }

    #[test]
    fn multianewarray_builds_nested_arrays() {
        let out = run_main(|m| {
            // int[3][4] -> set [2][3] = 42, read it back; length checks.
            m.ldc_int(3);
            m.ldc_int(4);
            m.multianewarray("[[I", 2);
            m.astore(1);
            m.aload(1);
            m.ldc_int(2);
            m.simple(op::AALOAD);
            m.ldc_int(3);
            m.ldc_int(42);
            m.simple(op::IASTORE);
            m.aload(1);
            m.ldc_int(2);
            m.simple(op::AALOAD);
            m.ldc_int(3);
            m.simple(op::IALOAD);
            println_top_int(m);
            m.aload(1);
            m.arraylength();
            println_top_int(m);
            m.aload(1);
            m.ldc_int(0);
            m.simple(op::AALOAD);
            m.arraylength();
            println_top_int(m);
        });
        assert_eq!(out, "42\n3\n4\n");
    }
}
