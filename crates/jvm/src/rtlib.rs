//! The bundled runtime class library.
//!
//! The original DoppioJVM runs the real OpenJDK Java Class Library,
//! downloading its class files on demand and implementing the native
//! methods in JavaScript (§6.3–6.4). The OpenJDK JCL is not available
//! here, so this module synthesizes the minimal library the paper's
//! workload categories require — real class files, assembled with the
//! classfile builder, whose `native` methods land in
//! [`crate::natives`]. Everything else (user code, the benchmark
//! programs) still loads through the Doppio file system exactly as
//! §6.4 describes.

use doppio_classfile::access::{
    ACC_ABSTRACT, ACC_INTERFACE, ACC_NATIVE, ACC_PUBLIC, ACC_STATIC, ACC_SUPER,
};
use doppio_classfile::builder::{ClassBuilder, MethodBuilder};
use doppio_classfile::ClassFile;

const NATIVE: u16 = ACC_PUBLIC | ACC_NATIVE;
const NATIVE_STATIC: u16 = ACC_PUBLIC | ACC_NATIVE | ACC_STATIC;

fn native(b: &mut ClassBuilder, flags: u16, name: &str, desc: &str) {
    b.add_method(MethodBuilder::new(flags, name, desc, 0));
}

fn default_ctor(b: &mut ClassBuilder, super_name: &str) {
    let mut m = MethodBuilder::new(ACC_PUBLIC, "<init>", "()V", 1);
    m.aload(0);
    m.invokespecial(super_name, "<init>", "()V");
    m.return_void();
    b.add_method(m);
}

fn object() -> ClassFile {
    let mut b = ClassBuilder::new("java/lang/Object", "java/lang/Object");
    b.set_access(ACC_PUBLIC | ACC_SUPER);
    let mut init = MethodBuilder::new(ACC_PUBLIC, "<init>", "()V", 1);
    init.return_void();
    b.add_method(init);
    native(&mut b, NATIVE, "hashCode", "()I");
    native(&mut b, NATIVE, "getClass", "()Ljava/lang/Class;");
    native(&mut b, NATIVE, "toString", "()Ljava/lang/String;");
    native(&mut b, NATIVE, "wait", "()V");
    native(&mut b, NATIVE, "notify", "()V");
    native(&mut b, NATIVE, "notifyAll", "()V");
    // equals: reference identity, in bytecode.
    let mut eq = MethodBuilder::new(ACC_PUBLIC, "equals", "(Ljava/lang/Object;)Z", 2);
    let ne = eq.new_label();
    eq.aload(0);
    eq.aload(1);
    eq.branch(doppio_classfile::opcodes::IF_ACMPNE, ne);
    eq.ldc_int(1);
    eq.ireturn();
    eq.bind(ne);
    eq.ldc_int(0);
    eq.ireturn();
    b.add_method(eq);
    let mut cf = b.finish();
    cf.super_class = 0; // Object has no superclass
    cf
}

fn class_class() -> ClassFile {
    let mut b = ClassBuilder::new("java/lang/Class", "java/lang/Object");
    b.add_field(ACC_PUBLIC, "name", "Ljava/lang/String;");
    native(&mut b, NATIVE, "getName", "()Ljava/lang/String;");
    b.finish()
}

fn string() -> ClassFile {
    let mut b = ClassBuilder::new("java/lang/String", "java/lang/Object");
    for (name, desc) in [
        ("<init>", "()V"),
        ("<init>", "([B)V"),
        ("<init>", "([C)V"),
        ("length", "()I"),
        ("charAt", "(I)C"),
        ("equals", "(Ljava/lang/Object;)Z"),
        ("hashCode", "()I"),
        ("compareTo", "(Ljava/lang/String;)I"),
        ("concat", "(Ljava/lang/String;)Ljava/lang/String;"),
        ("substring", "(II)Ljava/lang/String;"),
        ("substring", "(I)Ljava/lang/String;"),
        ("indexOf", "(I)I"),
        ("indexOf", "(Ljava/lang/String;)I"),
        ("startsWith", "(Ljava/lang/String;)Z"),
        ("toCharArray", "()[C"),
        ("getBytes", "()[B"),
        ("intern", "()Ljava/lang/String;"),
    ] {
        native(&mut b, NATIVE, name, desc);
    }
    for desc in [
        "(I)Ljava/lang/String;",
        "(J)Ljava/lang/String;",
        "(D)Ljava/lang/String;",
        "(C)Ljava/lang/String;",
        "(Z)Ljava/lang/String;",
    ] {
        native(&mut b, NATIVE_STATIC, "valueOf", desc);
    }
    // toString is the identity.
    let mut ts = MethodBuilder::new(ACC_PUBLIC, "toString", "()Ljava/lang/String;", 1);
    ts.aload(0);
    ts.areturn();
    b.add_method(ts);
    b.finish()
}

fn string_builder() -> ClassFile {
    let mut b = ClassBuilder::new("java/lang/StringBuilder", "java/lang/Object");
    for (name, desc) in [
        ("<init>", "()V"),
        ("append", "(Ljava/lang/String;)Ljava/lang/StringBuilder;"),
        ("append", "(I)Ljava/lang/StringBuilder;"),
        ("append", "(J)Ljava/lang/StringBuilder;"),
        ("append", "(C)Ljava/lang/StringBuilder;"),
        ("append", "(Z)Ljava/lang/StringBuilder;"),
        ("append", "(D)Ljava/lang/StringBuilder;"),
        ("toString", "()Ljava/lang/String;"),
        ("length", "()I"),
    ] {
        native(&mut b, NATIVE, name, desc);
    }
    // append(Object) goes through toString, with a null check.
    let mut m = MethodBuilder::new(
        ACC_PUBLIC,
        "append",
        "(Ljava/lang/Object;)Ljava/lang/StringBuilder;",
        2,
    );
    let nonnull = m.new_label();
    let go = m.new_label();
    m.aload(1);
    m.branch(doppio_classfile::opcodes::IFNONNULL, nonnull);
    m.ldc_string("null");
    m.astore(1);
    m.goto_(go);
    m.bind(nonnull);
    m.aload(1);
    m.invokevirtual("java/lang/Object", "toString", "()Ljava/lang/String;");
    m.astore(1);
    m.bind(go);
    m.aload(0);
    m.aload(1);
    m.checkcast("java/lang/String");
    m.invokevirtual(
        "java/lang/StringBuilder",
        "append",
        "(Ljava/lang/String;)Ljava/lang/StringBuilder;",
    );
    m.areturn();
    b.add_method(m);
    b.finish()
}

fn throwable() -> ClassFile {
    let mut b = ClassBuilder::new("java/lang/Throwable", "java/lang/Object");
    b.add_field(ACC_PUBLIC, "message", "Ljava/lang/String;");
    b.add_field(ACC_PUBLIC, "stackTrace", "Ljava/lang/String;");
    let mut init0 = MethodBuilder::new(ACC_PUBLIC, "<init>", "()V", 1);
    init0.aload(0);
    init0.invokespecial("java/lang/Object", "<init>", "()V");
    init0.aload(0);
    init0.invokevirtual(
        "java/lang/Throwable",
        "fillInStackTrace",
        "()Ljava/lang/Throwable;",
    );
    init0.pop();
    init0.return_void();
    b.add_method(init0);
    let mut init1 = MethodBuilder::new(ACC_PUBLIC, "<init>", "(Ljava/lang/String;)V", 2);
    init1.aload(0);
    init1.invokespecial("java/lang/Object", "<init>", "()V");
    init1.aload(0);
    init1.aload(1);
    init1.putfield("java/lang/Throwable", "message", "Ljava/lang/String;");
    init1.aload(0);
    init1.invokevirtual(
        "java/lang/Throwable",
        "fillInStackTrace",
        "()Ljava/lang/Throwable;",
    );
    init1.pop();
    init1.return_void();
    b.add_method(init1);
    native(&mut b, NATIVE, "getMessage", "()Ljava/lang/String;");
    native(
        &mut b,
        NATIVE,
        "fillInStackTrace",
        "()Ljava/lang/Throwable;",
    );
    native(&mut b, NATIVE, "printStackTrace", "()V");
    b.finish()
}

/// A trivial throwable subclass with the two standard constructors.
fn throwable_subclass(name: &str, super_name: &str) -> ClassFile {
    let mut b = ClassBuilder::new(name, super_name);
    default_ctor(&mut b, super_name);
    let mut init1 = MethodBuilder::new(ACC_PUBLIC, "<init>", "(Ljava/lang/String;)V", 2);
    init1.aload(0);
    init1.aload(1);
    init1.invokespecial(super_name, "<init>", "(Ljava/lang/String;)V");
    init1.return_void();
    b.add_method(init1);
    b.finish()
}

fn print_stream() -> ClassFile {
    let mut b = ClassBuilder::new("java/io/PrintStream", "java/lang/Object");
    b.add_field(ACC_PUBLIC, "fd", "I");
    let mut init = MethodBuilder::new(ACC_PUBLIC, "<init>", "(I)V", 2);
    init.aload(0);
    init.invokespecial("java/lang/Object", "<init>", "()V");
    init.aload(0);
    init.iload(1);
    init.putfield("java/io/PrintStream", "fd", "I");
    init.return_void();
    b.add_method(init);
    for base in ["print", "println"] {
        for desc in [
            "(Ljava/lang/String;)V",
            "(I)V",
            "(J)V",
            "(C)V",
            "(Z)V",
            "(D)V",
            "(F)V",
        ] {
            native(&mut b, NATIVE, base, desc);
        }
    }
    native(&mut b, NATIVE, "println", "()V");
    // print(Object)/println(Object) via toString.
    for (name, newline) in [("print", false), ("println", true)] {
        let mut m = MethodBuilder::new(ACC_PUBLIC, name, "(Ljava/lang/Object;)V", 2);
        let nonnull = m.new_label();
        let go = m.new_label();
        m.aload(1);
        m.branch(doppio_classfile::opcodes::IFNONNULL, nonnull);
        m.ldc_string("null");
        m.astore(1);
        m.goto_(go);
        m.bind(nonnull);
        m.aload(1);
        m.invokevirtual("java/lang/Object", "toString", "()Ljava/lang/String;");
        m.astore(1);
        m.bind(go);
        m.aload(0);
        m.aload(1);
        m.checkcast("java/lang/String");
        m.invokevirtual(
            "java/io/PrintStream",
            if newline { "println" } else { "print" },
            "(Ljava/lang/String;)V",
        );
        m.return_void();
        b.add_method(m);
    }
    b.finish()
}

fn system() -> ClassFile {
    let mut b = ClassBuilder::new("java/lang/System", "java/lang/Object");
    b.add_field(ACC_PUBLIC | ACC_STATIC, "out", "Ljava/io/PrintStream;");
    b.add_field(ACC_PUBLIC | ACC_STATIC, "err", "Ljava/io/PrintStream;");
    let mut clinit = MethodBuilder::new(ACC_STATIC, "<clinit>", "()V", 0);
    for (field, fd) in [("out", 1), ("err", 2)] {
        clinit.new_object("java/io/PrintStream");
        clinit.dup();
        clinit.ldc_int(fd);
        clinit.invokespecial("java/io/PrintStream", "<init>", "(I)V");
        clinit.putstatic("java/lang/System", field, "Ljava/io/PrintStream;");
    }
    clinit.return_void();
    b.add_method(clinit);
    native(&mut b, NATIVE_STATIC, "currentTimeMillis", "()J");
    native(&mut b, NATIVE_STATIC, "nanoTime", "()J");
    native(&mut b, NATIVE_STATIC, "exit", "(I)V");
    native(
        &mut b,
        NATIVE_STATIC,
        "identityHashCode",
        "(Ljava/lang/Object;)I",
    );
    native(
        &mut b,
        NATIVE_STATIC,
        "arraycopy",
        "(Ljava/lang/Object;ILjava/lang/Object;II)V",
    );
    b.finish()
}

fn math() -> ClassFile {
    let mut b = ClassBuilder::new("java/lang/Math", "java/lang/Object");
    for (name, desc) in [
        ("sqrt", "(D)D"),
        ("floor", "(D)D"),
        ("ceil", "(D)D"),
        ("pow", "(DD)D"),
        ("log", "(D)D"),
        ("sin", "(D)D"),
        ("cos", "(D)D"),
        ("abs", "(D)D"),
        ("abs", "(I)I"),
        ("abs", "(J)J"),
        ("max", "(II)I"),
        ("min", "(II)I"),
        ("max", "(JJ)J"),
        ("min", "(JJ)J"),
        ("max", "(DD)D"),
        ("min", "(DD)D"),
        ("random", "()D"),
    ] {
        native(&mut b, NATIVE_STATIC, name, desc);
    }
    b.finish()
}

fn boxed_helpers() -> Vec<ClassFile> {
    let mut out = Vec::new();
    let mut b = ClassBuilder::new("java/lang/Integer", "java/lang/Object");
    native(&mut b, NATIVE_STATIC, "parseInt", "(Ljava/lang/String;)I");
    native(&mut b, NATIVE_STATIC, "toString", "(I)Ljava/lang/String;");
    native(
        &mut b,
        NATIVE_STATIC,
        "toHexString",
        "(I)Ljava/lang/String;",
    );
    out.push(b.finish());
    let mut b = ClassBuilder::new("java/lang/Long", "java/lang/Object");
    native(&mut b, NATIVE_STATIC, "parseLong", "(Ljava/lang/String;)J");
    native(&mut b, NATIVE_STATIC, "toString", "(J)Ljava/lang/String;");
    out.push(b.finish());
    let mut b = ClassBuilder::new("java/lang/Double", "java/lang/Object");
    native(
        &mut b,
        NATIVE_STATIC,
        "parseDouble",
        "(Ljava/lang/String;)D",
    );
    native(&mut b, NATIVE_STATIC, "toString", "(D)Ljava/lang/String;");
    out.push(b.finish());
    out
}

fn runnable() -> ClassFile {
    let mut b = ClassBuilder::new("java/lang/Runnable", "java/lang/Object");
    b.set_access(ACC_PUBLIC | ACC_INTERFACE | ACC_ABSTRACT);
    b.add_method(MethodBuilder::new(
        ACC_PUBLIC | ACC_ABSTRACT,
        "run",
        "()V",
        0,
    ));
    b.finish()
}

fn thread_class() -> ClassFile {
    let mut b = ClassBuilder::new("java/lang/Thread", "java/lang/Object");
    b.add_interface("java/lang/Runnable");
    default_ctor(&mut b, "java/lang/Object");
    // Default run() does nothing; subclasses override.
    let mut run = MethodBuilder::new(ACC_PUBLIC, "run", "()V", 1);
    run.return_void();
    b.add_method(run);
    native(&mut b, NATIVE, "start", "()V");
    native(&mut b, NATIVE, "join", "()V");
    native(&mut b, NATIVE, "isAlive", "()Z");
    native(&mut b, NATIVE_STATIC, "yield", "()V");
    native(&mut b, NATIVE_STATIC, "sleep", "(J)V");
    native(
        &mut b,
        NATIVE_STATIC,
        "currentThread",
        "()Ljava/lang/Thread;",
    );
    b.finish()
}

fn unsafe_class() -> ClassFile {
    let mut b = ClassBuilder::new("sun/misc/Unsafe", "java/lang/Object");
    default_ctor(&mut b, "java/lang/Object");
    native(&mut b, NATIVE_STATIC, "getUnsafe", "()Lsun/misc/Unsafe;");
    for (name, desc) in [
        ("allocateMemory", "(J)J"),
        ("freeMemory", "(J)V"),
        ("reallocateMemory", "(JJ)J"),
        ("putInt", "(JI)V"),
        ("getInt", "(J)I"),
        ("putLong", "(JJ)V"),
        ("getLong", "(J)J"),
        ("putByte", "(JB)V"),
        ("getByte", "(J)B"),
        ("putDouble", "(JD)V"),
        ("getDouble", "(J)D"),
        ("addressSize", "()I"),
        ("pageSize", "()I"),
        ("isLittleEndian", "()Z"),
    ] {
        native(&mut b, NATIVE, name, desc);
    }
    b.finish()
}

fn doppio_runtime_classes() -> Vec<ClassFile> {
    let mut out = Vec::new();
    let mut b = ClassBuilder::new("doppio/runtime/FileSystem", "java/lang/Object");
    for (name, desc) in [
        ("readFileBytes", "(Ljava/lang/String;)[B"),
        ("writeFileBytes", "(Ljava/lang/String;[B)V"),
        ("listDir", "(Ljava/lang/String;)[Ljava/lang/String;"),
        ("exists", "(Ljava/lang/String;)Z"),
        ("fileSize", "(Ljava/lang/String;)I"),
        ("mkdir", "(Ljava/lang/String;)V"),
        ("unlink", "(Ljava/lang/String;)V"),
    ] {
        native(&mut b, NATIVE_STATIC, name, desc);
    }
    out.push(b.finish());

    let mut b = ClassBuilder::new("doppio/runtime/Console", "java/lang/Object");
    native(&mut b, NATIVE_STATIC, "readLine", "()Ljava/lang/String;");
    native(&mut b, NATIVE_STATIC, "readByte", "()I");
    out.push(b.finish());

    let mut b = ClassBuilder::new("doppio/runtime/JS", "java/lang/Object");
    native(
        &mut b,
        NATIVE_STATIC,
        "eval",
        "(Ljava/lang/String;)Ljava/lang/String;",
    );
    out.push(b.finish());

    let mut b = ClassBuilder::new("doppio/net/Socket", "java/lang/Object");
    for (name, desc) in [
        ("connect", "(Ljava/lang/String;I)I"),
        ("write", "(I[B)V"),
        ("available", "(I)I"),
        ("read", "(II)[B"),
        ("close", "(I)V"),
    ] {
        native(&mut b, NATIVE_STATIC, name, desc);
    }
    out.push(b.finish());
    out
}

/// The full runtime library, in definition (dependency) order.
pub fn runtime_classes() -> Vec<ClassFile> {
    let mut out = vec![
        object(),
        class_class(),
        string(),
        string_builder(),
        throwable(),
    ];
    // Exception hierarchy.
    out.push(throwable_subclass(
        "java/lang/Exception",
        "java/lang/Throwable",
    ));
    out.push(throwable_subclass("java/lang/Error", "java/lang/Throwable"));
    out.push(throwable_subclass(
        "java/lang/RuntimeException",
        "java/lang/Exception",
    ));
    for name in [
        "java/lang/NullPointerException",
        "java/lang/ArithmeticException",
        "java/lang/ClassCastException",
        "java/lang/NegativeArraySizeException",
        "java/lang/ArrayStoreException",
        "java/lang/IllegalMonitorStateException",
        "java/lang/IllegalArgumentException",
        "java/lang/IllegalStateException",
        "java/lang/NumberFormatException",
        "java/lang/IndexOutOfBoundsException",
        "java/lang/UnsupportedOperationException",
    ] {
        out.push(throwable_subclass(name, "java/lang/RuntimeException"));
    }
    out.push(throwable_subclass(
        "java/lang/ArrayIndexOutOfBoundsException",
        "java/lang/IndexOutOfBoundsException",
    ));
    out.push(throwable_subclass(
        "java/lang/StringIndexOutOfBoundsException",
        "java/lang/IndexOutOfBoundsException",
    ));
    for name in [
        "java/lang/InternalError",
        "java/lang/OutOfMemoryError",
        "java/lang/StackOverflowError",
        "java/lang/NoClassDefFoundError",
        "java/lang/NoSuchMethodError",
        "java/lang/NoSuchFieldError",
        "java/lang/AbstractMethodError",
        "java/lang/UnsatisfiedLinkError",
    ] {
        out.push(throwable_subclass(name, "java/lang/Error"));
    }
    out.push(throwable_subclass(
        "java/io/IOException",
        "java/lang/Exception",
    ));
    out.push(throwable_subclass(
        "java/lang/InterruptedException",
        "java/lang/Exception",
    ));
    // Services.
    out.push(print_stream());
    out.push(system());
    out.push(math());
    out.extend(boxed_helpers());
    out.push(runnable());
    out.push(thread_class());
    out.push(unsafe_class());
    out.extend(doppio_runtime_classes());
    out
}

/// Runtime library as `(binary name, class file bytes)` pairs, for
/// mounting on a file system.
pub fn runtime_class_bytes() -> Vec<(String, Vec<u8>)> {
    runtime_classes()
        .into_iter()
        .map(|cf| {
            let name = cf.name().expect("rt class name").to_string();
            (name, cf.to_bytes())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_classes_parse_back() {
        for (name, bytes) in runtime_class_bytes() {
            let cf = doppio_classfile::parse(&bytes).expect(&name);
            assert_eq!(cf.name().unwrap(), name);
        }
    }

    #[test]
    fn dependency_order_is_definable() {
        use crate::class::ClassRegistry;
        let mut reg = ClassRegistry::new();
        for mut cf in runtime_classes() {
            if cf.name().unwrap() == "java/lang/Object" {
                cf.super_class = 0;
            }
            reg.define(cf).unwrap();
        }
        assert!(reg.lookup("java/lang/NullPointerException").is_some());
        assert!(reg.lookup("doppio/net/Socket").is_some());
    }
}
