//! The JVM object heap.
//!
//! §6.7: "DoppioJVM maps JVM objects to JavaScript objects, where each
//! object contains a reference to its class and a dictionary that
//! contains all of its fields keyed on their names. JVM arrays are ...
//! mapped to a JavaScript object that contains an array of values."
//! We reproduce exactly that layout — instances carry a *dictionary*
//! of fields (charged as map operations on browser profiles), arrays a
//! typed vector. The original leans on the JavaScript garbage
//! collector; our arena correspondingly never frees (object lifetimes
//! in the benchmarks are run-scoped).

use std::collections::HashMap;

use crate::class::ClassId;
use crate::value::{ObjRef, Value};

/// An object on the JVM heap.
#[derive(Debug, Clone)]
pub enum HeapObj {
    /// A class instance: class reference + field dictionary (§6.7).
    Instance {
        /// The instance's class.
        class: ClassId,
        /// Fields keyed `"DeclaringClass.fieldName"`.
        fields: HashMap<String, Value>,
    },
    /// `java/lang/String`: the character data lives Rust-side, as the
    /// original keeps it in a JavaScript string.
    JavaString(String),
    /// `java/lang/StringBuilder` backing store.
    StringBuilder(String),
    /// `int[]`.
    ArrayInt(Vec<i32>),
    /// `long[]`.
    ArrayLong(Vec<i64>),
    /// `float[]`.
    ArrayFloat(Vec<f32>),
    /// `double[]`.
    ArrayDouble(Vec<f64>),
    /// `byte[]` / `boolean[]`.
    ArrayByte(Vec<i8>),
    /// `char[]`.
    ArrayChar(Vec<u16>),
    /// `short[]`.
    ArrayShort(Vec<i16>),
    /// Reference array, tagged with its component class name
    /// (e.g. `"java/lang/String"` or `"[I"`).
    ArrayRef {
        /// Component type name.
        component: String,
        /// Elements.
        data: Vec<Option<ObjRef>>,
    },
}

impl HeapObj {
    /// Array length, if this is an array.
    pub fn array_len(&self) -> Option<usize> {
        Some(match self {
            HeapObj::ArrayInt(v) => v.len(),
            HeapObj::ArrayLong(v) => v.len(),
            HeapObj::ArrayFloat(v) => v.len(),
            HeapObj::ArrayDouble(v) => v.len(),
            HeapObj::ArrayByte(v) => v.len(),
            HeapObj::ArrayChar(v) => v.len(),
            HeapObj::ArrayShort(v) => v.len(),
            HeapObj::ArrayRef { data, .. } => data.len(),
            _ => return None,
        })
    }

    /// The array-class name for this object, if it is an array
    /// (e.g. `"[I"`, `"[Ljava/lang/String;"`).
    pub fn array_class_name(&self) -> Option<String> {
        Some(match self {
            HeapObj::ArrayInt(_) => "[I".to_string(),
            HeapObj::ArrayLong(_) => "[J".to_string(),
            HeapObj::ArrayFloat(_) => "[F".to_string(),
            HeapObj::ArrayDouble(_) => "[D".to_string(),
            HeapObj::ArrayByte(_) => "[B".to_string(),
            HeapObj::ArrayChar(_) => "[C".to_string(),
            HeapObj::ArrayShort(_) => "[S".to_string(),
            HeapObj::ArrayRef { component, .. } => {
                if component.starts_with('[') {
                    format!("[{component}")
                } else {
                    format!("[L{component};")
                }
            }
            _ => return None,
        })
    }
}

/// The object arena.
#[derive(Debug, Default)]
pub struct Heap {
    objects: Vec<HeapObj>,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocate an object, returning its reference.
    pub fn alloc(&mut self, obj: HeapObj) -> ObjRef {
        self.objects.push(obj);
        self.objects.len() - 1
    }

    /// Read an object.
    pub fn get(&self, r: ObjRef) -> &HeapObj {
        &self.objects[r]
    }

    /// Mutate an object.
    pub fn get_mut(&mut self, r: ObjRef) -> &mut HeapObj {
        &mut self.objects[r]
    }

    /// Number of live objects (allocation count; the arena never
    /// frees — the original delegates collection to the JS GC).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Allocate a primitive array by JVMS `newarray` atype code.
    pub fn alloc_primitive_array(&mut self, atype: u8, len: usize) -> Option<ObjRef> {
        let obj = match atype {
            4 | 8 => HeapObj::ArrayByte(vec![0; len]), // boolean[] stored as byte[]
            5 => HeapObj::ArrayChar(vec![0; len]),
            6 => HeapObj::ArrayFloat(vec![0.0; len]),
            7 => HeapObj::ArrayDouble(vec![0.0; len]),
            9 => HeapObj::ArrayShort(vec![0; len]),
            10 => HeapObj::ArrayInt(vec![0; len]),
            11 => HeapObj::ArrayLong(vec![0; len]),
            _ => return None,
        };
        Some(self.alloc(obj))
    }

    /// Read the Rust string out of a `JavaString`.
    pub fn java_string(&self, r: ObjRef) -> Option<&str> {
        match self.get(r) {
            HeapObj::JavaString(s) => Some(s),
            _ => None,
        }
    }

    /// Allocate a `java/lang/String`.
    pub fn alloc_string(&mut self, s: impl Into<String>) -> ObjRef {
        self.alloc(HeapObj::JavaString(s.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new();
        let a = h.alloc(HeapObj::ArrayInt(vec![1, 2, 3]));
        let s = h.alloc_string("hi");
        assert_eq!(h.get(a).array_len(), Some(3));
        assert_eq!(h.java_string(s), Some("hi"));
        assert_eq!(h.len(), 2);
        if let HeapObj::ArrayInt(v) = h.get_mut(a) {
            v[0] = 9;
        }
        assert!(matches!(h.get(a), HeapObj::ArrayInt(v) if v[0] == 9));
    }

    #[test]
    fn primitive_array_atypes() {
        let mut h = Heap::new();
        for (atype, expect_len) in [
            (4u8, 5usize),
            (5, 5),
            (6, 5),
            (7, 5),
            (8, 5),
            (9, 5),
            (10, 5),
            (11, 5),
        ] {
            let r = h.alloc_primitive_array(atype, expect_len).unwrap();
            assert_eq!(h.get(r).array_len(), Some(expect_len));
        }
        assert!(h.alloc_primitive_array(99, 1).is_none());
    }

    #[test]
    fn array_class_names() {
        let mut h = Heap::new();
        let i = h.alloc(HeapObj::ArrayInt(vec![]));
        assert_eq!(h.get(i).array_class_name().unwrap(), "[I");
        let s = h.alloc(HeapObj::ArrayRef {
            component: "java/lang/String".into(),
            data: vec![],
        });
        assert_eq!(h.get(s).array_class_name().unwrap(), "[Ljava/lang/String;");
        let nested = h.alloc(HeapObj::ArrayRef {
            component: "[I".into(),
            data: vec![],
        });
        assert_eq!(h.get(nested).array_class_name().unwrap(), "[[I");
    }
}
