//! JVM threads as Doppio guest threads (§4.3, §6.2).
//!
//! Each JVM thread owns its explicit frame stack and plugs into the
//! Doppio runtime's thread pool. "DoppioJVM checks for waiting threads
//! at fixed context switch points" — monitor operations and the §6.1
//! suspend checks at method call boundaries — so multithreading is
//! cooperative in JavaScript but preemptive in JVM semantics.

use std::cell::RefCell;
use std::rc::Rc;

use doppio_core::{AsyncCell, GuestThread, Resource, ThreadContext, ThreadStep};
use doppio_trace::{cat, ArgValue};

use crate::frame::Frame;
use crate::interp::{self, StepResult};
use crate::loader::{self, AfterFetch};
use crate::natives::{self, NativeCtx, NativeOutcome, PendingNative};
use crate::object::HeapObj;
use crate::state::JvmState;
use crate::tiered;
use crate::value::{ObjRef, Value};

enum Pending {
    Native(PendingNative),
    ClassLoad {
        want: String,
        fetching: String,
        cell: AsyncCell<Result<Vec<u8>, String>>,
    },
}

/// One JVM thread hosted on the Doppio runtime.
pub struct JvmThread {
    state: Rc<RefCell<JvmState>>,
    frames: Vec<Frame>,
    pending: Option<Pending>,
    name: String,
    /// Uncaught exception, readable after the thread finishes.
    pub uncaught: Rc<RefCell<Option<ObjRef>>>,
}

impl JvmThread {
    /// A thread that will execute the given initial frame.
    pub fn new(state: Rc<RefCell<JvmState>>, name: impl Into<String>, frame: Frame) -> JvmThread {
        JvmThread {
            state,
            frames: vec![frame],
            pending: None,
            name: name.into(),
            uncaught: Rc::new(RefCell::new(None)),
        }
    }

    fn finish(&self, state: &mut JvmState, ctx: &mut ThreadContext<'_>) {
        let id = ctx.thread_id().0;
        state.finished_threads.insert(id);
        state.live_threads = state.live_threads.saturating_sub(1);
        if let Some(waiters) = state.join_waiters.remove(&id) {
            for w in waiters {
                ctx.wake(w);
            }
        }
    }
}

impl GuestThread for JvmThread {
    fn run(&mut self, ctx: &mut ThreadContext<'_>) -> ThreadStep {
        let tid = ctx.thread_id();
        let state_rc = self.state.clone();
        let mut state = state_rc.borrow_mut();
        let hosted = state.engine.profile().watchdog_limit_ns.is_some();

        // Resume whatever we were blocked on.
        if let Some(pending) = self.pending.take() {
            match pending {
                Pending::Native(mut poll) => {
                    let outcome = poll(&mut NativeCtx {
                        state: &mut state,
                        frames: &mut self.frames,
                        ctx,
                        tid,
                    });
                    match outcome {
                        None => {
                            self.pending = Some(Pending::Native(poll));
                            return ThreadStep::Blocked;
                        }
                        Some(o) => {
                            let sr =
                                natives::apply_outcome(&mut state, &mut self.frames, ctx, tid, o);
                            match self.after_step(sr, &mut state, ctx) {
                                ControlFlow::Go => {}
                                ControlFlow::Out(step) => return step,
                            }
                        }
                    }
                }
                Pending::ClassLoad {
                    want,
                    fetching,
                    cell,
                } => match cell.take() {
                    None => {
                        ctx.note_block(
                            Resource::Async(format!("classload({fetching})")),
                            interp::current_site(&state, &self.frames),
                        );
                        self.pending = Some(Pending::ClassLoad {
                            want,
                            fetching,
                            cell,
                        });
                        return ThreadStep::Blocked;
                    }
                    Some(result) => match loader::after_fetch(&mut state, &fetching, result) {
                        AfterFetch::Fail(e) => {
                            let sr = interp::throw_vm(
                                &mut state,
                                &mut self.frames,
                                ctx,
                                tid,
                                "java/lang/NoClassDefFoundError",
                                &e,
                            );
                            match self.after_step(sr, &mut state, ctx) {
                                ControlFlow::Go => {}
                                ControlFlow::Out(step) => return step,
                            }
                        }
                        AfterFetch::Fetch(dep) => {
                            let cell = loader::start_fetch(&mut state, ctx, &dep);
                            self.pending = Some(Pending::ClassLoad {
                                want,
                                fetching: dep,
                                cell,
                            });
                            return ThreadStep::Blocked;
                        }
                        AfterFetch::Ready => {
                            if state.registry.lookup(&want).is_none() {
                                let cell = loader::start_fetch(&mut state, ctx, &want);
                                self.pending = Some(Pending::ClassLoad {
                                    fetching: want.clone(),
                                    want,
                                    cell,
                                });
                                return ThreadStep::Blocked;
                            }
                            // Defined: the instruction retries below.
                        }
                    },
                },
            }
        }

        // The interpreter loop: run until something yields control.
        // `interp::run` picks the execution tier per entry — the
        // direct-threaded tier for hot methods, the switch
        // interpreter otherwise — and only surfaces non-Continue
        // results.
        loop {
            let sr = interp::run(&mut state, &mut self.frames, ctx, tid);
            match sr {
                StepResult::Continue => {}
                StepResult::CallBoundary => {
                    // §6.1: suspend checks at method call boundaries.
                    if hosted && ctx.should_suspend() {
                        profiler_sample(&state, &self.frames, &self.name);
                        trace_method_sample(&state, &self.frames, ctx);
                        return ThreadStep::Yielded;
                    }
                }
                other => match self.after_step(other, &mut state, ctx) {
                    ControlFlow::Go => {}
                    ControlFlow::Out(step) => return step,
                },
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Virtual-clock sampling profiler hook: when a suspend check fires at
/// a call boundary and the profiler's deadline has passed, fold the
/// whole explicit frame stack — rooted at the engine event that hosts
/// the slice and this thread's name — into the profile. Suspend checks
/// fire roughly once per time slice, so sampling here costs nothing on
/// the interpreter fast path.
fn profiler_sample(state: &JvmState, frames: &[Frame], thread_name: &str) {
    let Some(profiler) = state.engine.profiler() else {
        return;
    };
    let now = state.engine.now_ns();
    if !profiler.due(now) {
        return;
    }
    // A sampler hit is strong evidence of heat: boost every method on
    // the sampled stack toward tier-up. Host-side only — the virtual
    // clock and the profile itself are unaffected.
    if state.tier_up {
        for f in frames {
            f.code
                .hotness
                .set(f.code.hotness.get().saturating_add(tiered::SAMPLE_BOOST));
        }
    }
    let mut stack = Vec::with_capacity(frames.len() + 2);
    stack.push(
        state
            .engine
            .current_event()
            .map(|k| k.name())
            .unwrap_or("run")
            .to_string(),
    );
    stack.push(thread_name.to_string());
    stack.extend(interp::stack_trace(state, frames));
    profiler.sample(now, stack);
}

/// Sampled method profiling: when a suspend check fires at a call
/// boundary, record the method the thread is executing. The adaptive
/// suspend timer fires roughly once per time slice, so this yields a
/// time-based sample with no extra fast-path bookkeeping (§6.1).
fn trace_method_sample(state: &JvmState, frames: &[Frame], ctx: &ThreadContext<'_>) {
    let tracer = state.engine.tracer();
    if !tracer.enabled() {
        return;
    }
    if let Some(frame) = frames.last() {
        // Tag the sample with the ambient causal context so a trace
        // viewer (or `CausalGraph`) can tie hot JVM methods back to
        // the request whose critical path they sit on.
        let mut args = vec![(
            "descriptor",
            ArgValue::Str(frame.code.descriptor.clone().into()),
        )];
        if let Some(c) = state.engine.causal().current() {
            args.push(("trace", ArgValue::U64(c.trace_id)));
            args.push(("span", ArgValue::U64(c.span_id)));
        }
        tracer.instant(
            cat::JVM,
            frame.code.name.clone(),
            state.engine.now_ns(),
            ctx.trace_lane(),
            args,
        );
    }
}

enum ControlFlow {
    /// Keep interpreting.
    Go,
    /// Leave the slice with this step.
    Out(ThreadStep),
}

impl JvmThread {
    fn after_step(
        &mut self,
        sr: StepResult,
        state: &mut JvmState,
        ctx: &mut ThreadContext<'_>,
    ) -> ControlFlow {
        let tid = ctx.thread_id();
        match sr {
            StepResult::Continue => ControlFlow::Go,
            StepResult::CallBoundary => {
                let hosted = state.engine.profile().watchdog_limit_ns.is_some();
                if hosted && ctx.should_suspend() {
                    profiler_sample(state, &self.frames, &self.name);
                    trace_method_sample(state, &self.frames, ctx);
                    ControlFlow::Out(ThreadStep::Yielded)
                } else {
                    ControlFlow::Go
                }
            }
            StepResult::NeedClass(name) => {
                if let Some(reason) = state.loader.failed.get(&name).cloned() {
                    let sr2 = interp::throw_vm(
                        state,
                        &mut self.frames,
                        ctx,
                        tid,
                        "java/lang/NoClassDefFoundError",
                        &reason,
                    );
                    return self.after_step(sr2, state, ctx);
                }
                let cell = loader::start_fetch(state, ctx, &name);
                ctx.note_block(
                    Resource::Async(format!("classload({name})")),
                    interp::current_site(state, &self.frames),
                );
                self.pending = Some(Pending::ClassLoad {
                    want: name.clone(),
                    fetching: name,
                    cell,
                });
                ControlFlow::Out(ThreadStep::Blocked)
            }
            StepResult::NativeBlocked(p) => {
                self.pending = Some(Pending::Native(p));
                ControlFlow::Out(ThreadStep::Blocked)
            }
            StepResult::MonitorBlocked(obj) => {
                ctx.note_block(
                    Resource::Monitor(obj as u64),
                    interp::current_site(state, &self.frames),
                );
                ControlFlow::Out(ThreadStep::Blocked)
            }
            StepResult::VoluntaryYield => ControlFlow::Out(ThreadStep::Yielded),
            StepResult::Finished => {
                self.finish(state, ctx);
                ControlFlow::Out(ThreadStep::Finished)
            }
            StepResult::Uncaught(ex) => {
                *self.uncaught.borrow_mut() = Some(ex);
                let (cls, msg, trace) = natives::describe_throwable(state, ex);
                let mut text = format!("Exception in thread \"{}\" {cls}", self.name);
                if !msg.is_empty() {
                    text.push_str(&format!(": {msg}"));
                }
                if !trace.is_empty() {
                    text.push_str(&format!("\n\tat {trace}"));
                }
                text.push('\n');
                state.stderr.extend_from_slice(text.as_bytes());
                self.finish(state, ctx);
                ControlFlow::Out(ThreadStep::Finished)
            }
            StepResult::Exit(code) => {
                state.exit_code = Some(code);
                self.finish(state, ctx);
                ControlFlow::Out(ThreadStep::Finished)
            }
        }
    }
}

// ----------------------------------------------------------------
// Native helpers (Thread.start / currentThread / join)
// ----------------------------------------------------------------

/// `Thread.start()`: spawn a new JVM thread running the receiver's
/// `run()` method.
pub fn spawn_java_thread(n: &mut NativeCtx<'_, '_, '_>, thread_obj: ObjRef) -> NativeOutcome {
    let Some(weak) = n.state.self_rc.clone() else {
        return NativeOutcome::Throw {
            class: "java/lang/InternalError".into(),
            message: "no state handle for Thread.start".into(),
        };
    };
    let Some(state_rc) = weak.upgrade() else {
        return NativeOutcome::Throw {
            class: "java/lang/InternalError".into(),
            message: "state dropped".into(),
        };
    };
    let cid = match interp::runtime_class_of(n.state, thread_obj) {
        Ok(c) => c,
        Err(_) => {
            return NativeOutcome::Throw {
                class: "java/lang/InternalError".into(),
                message: "bad thread object".into(),
            }
        }
    };
    let Some(target) = n.state.registry.select_virtual(cid, "run", "()V") else {
        return NativeOutcome::Throw {
            class: "java/lang/NoSuchMethodError".into(),
            message: "run()V".into(),
        };
    };
    let Some(blob) = n.state.code_blob(target.class, target.index) else {
        return NativeOutcome::Throw {
            class: "java/lang/AbstractMethodError".into(),
            message: "run()V".into(),
        };
    };
    let mut frame = Frame::new(blob);
    frame.locals[0] = Value::Ref(Some(thread_obj));
    let name = format!("Thread-{}", n.state.thread_objs.len());
    let thread = JvmThread::new(state_rc, name.clone(), frame);
    let tid = n.ctx.spawn(name, Box::new(thread));
    n.state.thread_objs.insert(tid.0, thread_obj);
    n.state.thread_of_obj.insert(thread_obj, tid.0);
    n.state.live_threads += 1;
    NativeOutcome::Return(None)
}

/// The `java/lang/Thread` object for the calling thread (created
/// lazily for threads that were not started through `Thread.start`,
/// like main).
pub fn current_thread_object(n: &mut NativeCtx<'_, '_, '_>) -> ObjRef {
    let id = n.tid.0;
    if let Some(&r) = n.state.thread_objs.get(&id) {
        return r;
    }
    let r = match n.state.registry.lookup("java/lang/Thread") {
        Some(cid) => interp::alloc_instance(n.state, cid),
        None => n.state.heap.alloc(HeapObj::JavaString("main".into())),
    };
    n.state.thread_objs.insert(id, r);
    n.state.thread_of_obj.insert(r, id);
    r
}

/// Whether a thread object's thread has started and not yet finished.
pub fn is_alive(state: &JvmState, thread_obj: ObjRef) -> bool {
    match state.thread_of_obj.get(&thread_obj) {
        None => false,
        Some(id) => !state.finished_threads.contains(id),
    }
}

/// `Thread.join()`: block until the target thread finishes.
pub fn join_thread(n: &mut NativeCtx<'_, '_, '_>, thread_obj: ObjRef) -> NativeOutcome {
    let Some(&target) = n.state.thread_of_obj.get(&thread_obj) else {
        return NativeOutcome::Return(None); // never started
    };
    if n.state.finished_threads.contains(&target) {
        return NativeOutcome::Return(None);
    }
    enlist_join_waiter(n, target);
    NativeOutcome::Block(Box::new(move |n2| {
        if n2.state.finished_threads.contains(&target) {
            Some(NativeOutcome::Return(None))
        } else {
            // Spurious wake: stay enlisted (without duplicating the
            // entry — a duplicate would make `finish` wake us twice,
            // leaving a stale `wake_pending` that corrupts the next
            // unrelated block) and restore the wait-for edge.
            enlist_join_waiter(n2, target);
            None
        }
    }))
}

/// Register the calling thread as a join waiter (idempotent) and record
/// the `Join` wait-for edge.
fn enlist_join_waiter(n: &mut NativeCtx<'_, '_, '_>, target: usize) {
    let waiters = n.state.join_waiters.entry(target).or_default();
    if !waiters.contains(&n.tid) {
        waiters.push(n.tid);
    }
    let site = interp::current_site(n.state, n.frames);
    n.ctx.note_block(Resource::Join(target), site);
}
