//! JVM stack frames (§6.1).
//!
//! "DoppioJVM's stack frame is a JavaScript object that contains an
//! array for the operand stack, an array for the local variables, and
//! a reference to the method that the stack frame belongs to. The call
//! stack is simply an array of these stack frame objects." The frame
//! being plain data is what makes suspend-and-resume and exception
//! unwinding (§6.6) trivial — and, "a positive side effect", stack
//! introspection comes for free.

use std::rc::Rc;

use crate::state::CodeBlob;
use crate::value::{ObjRef, Value};

/// One stack frame.
#[derive(Debug)]
pub struct Frame {
    /// The method this frame executes.
    pub code: Rc<CodeBlob>,
    /// Program counter (bytecode offset).
    pub pc: usize,
    /// Local variable slots.
    pub locals: Vec<Value>,
    /// Operand stack slots.
    pub stack: Vec<Value>,
    /// Monitor held by this frame if the method is `synchronized`
    /// (released on return/unwind).
    pub held_monitor: Option<ObjRef>,
}

impl Frame {
    /// A frame for `code`, locals zero-initialized.
    pub fn new(code: Rc<CodeBlob>) -> Frame {
        let locals = vec![Value::Int(0); code.max_locals as usize];
        Frame {
            code,
            pc: 0,
            locals,
            stack: Vec::with_capacity(8),
            held_monitor: None,
        }
    }

    /// Push a value (wide values get their padding slot).
    #[inline]
    pub fn push(&mut self, v: Value) {
        let wide = v.is_wide();
        self.stack.push(v);
        if wide {
            self.stack.push(Value::Padding);
        }
    }

    /// Pop one *slot* (used by the untyped stack shuffles).
    #[inline]
    pub fn pop_slot(&mut self) -> Value {
        self.stack.pop().expect("operand stack underflow")
    }

    /// Pop a value: strips the padding slot of wide values.
    #[inline]
    pub fn pop(&mut self) -> Value {
        match self.stack.pop().expect("operand stack underflow") {
            Value::Padding => self.stack.pop().expect("wide value under padding"),
            v => v,
        }
    }

    /// Pop an `int`.
    #[inline]
    pub fn pop_int(&mut self) -> i32 {
        self.pop().as_int()
    }

    /// Pop a `long`.
    #[inline]
    pub fn pop_long(&mut self) -> i64 {
        self.pop().as_long()
    }

    /// Pop a `float`.
    #[inline]
    pub fn pop_float(&mut self) -> f32 {
        self.pop().as_float()
    }

    /// Pop a `double`.
    #[inline]
    pub fn pop_double(&mut self) -> f64 {
        self.pop().as_double()
    }

    /// Pop a reference.
    #[inline]
    pub fn pop_ref(&mut self) -> Option<ObjRef> {
        self.pop().as_ref()
    }

    /// Peek at the value `depth` slots from the top (0 = top slot).
    pub fn peek(&self, depth: usize) -> &Value {
        &self.stack[self.stack.len() - 1 - depth]
    }

    /// Read a local.
    #[inline]
    pub fn local(&self, idx: usize) -> Value {
        self.locals[idx]
    }

    /// Write a local (wide values fill the next slot with padding).
    #[inline]
    pub fn set_local(&mut self, idx: usize, v: Value) {
        let wide = v.is_wide();
        self.locals[idx] = v;
        if wide {
            self.locals[idx + 1] = Value::Padding;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::CodeBlob;

    fn blob() -> Rc<CodeBlob> {
        Rc::new(CodeBlob {
            class: 0,
            method_index: 0,
            name: "t".into(),
            descriptor: "()V".into(),
            bytecode: vec![],
            exceptions: vec![],
            max_locals: 6,
            synchronized: false,
            is_static: true,
            line_numbers: vec![],
            ics: std::cell::RefCell::new(std::collections::HashMap::new()),
            hotness: std::cell::Cell::new(0),
            tiered: std::cell::RefCell::new(None),
        })
    }

    #[test]
    fn wide_values_occupy_two_slots() {
        let mut f = Frame::new(blob());
        f.push(Value::Long(7));
        assert_eq!(f.stack.len(), 2);
        assert_eq!(f.pop_long(), 7);
        assert!(f.stack.is_empty());
    }

    #[test]
    fn locals_handle_wide_values() {
        let mut f = Frame::new(blob());
        f.set_local(2, Value::Double(1.5));
        assert_eq!(f.local(2), Value::Double(1.5));
        assert_eq!(f.local(3), Value::Padding);
        f.set_local(0, Value::Int(3));
        assert_eq!(f.local(0), Value::Int(3));
    }

    #[test]
    fn slot_level_shuffles_see_padding() {
        let mut f = Frame::new(blob());
        f.push(Value::Long(1));
        // pop2 as two slot pops.
        let a = f.pop_slot();
        let b = f.pop_slot();
        assert_eq!(a, Value::Padding);
        assert_eq!(b, Value::Long(1));
    }
}
