//! Native methods (§6.3).
//!
//! "The Java Class Library exposes JVM interfaces to a wide variety of
//! native functionality, such as the file system, unsafe memory
//! operations, and network connections. ... DoppioJVM implements a
//! wide variety of these native methods directly in JavaScript. The
//! methods corresponding to the file system API use the Doppio file
//! system, the methods corresponding to unsafe memory operations use
//! the Doppio heap, and the methods corresponding to network
//! connections use Doppio sockets. When a native method needs to use
//! an asynchronous browser API, DoppioJVM uses the suspend-and-resume
//! mechanism ... to 'pause' execution until the browser triggers the
//! resumption callback" — here, [`NativeOutcome::Block`] plus a poll
//! closure the thread re-runs when woken.
//!
//! User-defined natives (the JNI story of §6.3: "reimplemented ... and
//! registered with DoppioJVM") register through
//! [`crate::jvm::Jvm::register_native`].

use doppio_core::{Resource, ThreadContext, ThreadId};
use doppio_jsengine::Cost;

use crate::frame::Frame;
use crate::interp::{self, StepResult};
use crate::object::HeapObj;
use crate::state::JvmState;
use crate::value::{ObjRef, Value};

/// What a native method call produced.
pub enum NativeOutcome {
    /// Completed with an optional return value.
    Return(Option<Value>),
    /// Threw an exception.
    Throw {
        /// Exception class name.
        class: String,
        /// Exception message.
        message: String,
    },
    /// Blocked on an asynchronous operation: poll `resume` when woken.
    Block(PendingNative),
    /// Voluntary context switch (`Thread.yield`).
    Yield,
    /// `System.exit`.
    Exit(i32),
}

/// A blocked native: polled on wake; `None` means still waiting.
pub type PendingNative = Box<dyn FnMut(&mut NativeCtx<'_, '_, '_>) -> Option<NativeOutcome>>;

/// Everything a native method can touch.
pub struct NativeCtx<'a, 'b, 'rt> {
    /// The shared JVM state.
    pub state: &'a mut JvmState,
    /// The calling thread's frame stack (for stack introspection).
    pub frames: &'a mut Vec<Frame>,
    /// The Doppio thread context (async bridge, spawn, wake).
    pub ctx: &'b mut ThreadContext<'rt>,
    /// The calling thread.
    pub tid: ThreadId,
}

impl NativeCtx<'_, '_, '_> {
    fn string_arg(&self, v: &Value) -> Result<String, NativeOutcome> {
        match v {
            Value::Ref(Some(r)) => match self.state.heap.get(*r) {
                HeapObj::JavaString(s) => Ok(s.clone()),
                _ => Err(NativeOutcome::Throw {
                    class: "java/lang/InternalError".into(),
                    message: "expected a String".into(),
                }),
            },
            _ => Err(NativeOutcome::Throw {
                class: "java/lang/NullPointerException".into(),
                message: "null String".into(),
            }),
        }
    }

    fn ret_string(&mut self, s: impl Into<String>) -> NativeOutcome {
        let s = s.into();
        self.state.engine.charge_n(Cost::StringOp, s.len() as u64);
        let r = self.state.heap.alloc_string(s);
        NativeOutcome::Return(Some(Value::Ref(Some(r))))
    }
}

fn throw(class: &str, message: impl Into<String>) -> NativeOutcome {
    NativeOutcome::Throw {
        class: class.to_string(),
        message: message.into(),
    }
}

fn npe(what: &str) -> NativeOutcome {
    throw("java/lang/NullPointerException", what)
}

/// Record an `Async` wait-for edge for the calling thread, with the
/// innermost guest frame as the blame site.
fn note_async_block(n: &mut NativeCtx<'_, '_, '_>, label: &str) {
    let site = interp::current_site(n.state, n.frames);
    n.ctx.note_block(Resource::Async(label.to_string()), site);
}

/// Block on an asynchronous completion, labeled in the wait-for graph.
/// The edge is restored on every poll that stays blocked (a wake from
/// an unrelated source would otherwise erase it and deadlock blame
/// would go blind).
fn block_labeled(
    n: &mut NativeCtx<'_, '_, '_>,
    label: String,
    mut poll: PendingNative,
) -> NativeOutcome {
    note_async_block(n, &label);
    NativeOutcome::Block(Box::new(move |n2| {
        let out = poll(n2);
        if out.is_none() {
            note_async_block(n2, &label);
        }
        out
    }))
}

/// Turn a native outcome into a step result (pushing return values
/// onto the caller's frame).
pub fn apply_outcome(
    state: &mut JvmState,
    frames: &mut Vec<Frame>,
    ctx: &mut ThreadContext<'_>,
    tid: ThreadId,
    outcome: NativeOutcome,
) -> StepResult {
    match outcome {
        NativeOutcome::Return(v) => {
            if let (Some(frame), Some(v)) = (frames.last_mut(), v) {
                frame.push(v);
            }
            if frames.is_empty() {
                StepResult::Finished
            } else {
                StepResult::CallBoundary
            }
        }
        NativeOutcome::Throw { class, message } => {
            interp::throw_vm(state, frames, ctx, tid, &class, &message)
        }
        NativeOutcome::Block(p) => StepResult::NativeBlocked(p),
        NativeOutcome::Yield => {
            // The instruction already completed (no return value); the
            // thread ends its slice unconditionally so yields are real
            // context-switch points for schedule exploration.
            StepResult::VoluntaryYield
        }
        NativeOutcome::Exit(code) => StepResult::Exit(code),
    }
}

/// Dispatch a native method call.
pub fn call_native(
    n: &mut NativeCtx<'_, '_, '_>,
    class: &str,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    // User-registered natives take precedence (the §6.3 JNI path).
    let key = (class.to_string(), name.to_string(), desc.to_string());
    if let Some(f) = n.state_user_native(&key) {
        return f(n, args);
    }
    match class {
        "java/lang/Object" => object_native(n, name, desc, args),
        "java/lang/System" => system_native(n, name, desc, args),
        "java/io/PrintStream" => printstream_native(n, name, desc, args),
        "java/lang/String" => string_native(n, name, desc, args),
        "java/lang/StringBuilder" => stringbuilder_native(n, name, desc, args),
        "java/lang/Math" => math_native(n, name, desc, args),
        "java/lang/Integer" => integer_native(n, name, desc, args),
        "java/lang/Long" => long_native(n, name, desc, args),
        "java/lang/Double" => double_native(n, name, desc, args),
        "java/lang/Thread" => thread_native(n, name, desc, args),
        "java/lang/Throwable" => throwable_native(n, name, desc, args),
        "java/lang/Class" => class_native(n, name, desc, args),
        "sun/misc/Unsafe" => unsafe_native(n, name, desc, args),
        "doppio/runtime/FileSystem" => fs_native(n, name, desc, args),
        "doppio/runtime/Console" => console_native(n, name, desc, args),
        "doppio/runtime/JS" => js_native(n, name, desc, args),
        "doppio/net/Socket" => socket_native(n, name, desc, args),
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("{class}.{name}{desc}"),
        ),
    }
}

// Work around borrow rules: fetch a user native as an Rc clone.
impl JvmState {
    /// Registered user natives.
    pub fn user_native(&self, key: &(String, String, String)) -> Option<crate::jvm::UserNative> {
        self.user_natives.get(key).cloned()
    }
}

impl NativeCtx<'_, '_, '_> {
    fn state_user_native(&self, key: &(String, String, String)) -> Option<crate::jvm::UserNative> {
        self.state.user_native(key)
    }
}

// ----------------------------------------------------------------
// java/lang/Object
// ----------------------------------------------------------------

fn object_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    let recv = args.first().and_then(Value::as_ref);
    match (name, desc) {
        ("hashCode", "()I") | ("identityHashCode", "(Ljava/lang/Object;)I") => {
            let r = recv.or_else(|| args.last().and_then(Value::as_ref));
            NativeOutcome::Return(Some(Value::Int(r.map(|r| r as i32).unwrap_or(0))))
        }
        ("getClass", "()Ljava/lang/Class;") => {
            let Some(r) = recv else {
                return npe("getClass");
            };
            match interp::runtime_class_of(n.state, r) {
                Ok(cid) => {
                    let cname = n.state.registry.get(cid).name.clone();
                    let mirror = interp::class_object(n.state, &cname);
                    NativeOutcome::Return(Some(Value::Ref(Some(mirror))))
                }
                Err(_) => throw("java/lang/InternalError", "getClass"),
            }
        }
        ("toString", "()Ljava/lang/String;") => {
            let Some(r) = recv else {
                return npe("toString");
            };
            let text = match n.state.heap.get(r) {
                HeapObj::JavaString(s) => s.clone(),
                HeapObj::StringBuilder(s) => s.clone(),
                HeapObj::Instance { class, .. } => {
                    format!("{}@{:x}", n.state.registry.get(*class).name, r)
                }
                other => format!("{}@{:x}", other.array_class_name().unwrap_or_default(), r),
            };
            n.ret_string(text)
        }
        ("wait", "()V") => {
            let Some(r) = recv else { return npe("wait") };
            monitor_wait(n, r)
        }
        ("notify", "()V") => {
            let Some(r) = recv else { return npe("notify") };
            monitor_notify(n, r, false)
        }
        ("notifyAll", "()V") => {
            let Some(r) = recv else {
                return npe("notifyAll");
            };
            monitor_notify(n, r, true)
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("Object.{name}{desc}"),
        ),
    }
}

fn monitor_wait(n: &mut NativeCtx<'_, '_, '_>, obj: ObjRef) -> NativeOutcome {
    let tid = n.tid;
    let Some(m) = n.state.monitors.get_mut(&obj) else {
        return throw(
            "java/lang/IllegalMonitorStateException",
            "wait without monitor",
        );
    };
    let Some((owner, count)) = m.owner else {
        return throw(
            "java/lang/IllegalMonitorStateException",
            "wait without monitor",
        );
    };
    if owner != tid {
        return throw(
            "java/lang/IllegalMonitorStateException",
            "wait by non-owner",
        );
    }
    // Release fully, remember the recursion count, join the wait set.
    m.owner = None;
    m.wait_set.push((tid, count));
    let next = m.entry_queue.pop_front();
    n.ctx.note_release(Resource::Monitor(obj as u64));
    if let Some(next) = next {
        n.ctx.wake(next);
    }
    let site = interp::current_site(n.state, n.frames);
    n.ctx.note_block(Resource::Cond(obj as u64), site.clone());
    // Resume: once notified we are moved to the entry queue; we must
    // reacquire with the saved count before returning.
    let mut reacquiring = false;
    NativeOutcome::Block(Box::new(move |n2| {
        let tid = n2.tid;
        let m = n2.state.monitors.entry(obj).or_default();
        if !reacquiring {
            // Only proceed once notify moved us out of the wait set.
            if m.wait_set.iter().any(|(t, _)| *t == tid) {
                n2.ctx.note_block(Resource::Cond(obj as u64), site.clone());
                return None;
            }
            reacquiring = true;
        }
        match m.owner {
            None => {
                m.owner = Some((tid, count));
                n2.ctx.note_acquire(Resource::Monitor(obj as u64));
                Some(NativeOutcome::Return(None))
            }
            Some((o, _)) if o == tid => Some(NativeOutcome::Return(None)),
            Some(_) => {
                if !m.entry_queue.contains(&tid) {
                    m.entry_queue.push_back(tid);
                }
                // Notified but the monitor is contended: the wait-for
                // edge sharpens from the condition to the monitor.
                n2.ctx
                    .note_block(Resource::Monitor(obj as u64), site.clone());
                None
            }
        }
    }))
}

fn monitor_notify(n: &mut NativeCtx<'_, '_, '_>, obj: ObjRef, all: bool) -> NativeOutcome {
    let tid = n.tid;
    let Some(m) = n.state.monitors.get_mut(&obj) else {
        return throw(
            "java/lang/IllegalMonitorStateException",
            "notify without monitor",
        );
    };
    match m.owner {
        Some((owner, _)) if owner == tid => {}
        _ => {
            return throw(
                "java/lang/IllegalMonitorStateException",
                "notify by non-owner",
            )
        }
    }
    let to_wake: Vec<ThreadId> = if all {
        m.wait_set.drain(..).map(|(t, _)| t).collect()
    } else if m.wait_set.is_empty() {
        Vec::new()
    } else {
        vec![m.wait_set.remove(0).0]
    };
    for t in to_wake {
        n.ctx.wake(t);
    }
    NativeOutcome::Return(None)
}

// ----------------------------------------------------------------
// java/lang/System, java/io/PrintStream
// ----------------------------------------------------------------

fn system_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    match (name, desc) {
        ("currentTimeMillis", "()J") => {
            NativeOutcome::Return(Some(Value::Long(n.state.engine.now_ms() as i64)))
        }
        ("nanoTime", "()J") => {
            NativeOutcome::Return(Some(Value::Long(n.state.engine.now_ns() as i64)))
        }
        ("exit", "(I)V") => {
            let code = args[0].as_int();
            n.state.exit_code = Some(code);
            NativeOutcome::Exit(code)
        }
        ("identityHashCode", "(Ljava/lang/Object;)I") => NativeOutcome::Return(Some(Value::Int(
            args[0].as_ref().map(|r| r as i32).unwrap_or(0),
        ))),
        ("arraycopy", "(Ljava/lang/Object;ILjava/lang/Object;II)V") => {
            let (src, src_pos, dst, dst_pos, len) = (
                args[0].as_ref(),
                args[1].as_int(),
                args[2].as_ref(),
                args[3].as_int(),
                args[4].as_int(),
            );
            let (Some(src), Some(dst)) = (src, dst) else {
                return npe("arraycopy");
            };
            if src_pos < 0 || dst_pos < 0 || len < 0 {
                return throw("java/lang/ArrayIndexOutOfBoundsException", "arraycopy");
            }
            let (sp, dp, l) = (src_pos as usize, dst_pos as usize, len as usize);
            n.state.engine.charge_n(Cost::ArrayGet, l as u64);
            n.state.engine.charge_n(Cost::ArrayPut, l as u64);
            // Copy out, then in (handles src == dst).
            macro_rules! copy {
                ($variant:ident) => {{
                    let chunk = match n.state.heap.get(src) {
                        HeapObj::$variant(v) => {
                            if sp + l > v.len() {
                                return throw(
                                    "java/lang/ArrayIndexOutOfBoundsException",
                                    "arraycopy src",
                                );
                            }
                            v[sp..sp + l].to_vec()
                        }
                        _ => return throw("java/lang/ArrayStoreException", "type mismatch"),
                    };
                    match n.state.heap.get_mut(dst) {
                        HeapObj::$variant(v) => {
                            if dp + l > v.len() {
                                return throw(
                                    "java/lang/ArrayIndexOutOfBoundsException",
                                    "arraycopy dst",
                                );
                            }
                            v[dp..dp + l].copy_from_slice(&chunk);
                        }
                        _ => return throw("java/lang/ArrayStoreException", "type mismatch"),
                    }
                }};
            }
            match n.state.heap.get(src) {
                HeapObj::ArrayInt(_) => copy!(ArrayInt),
                HeapObj::ArrayLong(_) => copy!(ArrayLong),
                HeapObj::ArrayFloat(_) => copy!(ArrayFloat),
                HeapObj::ArrayDouble(_) => copy!(ArrayDouble),
                HeapObj::ArrayByte(_) => copy!(ArrayByte),
                HeapObj::ArrayChar(_) => copy!(ArrayChar),
                HeapObj::ArrayShort(_) => copy!(ArrayShort),
                HeapObj::ArrayRef { .. } => {
                    let chunk = match n.state.heap.get(src) {
                        HeapObj::ArrayRef { data, .. } => {
                            if sp + l > data.len() {
                                return throw(
                                    "java/lang/ArrayIndexOutOfBoundsException",
                                    "arraycopy src",
                                );
                            }
                            data[sp..sp + l].to_vec()
                        }
                        _ => unreachable!(),
                    };
                    match n.state.heap.get_mut(dst) {
                        HeapObj::ArrayRef { data, .. } => {
                            if dp + l > data.len() {
                                return throw(
                                    "java/lang/ArrayIndexOutOfBoundsException",
                                    "arraycopy dst",
                                );
                            }
                            data[dp..dp + l].copy_from_slice(&chunk);
                        }
                        _ => return throw("java/lang/ArrayStoreException", "type mismatch"),
                    }
                }
                _ => return throw("java/lang/ArrayStoreException", "not an array"),
            }
            NativeOutcome::Return(None)
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("System.{name}{desc}"),
        ),
    }
}

fn printstream_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    let Some(recv) = args.first().and_then(Value::as_ref) else {
        return npe("PrintStream");
    };
    let is_err = match n.state.heap.get(recv) {
        HeapObj::Instance { fields, .. } => {
            matches!(fields.get("java/io/PrintStream.fd"), Some(Value::Int(2)))
        }
        _ => false,
    };
    let newline = name == "println";
    if name != "print" && name != "println" {
        return throw(
            "java/lang/UnsatisfiedLinkError",
            format!("PrintStream.{name}{desc}"),
        );
    }
    let text = match desc {
        "()V" => String::new(),
        "(Ljava/lang/String;)V" => match args[1] {
            Value::Ref(Some(r)) => match n.state.heap.get(r) {
                HeapObj::JavaString(s) => s.clone(),
                _ => "<object>".to_string(),
            },
            Value::Ref(None) => "null".to_string(),
            _ => return throw("java/lang/InternalError", "print arg"),
        },
        "(I)V" => args[1].as_int().to_string(),
        "(J)V" => args[1].as_long().to_string(),
        "(C)V" => char::from_u32(args[1].as_int() as u32)
            .unwrap_or('\u{FFFD}')
            .to_string(),
        "(Z)V" => (args[1].as_int() != 0).to_string(),
        "(F)V" => format_double(f64::from(args[1].as_float())),
        "(D)V" => format_double(args[1].as_double()),
        _ => {
            return throw(
                "java/lang/UnsatisfiedLinkError",
                format!("PrintStream.{name}{desc}"),
            )
        }
    };
    let full = if newline { format!("{text}\n") } else { text };
    n.state.engine.charge_n(Cost::StringOp, full.len() as u64);
    if is_err {
        n.state.stderr.extend_from_slice(full.as_bytes());
    } else {
        n.state.write_stdout(&full);
    }
    NativeOutcome::Return(None)
}

/// Render a double roughly as Java does (integral values keep ".0").
fn format_double(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

// ----------------------------------------------------------------
// java/lang/String & StringBuilder
// ----------------------------------------------------------------

fn string_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    let this_str = |n: &NativeCtx<'_, '_, '_>| -> Result<String, NativeOutcome> {
        match args.first() {
            Some(Value::Ref(Some(r))) => match n.state.heap.get(*r) {
                HeapObj::JavaString(s) => Ok(s.clone()),
                _ => Err(throw("java/lang/InternalError", "not a String")),
            },
            _ => Err(npe("String method")),
        }
    };
    match (name, desc) {
        // Constructors rewrite the freshly `new`ed instance in place.
        ("<init>", "()V") => {
            let Some(r) = args[0].as_ref() else {
                return npe("<init>");
            };
            *n.state.heap.get_mut(r) = HeapObj::JavaString(String::new());
            NativeOutcome::Return(None)
        }
        ("<init>", "([B)V") => {
            let Some(r) = args[0].as_ref() else {
                return npe("<init>");
            };
            let Some(b) = args[1].as_ref() else {
                return npe("byte[]");
            };
            let bytes: Vec<u8> = match n.state.heap.get(b) {
                HeapObj::ArrayByte(v) => v.iter().map(|&x| x as u8).collect(),
                _ => return throw("java/lang/InternalError", "expected byte[]"),
            };
            n.state.engine.charge_n(Cost::StringOp, bytes.len() as u64);
            let s = String::from_utf8_lossy(&bytes).into_owned();
            *n.state.heap.get_mut(r) = HeapObj::JavaString(s);
            NativeOutcome::Return(None)
        }
        ("<init>", "([C)V") => {
            let Some(r) = args[0].as_ref() else {
                return npe("<init>");
            };
            let Some(c) = args[1].as_ref() else {
                return npe("char[]");
            };
            let units: Vec<u16> = match n.state.heap.get(c) {
                HeapObj::ArrayChar(v) => v.clone(),
                _ => return throw("java/lang/InternalError", "expected char[]"),
            };
            n.state.engine.charge_n(Cost::StringOp, units.len() as u64);
            let s: String = char::decode_utf16(units)
                .map(|r| r.unwrap_or(char::REPLACEMENT_CHARACTER))
                .collect();
            *n.state.heap.get_mut(r) = HeapObj::JavaString(s);
            NativeOutcome::Return(None)
        }
        ("length", "()I") => {
            let s = match this_str(n) {
                Ok(s) => s,
                Err(e) => return e,
            };
            NativeOutcome::Return(Some(Value::Int(s.encode_utf16().count() as i32)))
        }
        ("charAt", "(I)C") => {
            let s = match this_str(n) {
                Ok(s) => s,
                Err(e) => return e,
            };
            let i = args[1].as_int();
            n.state.engine.charge(Cost::StringOp);
            match s.encode_utf16().nth(i.max(0) as usize) {
                Some(u) if i >= 0 => NativeOutcome::Return(Some(Value::Int(i32::from(u)))),
                _ => throw("java/lang/StringIndexOutOfBoundsException", i.to_string()),
            }
        }
        ("equals", "(Ljava/lang/Object;)Z") => {
            let s = match this_str(n) {
                Ok(s) => s,
                Err(e) => return e,
            };
            let eq = match args[1] {
                Value::Ref(Some(r)) => {
                    matches!(n.state.heap.get(r), HeapObj::JavaString(t) if *t == s)
                }
                _ => false,
            };
            n.state.engine.charge_n(Cost::StringOp, s.len() as u64);
            NativeOutcome::Return(Some(Value::Int(i32::from(eq))))
        }
        ("hashCode", "()I") => {
            let s = match this_str(n) {
                Ok(s) => s,
                Err(e) => return e,
            };
            n.state.engine.charge_n(Cost::StringOp, s.len() as u64);
            let mut h: i32 = 0;
            for u in s.encode_utf16() {
                h = h.wrapping_mul(31).wrapping_add(i32::from(u));
            }
            NativeOutcome::Return(Some(Value::Int(h)))
        }
        ("compareTo", "(Ljava/lang/String;)I") => {
            let s = match this_str(n) {
                Ok(s) => s,
                Err(e) => return e,
            };
            let t = match n.string_arg(&args[1]) {
                Ok(t) => t,
                Err(e) => return e,
            };
            let a: Vec<u16> = s.encode_utf16().collect();
            let b: Vec<u16> = t.encode_utf16().collect();
            n.state
                .engine
                .charge_n(Cost::StringOp, a.len().min(b.len()) as u64);
            let r = match a.cmp(&b) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            };
            NativeOutcome::Return(Some(Value::Int(r)))
        }
        ("concat", "(Ljava/lang/String;)Ljava/lang/String;") => {
            let s = match this_str(n) {
                Ok(s) => s,
                Err(e) => return e,
            };
            let t = match n.string_arg(&args[1]) {
                Ok(t) => t,
                Err(e) => return e,
            };
            n.ret_string(format!("{s}{t}"))
        }
        ("substring", "(II)Ljava/lang/String;") | ("substring", "(I)Ljava/lang/String;") => {
            let s = match this_str(n) {
                Ok(s) => s,
                Err(e) => return e,
            };
            let units: Vec<u16> = s.encode_utf16().collect();
            let begin = args[1].as_int();
            let end = if desc == "(II)Ljava/lang/String;" {
                args[2].as_int()
            } else {
                units.len() as i32
            };
            if begin < 0 || end > units.len() as i32 || begin > end {
                return throw(
                    "java/lang/StringIndexOutOfBoundsException",
                    format!("begin {begin}, end {end}, length {}", units.len()),
                );
            }
            let sub: String =
                char::decode_utf16(units[begin as usize..end as usize].iter().copied())
                    .map(|r| r.unwrap_or(char::REPLACEMENT_CHARACTER))
                    .collect();
            n.ret_string(sub)
        }
        ("indexOf", "(I)I") => {
            let s = match this_str(n) {
                Ok(s) => s,
                Err(e) => return e,
            };
            let c = args[1].as_int();
            let idx = s
                .encode_utf16()
                .position(|u| i32::from(u) == c)
                .map(|i| i as i32)
                .unwrap_or(-1);
            NativeOutcome::Return(Some(Value::Int(idx)))
        }
        ("indexOf", "(Ljava/lang/String;)I") => {
            let s = match this_str(n) {
                Ok(s) => s,
                Err(e) => return e,
            };
            let t = match n.string_arg(&args[1]) {
                Ok(t) => t,
                Err(e) => return e,
            };
            n.state.engine.charge_n(Cost::StringOp, s.len() as u64);
            let idx = s
                .find(&t)
                .map(|b| s[..b].encode_utf16().count() as i32)
                .unwrap_or(-1);
            NativeOutcome::Return(Some(Value::Int(idx)))
        }
        ("startsWith", "(Ljava/lang/String;)Z") => {
            let s = match this_str(n) {
                Ok(s) => s,
                Err(e) => return e,
            };
            let t = match n.string_arg(&args[1]) {
                Ok(t) => t,
                Err(e) => return e,
            };
            NativeOutcome::Return(Some(Value::Int(i32::from(s.starts_with(&t)))))
        }
        ("toCharArray", "()[C") => {
            let s = match this_str(n) {
                Ok(s) => s,
                Err(e) => return e,
            };
            n.state.engine.charge_n(Cost::StringOp, s.len() as u64);
            let units: Vec<u16> = s.encode_utf16().collect();
            let r = n.state.heap.alloc(HeapObj::ArrayChar(units));
            NativeOutcome::Return(Some(Value::Ref(Some(r))))
        }
        ("getBytes", "()[B") => {
            let s = match this_str(n) {
                Ok(s) => s,
                Err(e) => return e,
            };
            n.state.engine.charge_n(Cost::StringOp, s.len() as u64);
            let bytes: Vec<i8> = s.bytes().map(|b| b as i8).collect();
            let r = n.state.heap.alloc(HeapObj::ArrayByte(bytes));
            NativeOutcome::Return(Some(Value::Ref(Some(r))))
        }
        ("intern", "()Ljava/lang/String;") => {
            let s = match this_str(n) {
                Ok(s) => s,
                Err(e) => return e,
            };
            let r = n.state.intern_string(&s);
            NativeOutcome::Return(Some(Value::Ref(Some(r))))
        }
        ("valueOf", "(I)Ljava/lang/String;") => {
            let v = args[0].as_int();
            n.ret_string(v.to_string())
        }
        ("valueOf", "(J)Ljava/lang/String;") => {
            let v = args[0].as_long();
            n.ret_string(v.to_string())
        }
        ("valueOf", "(D)Ljava/lang/String;") => {
            let v = args[0].as_double();
            n.ret_string(format_double(v))
        }
        ("valueOf", "(C)Ljava/lang/String;") => {
            let v = args[0].as_int();
            n.ret_string(char::from_u32(v as u32).unwrap_or('\u{FFFD}').to_string())
        }
        ("valueOf", "(Z)Ljava/lang/String;") => {
            let v = args[0].as_int();
            n.ret_string((v != 0).to_string())
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("String.{name}{desc}"),
        ),
    }
}

fn stringbuilder_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    let Some(recv) = args.first().and_then(Value::as_ref) else {
        return npe("StringBuilder");
    };
    if (name, desc) == ("<init>", "()V") {
        *n.state.heap.get_mut(recv) = HeapObj::StringBuilder(String::new());
        return NativeOutcome::Return(None);
    }
    match (name, desc) {
        ("append", "(Ljava/lang/String;)Ljava/lang/StringBuilder;") => {
            let text = match args[1] {
                Value::Ref(Some(r)) => match n.state.heap.get(r) {
                    HeapObj::JavaString(s) => s.clone(),
                    _ => "<object>".into(),
                },
                _ => "null".into(),
            };
            n.state.engine.charge_n(Cost::StringOp, text.len() as u64);
            if let HeapObj::StringBuilder(s) = n.state.heap.get_mut(recv) {
                s.push_str(&text);
            }
            NativeOutcome::Return(Some(Value::Ref(Some(recv))))
        }
        ("append", "(I)Ljava/lang/StringBuilder;") => {
            let text = args[1].as_int().to_string();
            sb_push(n, recv, &text)
        }
        ("append", "(J)Ljava/lang/StringBuilder;") => {
            let text = args[1].as_long().to_string();
            sb_push(n, recv, &text)
        }
        ("append", "(C)Ljava/lang/StringBuilder;") => {
            let c = char::from_u32(args[1].as_int() as u32).unwrap_or('\u{FFFD}');
            sb_push(n, recv, &c.to_string())
        }
        ("append", "(Z)Ljava/lang/StringBuilder;") => {
            let text = (args[1].as_int() != 0).to_string();
            sb_push(n, recv, &text)
        }
        ("append", "(D)Ljava/lang/StringBuilder;") => {
            let text = format_double(args[1].as_double());
            sb_push(n, recv, &text)
        }
        ("toString", "()Ljava/lang/String;") => {
            let s = match n.state.heap.get(recv) {
                HeapObj::StringBuilder(s) => s.clone(),
                _ => String::new(),
            };
            n.ret_string(s)
        }
        ("length", "()I") => {
            let len = match n.state.heap.get(recv) {
                HeapObj::StringBuilder(s) => s.encode_utf16().count(),
                _ => 0,
            };
            NativeOutcome::Return(Some(Value::Int(len as i32)))
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("StringBuilder.{name}{desc}"),
        ),
    }
}

fn sb_push(n: &mut NativeCtx<'_, '_, '_>, recv: ObjRef, text: &str) -> NativeOutcome {
    n.state.engine.charge_n(Cost::StringOp, text.len() as u64);
    if let HeapObj::StringBuilder(s) = n.state.heap.get_mut(recv) {
        s.push_str(text);
    }
    NativeOutcome::Return(Some(Value::Ref(Some(recv))))
}

// ----------------------------------------------------------------
// java/lang/Math, boxed-type helpers
// ----------------------------------------------------------------

fn math_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    n.state.engine.charge(Cost::FloatOp);
    let ret = |v: Value| NativeOutcome::Return(Some(v));
    match (name, desc) {
        ("sqrt", "(D)D") => ret(Value::Double(args[0].as_double().sqrt())),
        ("floor", "(D)D") => ret(Value::Double(args[0].as_double().floor())),
        ("ceil", "(D)D") => ret(Value::Double(args[0].as_double().ceil())),
        ("pow", "(DD)D") => ret(Value::Double(args[0].as_double().powf(args[1].as_double()))),
        ("log", "(D)D") => ret(Value::Double(args[0].as_double().ln())),
        ("sin", "(D)D") => ret(Value::Double(args[0].as_double().sin())),
        ("cos", "(D)D") => ret(Value::Double(args[0].as_double().cos())),
        ("abs", "(D)D") => ret(Value::Double(args[0].as_double().abs())),
        ("abs", "(I)I") => ret(Value::Int(args[0].as_int().wrapping_abs())),
        ("abs", "(J)J") => ret(Value::Long(args[0].as_long().wrapping_abs())),
        ("max", "(II)I") => ret(Value::Int(args[0].as_int().max(args[1].as_int()))),
        ("min", "(II)I") => ret(Value::Int(args[0].as_int().min(args[1].as_int()))),
        ("max", "(JJ)J") => ret(Value::Long(args[0].as_long().max(args[1].as_long()))),
        ("min", "(JJ)J") => ret(Value::Long(args[0].as_long().min(args[1].as_long()))),
        ("max", "(DD)D") => ret(Value::Double(args[0].as_double().max(args[1].as_double()))),
        ("min", "(DD)D") => ret(Value::Double(args[0].as_double().min(args[1].as_double()))),
        ("random", "()D") => {
            // Deterministic xorshift so runs are reproducible.
            let s = &mut n.state.rng_state;
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            ret(Value::Double((*s >> 11) as f64 / (1u64 << 53) as f64))
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("Math.{name}{desc}"),
        ),
    }
}

fn integer_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    match (name, desc) {
        ("parseInt", "(Ljava/lang/String;)I") => {
            let s = match n.string_arg(&args[0]) {
                Ok(s) => s,
                Err(e) => return e,
            };
            match s.trim().parse::<i32>() {
                Ok(v) => NativeOutcome::Return(Some(Value::Int(v))),
                Err(_) => throw("java/lang/NumberFormatException", s),
            }
        }
        ("toString", "(I)Ljava/lang/String;") => {
            let v = args[0].as_int();
            n.ret_string(v.to_string())
        }
        ("toHexString", "(I)Ljava/lang/String;") => {
            let v = args[0].as_int();
            n.ret_string(format!("{:x}", v as u32))
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("Integer.{name}{desc}"),
        ),
    }
}

fn long_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    n.state.engine.charge(Cost::LongOp);
    match (name, desc) {
        ("parseLong", "(Ljava/lang/String;)J") => {
            let s = match n.string_arg(&args[0]) {
                Ok(s) => s,
                Err(e) => return e,
            };
            match s.trim().parse::<i64>() {
                Ok(v) => NativeOutcome::Return(Some(Value::Long(v))),
                Err(_) => throw("java/lang/NumberFormatException", s),
            }
        }
        ("toString", "(J)Ljava/lang/String;") => {
            let v = args[0].as_long();
            n.ret_string(v.to_string())
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("Long.{name}{desc}"),
        ),
    }
}

fn double_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    match (name, desc) {
        ("parseDouble", "(Ljava/lang/String;)D") => {
            let s = match n.string_arg(&args[0]) {
                Ok(s) => s,
                Err(e) => return e,
            };
            match s.trim().parse::<f64>() {
                Ok(v) => NativeOutcome::Return(Some(Value::Double(v))),
                Err(_) => throw("java/lang/NumberFormatException", s),
            }
        }
        ("toString", "(D)Ljava/lang/String;") => {
            let v = args[0].as_double();
            n.ret_string(format_double(v))
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("Double.{name}{desc}"),
        ),
    }
}

// ----------------------------------------------------------------
// Threads (§4.3, §6.2)
// ----------------------------------------------------------------

fn thread_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    match (name, desc) {
        ("start", "()V") => {
            let Some(recv) = args[0].as_ref() else {
                return npe("Thread.start");
            };
            crate::thread::spawn_java_thread(n, recv)
        }
        ("yield", "()V") => NativeOutcome::Yield,
        ("sleep", "(J)V") => {
            let ms = args[0].as_long().max(0) as f64;
            let cell = n.ctx.block_on(move |engine, resolver| {
                engine.set_timeout(ms, move |_| resolver.resolve(()));
            });
            block_labeled(
                n,
                format!("thread.sleep({}ms)", ms as u64),
                Box::new(move |_| cell.take().map(|_| NativeOutcome::Return(None))),
            )
        }
        ("currentThread", "()Ljava/lang/Thread;") => {
            let r = crate::thread::current_thread_object(n);
            NativeOutcome::Return(Some(Value::Ref(Some(r))))
        }
        ("join", "()V") => {
            let Some(recv) = args[0].as_ref() else {
                return npe("Thread.join");
            };
            crate::thread::join_thread(n, recv)
        }
        ("isAlive", "()Z") => {
            let Some(recv) = args[0].as_ref() else {
                return npe("Thread.isAlive");
            };
            let alive = crate::thread::is_alive(n.state, recv);
            NativeOutcome::Return(Some(Value::Int(i32::from(alive))))
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("Thread.{name}{desc}"),
        ),
    }
}

fn throwable_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    match (name, desc) {
        // §6.1: the explicit call stack makes introspection trivial.
        ("fillInStackTrace", "()Ljava/lang/Throwable;") => {
            let trace: Vec<String> = n
                .frames
                .iter()
                .rev()
                .map(|f| {
                    let cls = &n.state.registry.get(f.code.class).name;
                    let line = f
                        .code
                        .line_numbers
                        .iter()
                        .rev()
                        .find(|&&(pc, _)| (pc as usize) <= f.pc)
                        .map(|&(_, l)| l);
                    match line {
                        Some(l) => format!("{cls}.{}({}:{l})", f.code.name, cls),
                        None => format!("{cls}.{}", f.code.name),
                    }
                })
                .collect();
            let text = trace.join("\n\tat ");
            let trace_ref = n.state.heap.alloc_string(text);
            if let Some(r) = args[0].as_ref() {
                if let HeapObj::Instance { fields, .. } = n.state.heap.get_mut(r) {
                    fields.insert(
                        "java/lang/Throwable.stackTrace".to_string(),
                        Value::Ref(Some(trace_ref)),
                    );
                }
            }
            NativeOutcome::Return(Some(args[0]))
        }
        ("printStackTrace", "()V") => {
            let Some(r) = args[0].as_ref() else {
                return npe("printStackTrace");
            };
            let (cls, msg, trace) = describe_throwable(n.state, r);
            let mut text = cls;
            if !msg.is_empty() {
                text = format!("{text}: {msg}");
            }
            if !trace.is_empty() {
                text = format!("{text}\n\tat {trace}");
            }
            text.push('\n');
            n.state.stderr.extend_from_slice(text.as_bytes());
            NativeOutcome::Return(None)
        }
        ("getMessage", "()Ljava/lang/String;") => {
            let Some(r) = args[0].as_ref() else {
                return npe("getMessage");
            };
            let msg = match n.state.heap.get(r) {
                HeapObj::Instance { fields, .. } => fields
                    .get("java/lang/Throwable.message")
                    .copied()
                    .unwrap_or(Value::null()),
                _ => Value::null(),
            };
            NativeOutcome::Return(Some(msg))
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("Throwable.{name}{desc}"),
        ),
    }
}

/// `(class name, message, stack trace)` of a throwable object.
pub fn describe_throwable(state: &JvmState, r: ObjRef) -> (String, String, String) {
    match state.heap.get(r) {
        HeapObj::Instance { class, fields } => {
            let cls = state.registry.get(*class).name.replace('/', ".");
            let msg = match fields.get("java/lang/Throwable.message") {
                Some(Value::Ref(Some(m))) => state.heap.java_string(*m).unwrap_or("").to_string(),
                _ => String::new(),
            };
            let trace = match fields.get("java/lang/Throwable.stackTrace") {
                Some(Value::Ref(Some(t))) => state.heap.java_string(*t).unwrap_or("").to_string(),
                _ => String::new(),
            };
            (cls, msg, trace)
        }
        HeapObj::JavaString(s) => ("java.lang.Throwable".into(), s.clone(), String::new()),
        _ => ("java.lang.Throwable".into(), String::new(), String::new()),
    }
}

fn class_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    match (name, desc) {
        ("getName", "()Ljava/lang/String;") => {
            let Some(r) = args[0].as_ref() else {
                return npe("getName");
            };
            let n2 = match n.state.heap.get(r) {
                HeapObj::Instance { fields, .. } => match fields.get("java/lang/Class.name") {
                    Some(Value::Ref(Some(s))) => n
                        .state
                        .heap
                        .java_string(*s)
                        .unwrap_or("?")
                        .replace('/', "."),
                    _ => "?".to_string(),
                },
                _ => "?".to_string(),
            };
            n.ret_string(n2)
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("Class.{name}{desc}"),
        ),
    }
}

// ----------------------------------------------------------------
// sun/misc/Unsafe (§6.5)
// ----------------------------------------------------------------

fn unsafe_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    // Instance methods: args[0] is the Unsafe singleton; statics skip it.
    let a = |i: usize| -> Value { args[i] };
    let heap_err = |e: doppio_heap::HeapError| -> NativeOutcome {
        throw("java/lang/InternalError", e.to_string())
    };
    match (name, desc) {
        ("getUnsafe", "()Lsun/misc/Unsafe;") => {
            let cid = match n.state.registry.lookup("sun/misc/Unsafe") {
                Some(c) => c,
                None => return throw("java/lang/NoClassDefFoundError", "sun/misc/Unsafe"),
            };
            let r = interp::alloc_instance(n.state, cid);
            NativeOutcome::Return(Some(Value::Ref(Some(r))))
        }
        ("allocateMemory", "(J)J") => {
            let size = a(1).as_long();
            match n.state.unmanaged.malloc(size.max(0) as usize) {
                Ok(addr) => NativeOutcome::Return(Some(Value::Long(addr as i64))),
                Err(e) => throw("java/lang/OutOfMemoryError", e.to_string()),
            }
        }
        ("freeMemory", "(J)V") => match n.state.unmanaged.free(a(1).as_long() as usize) {
            Ok(()) => NativeOutcome::Return(None),
            Err(e) => heap_err(e),
        },
        ("reallocateMemory", "(JJ)J") => {
            let addr = a(1).as_long() as usize;
            let size = a(2).as_long().max(0) as usize;
            match n.state.unmanaged.realloc(addr, size) {
                Ok(p) => NativeOutcome::Return(Some(Value::Long(p as i64))),
                Err(e) => heap_err(e),
            }
        }
        ("putInt", "(JI)V") => match n
            .state
            .unmanaged
            .write_i32(a(1).as_long() as usize, a(2).as_int())
        {
            Ok(()) => NativeOutcome::Return(None),
            Err(e) => heap_err(e),
        },
        ("getInt", "(J)I") => match n.state.unmanaged.read_i32(a(1).as_long() as usize) {
            Ok(v) => NativeOutcome::Return(Some(Value::Int(v))),
            Err(e) => heap_err(e),
        },
        ("putLong", "(JJ)V") => {
            match n
                .state
                .unmanaged
                .write_i64(a(1).as_long() as usize, a(2).as_long())
            {
                Ok(()) => NativeOutcome::Return(None),
                Err(e) => heap_err(e),
            }
        }
        ("getLong", "(J)J") => match n.state.unmanaged.read_i64(a(1).as_long() as usize) {
            Ok(v) => NativeOutcome::Return(Some(Value::Long(v))),
            Err(e) => heap_err(e),
        },
        ("putByte", "(JB)V") => {
            match n
                .state
                .unmanaged
                .write_i8(a(1).as_long() as usize, a(2).as_int() as i8)
            {
                Ok(()) => NativeOutcome::Return(None),
                Err(e) => heap_err(e),
            }
        }
        ("getByte", "(J)B") => match n.state.unmanaged.read_i8(a(1).as_long() as usize) {
            Ok(v) => NativeOutcome::Return(Some(Value::Int(i32::from(v)))),
            Err(e) => heap_err(e),
        },
        ("putDouble", "(JD)V") => {
            match n
                .state
                .unmanaged
                .write_f64(a(1).as_long() as usize, a(2).as_double())
            {
                Ok(()) => NativeOutcome::Return(None),
                Err(e) => heap_err(e),
            }
        }
        ("getDouble", "(J)D") => match n.state.unmanaged.read_f64(a(1).as_long() as usize) {
            Ok(v) => NativeOutcome::Return(Some(Value::Double(v))),
            Err(e) => heap_err(e),
        },
        ("addressSize", "()I") => NativeOutcome::Return(Some(Value::Int(4))),
        ("pageSize", "()I") => NativeOutcome::Return(Some(Value::Int(4096))),
        // The JCL uses Unsafe at startup to probe endianness (§6.5);
        // Doppio's heap is little endian like typed arrays.
        ("isLittleEndian", "()Z") => NativeOutcome::Return(Some(Value::Int(1))),
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("Unsafe.{name}{desc}"),
        ),
    }
}

// ----------------------------------------------------------------
// Doppio runtime services: file system, console, JS interop, sockets
// ----------------------------------------------------------------

fn fs_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    let fs = n.state.fs.clone();
    match (name, desc) {
        ("readFileBytes", "(Ljava/lang/String;)[B") => {
            let path = match n.string_arg(&args[0]) {
                Ok(p) => p,
                Err(e) => return e,
            };
            let label = doppio_fs::wait_label("read", &path);
            let cell = n.ctx.block_on(move |_, resolver| {
                fs.read_file(&path, move |_, r| resolver.resolve(r));
            });
            block_labeled(
                n,
                label,
                Box::new(move |n2| {
                    cell.take().map(|r| match r {
                        Ok(bytes) => {
                            // The JVM-side byte[] is a typed array in the
                            // browser — visible to the Safari leak model.
                            if n2.state.engine.profile().has_typed_arrays {
                                n2.state.engine.typed_array_alloc(bytes.len());
                                n2.state.engine.typed_array_free(bytes.len());
                            }
                            let data: Vec<i8> = bytes.into_iter().map(|b| b as i8).collect();
                            let arr = n2.state.heap.alloc(HeapObj::ArrayByte(data));
                            NativeOutcome::Return(Some(Value::Ref(Some(arr))))
                        }
                        Err(e) => throw("java/io/IOException", e.to_string()),
                    })
                }),
            )
        }
        ("writeFileBytes", "(Ljava/lang/String;[B)V") => {
            let path = match n.string_arg(&args[0]) {
                Ok(p) => p,
                Err(e) => return e,
            };
            let Some(arr) = args[1].as_ref() else {
                return npe("byte[]");
            };
            let bytes: Vec<u8> = match n.state.heap.get(arr) {
                HeapObj::ArrayByte(v) => v.iter().map(|&b| b as u8).collect(),
                _ => return throw("java/lang/InternalError", "expected byte[]"),
            };
            let label = doppio_fs::wait_label("write", &path);
            let cell = n.ctx.block_on(move |_, resolver| {
                fs.write_file(&path, bytes, move |_, r| resolver.resolve(r));
            });
            block_labeled(
                n,
                label,
                Box::new(move |_| {
                    cell.take().map(|r| match r {
                        Ok(()) => NativeOutcome::Return(None),
                        Err(e) => throw("java/io/IOException", e.to_string()),
                    })
                }),
            )
        }
        ("listDir", "(Ljava/lang/String;)[Ljava/lang/String;") => {
            let path = match n.string_arg(&args[0]) {
                Ok(p) => p,
                Err(e) => return e,
            };
            let label = doppio_fs::wait_label("readdir", &path);
            let cell = n.ctx.block_on(move |_, resolver| {
                fs.readdir(&path, move |_, r| resolver.resolve(r));
            });
            block_labeled(
                n,
                label,
                Box::new(move |n2| {
                    cell.take().map(|r| match r {
                        Ok(names) => {
                            let refs: Vec<Option<ObjRef>> = names
                                .into_iter()
                                .map(|s| Some(n2.state.heap.alloc_string(s)))
                                .collect();
                            let arr = n2.state.heap.alloc(HeapObj::ArrayRef {
                                component: "java/lang/String".to_string(),
                                data: refs,
                            });
                            NativeOutcome::Return(Some(Value::Ref(Some(arr))))
                        }
                        Err(e) => throw("java/io/IOException", e.to_string()),
                    })
                }),
            )
        }
        ("exists", "(Ljava/lang/String;)Z") => {
            let path = match n.string_arg(&args[0]) {
                Ok(p) => p,
                Err(e) => return e,
            };
            let label = doppio_fs::wait_label("exists", &path);
            let cell = n.ctx.block_on(move |_, resolver| {
                fs.exists(&path, move |_, ok| resolver.resolve(ok));
            });
            block_labeled(
                n,
                label,
                Box::new(move |_| {
                    cell.take()
                        .map(|ok| NativeOutcome::Return(Some(Value::Int(i32::from(ok)))))
                }),
            )
        }
        ("fileSize", "(Ljava/lang/String;)I") => {
            let path = match n.string_arg(&args[0]) {
                Ok(p) => p,
                Err(e) => return e,
            };
            let label = doppio_fs::wait_label("stat", &path);
            let cell = n.ctx.block_on(move |_, resolver| {
                fs.stat(&path, move |_, r| resolver.resolve(r));
            });
            block_labeled(
                n,
                label,
                Box::new(move |_| {
                    cell.take().map(|r| match r {
                        Ok(st) => NativeOutcome::Return(Some(Value::Int(st.size as i32))),
                        Err(e) => throw("java/io/IOException", e.to_string()),
                    })
                }),
            )
        }
        ("mkdir", "(Ljava/lang/String;)V") => {
            let path = match n.string_arg(&args[0]) {
                Ok(p) => p,
                Err(e) => return e,
            };
            let label = doppio_fs::wait_label("mkdir", &path);
            let cell = n.ctx.block_on(move |_, resolver| {
                fs.mkdir(&path, move |_, r| resolver.resolve(r));
            });
            block_labeled(
                n,
                label,
                Box::new(move |_| {
                    cell.take().map(|r| match r {
                        Ok(()) => NativeOutcome::Return(None),
                        Err(e) => throw("java/io/IOException", e.to_string()),
                    })
                }),
            )
        }
        ("unlink", "(Ljava/lang/String;)V") => {
            let path = match n.string_arg(&args[0]) {
                Ok(p) => p,
                Err(e) => return e,
            };
            let label = doppio_fs::wait_label("unlink", &path);
            let cell = n.ctx.block_on(move |_, resolver| {
                fs.unlink(&path, move |_, r| resolver.resolve(r));
            });
            block_labeled(
                n,
                label,
                Box::new(move |_| {
                    cell.take().map(|r| match r {
                        Ok(()) => NativeOutcome::Return(None),
                        Err(e) => throw("java/io/IOException", e.to_string()),
                    })
                }),
            )
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("FileSystem.{name}{desc}"),
        ),
    }
}

fn console_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    _args: Vec<Value>,
) -> NativeOutcome {
    match (name, desc) {
        // Blocking line read over asynchronous keyboard input — the
        // exact scenario of §3.2's C++ example.
        ("readLine", "()Ljava/lang/String;") => {
            if let Some(line) = take_stdin_line(n.state) {
                return n.ret_string(line);
            }
            if n.state.stdin_closed {
                return NativeOutcome::Return(Some(Value::null()));
            }
            enlist_stdin_waiter(n);
            block_labeled(
                n,
                "stdin.readLine".to_string(),
                Box::new(move |n2| {
                    if let Some(line) = take_stdin_line(n2.state) {
                        Some(n2.ret_string(line))
                    } else if n2.state.stdin_closed {
                        Some(NativeOutcome::Return(Some(Value::null())))
                    } else {
                        enlist_stdin_waiter(n2);
                        None
                    }
                }),
            )
        }
        ("readByte", "()I") => {
            if let Some(b) = n.state.stdin.pop_front() {
                return NativeOutcome::Return(Some(Value::Int(i32::from(b))));
            }
            if n.state.stdin_closed {
                return NativeOutcome::Return(Some(Value::Int(-1)));
            }
            enlist_stdin_waiter(n);
            block_labeled(
                n,
                "stdin.readByte".to_string(),
                Box::new(move |n2| {
                    if let Some(b) = n2.state.stdin.pop_front() {
                        Some(NativeOutcome::Return(Some(Value::Int(i32::from(b)))))
                    } else if n2.state.stdin_closed {
                        Some(NativeOutcome::Return(Some(Value::Int(-1))))
                    } else {
                        enlist_stdin_waiter(n2);
                        None
                    }
                }),
            )
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("Console.{name}{desc}"),
        ),
    }
}

/// Register the calling thread as a stdin waiter, without duplicating
/// the entry — `push_stdin` wakes every listed waiter, and a duplicate
/// would wake the thread twice, leaving a stale `wake_pending`.
fn enlist_stdin_waiter(n: &mut NativeCtx<'_, '_, '_>) {
    if !n.state.stdin_waiters.contains(&n.tid) {
        n.state.stdin_waiters.push(n.tid);
    }
}

fn take_stdin_line(state: &mut JvmState) -> Option<String> {
    let pos = state.stdin.iter().position(|&b| b == b'\n')?;
    let line: Vec<u8> = state.stdin.drain(..=pos).collect();
    let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
    Some(text)
}

fn js_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    match (name, desc) {
        // §6.8: "DoppioJVM exposes an eval method that lets JVM
        // programs execute snippets of JavaScript. This method returns
        // a JVM String."
        ("eval", "(Ljava/lang/String;)Ljava/lang/String;") => {
            let src = match n.string_arg(&args[0]) {
                Ok(s) => s,
                Err(e) => return e,
            };
            let engine = n.state.engine.clone();
            let result = match n.state.js_eval.as_mut() {
                Some(f) => f(&engine, &src),
                None => "undefined".to_string(),
            };
            n.ret_string(result)
        }
        _ => throw("java/lang/UnsatisfiedLinkError", format!("JS.{name}{desc}")),
    }
}

fn socket_native(
    n: &mut NativeCtx<'_, '_, '_>,
    name: &str,
    desc: &str,
    args: Vec<Value>,
) -> NativeOutcome {
    use doppio_sockets::{DoppioSocket, SocketState};
    match (name, desc) {
        ("connect", "(Ljava/lang/String;I)I") => {
            let _host = match n.string_arg(&args[0]) {
                Ok(h) => h,
                Err(e) => return e,
            };
            let port = args[1].as_int() as u16;
            let Some(net) = n.state.network.clone() else {
                return throw("java/io/IOException", "no network configured");
            };
            let engine = n.state.engine.clone();
            let sock = match DoppioSocket::connect(&engine, &net, port) {
                Ok(s) => s,
                Err(e) => return throw("java/io/IOException", e.to_string()),
            };
            // Wake the thread whenever the socket changes state.
            let cell = n.ctx.block_on(|_, resolver| {
                // resolved immediately; the waker below does the real
                // signalling — block_on just parks the thread.
                resolver.resolve(());
            });
            let _ = cell.take();
            let fd = n.state.sockets.len() as i32;
            let tid = n.tid;
            let runtime = n.ctx.runtime().clone();
            sock.set_data_waker(Box::new(move |_| runtime.wake(tid)));
            n.state.sockets.push(Some(sock));
            block_labeled(
                n,
                doppio_sockets::wait_label("connect", fd as usize),
                Box::new(move |n2| {
                    let st = n2.state.sockets[fd as usize]
                        .as_ref()
                        .map(DoppioSocket::state);
                    match st {
                        Some(SocketState::Open) => {
                            Some(NativeOutcome::Return(Some(Value::Int(fd))))
                        }
                        Some(SocketState::Closed) | None => {
                            Some(throw("java/io/IOException", "connection failed"))
                        }
                        Some(SocketState::Connecting) => None,
                    }
                }),
            )
        }
        ("write", "(I[B)V") => {
            let fd = args[0].as_int() as usize;
            let Some(arr) = args[1].as_ref() else {
                return npe("byte[]");
            };
            let bytes: Vec<u8> = match n.state.heap.get(arr) {
                HeapObj::ArrayByte(v) => v.iter().map(|&b| b as u8).collect(),
                _ => return throw("java/lang/InternalError", "expected byte[]"),
            };
            match n.state.sockets.get(fd).and_then(Option::as_ref) {
                Some(s) => match s.send(&bytes) {
                    Ok(()) => NativeOutcome::Return(None),
                    Err(e) => throw("java/io/IOException", e.to_string()),
                },
                None => throw("java/io/IOException", "bad socket"),
            }
        }
        ("available", "(I)I") => {
            let fd = args[0].as_int() as usize;
            let avail = n
                .state
                .sockets
                .get(fd)
                .and_then(Option::as_ref)
                .map(DoppioSocket::available)
                .unwrap_or(0);
            NativeOutcome::Return(Some(Value::Int(avail as i32)))
        }
        // Blocking read of up to `len` bytes; -1 at end of stream.
        ("read", "(II)[B") => {
            let fd = args[0].as_int() as usize;
            let len = args[1].as_int().max(0) as usize;
            let read_now = move |n2: &mut NativeCtx<'_, '_, '_>| -> Option<NativeOutcome> {
                let sock = n2.state.sockets.get(fd).and_then(Option::as_ref)?;
                if sock.available() > 0 {
                    let data: Vec<i8> = sock.recv(len).into_iter().map(|b| b as i8).collect();
                    let arr = n2.state.heap.alloc(HeapObj::ArrayByte(data));
                    Some(NativeOutcome::Return(Some(Value::Ref(Some(arr)))))
                } else if sock.state() == SocketState::Closed {
                    Some(NativeOutcome::Return(Some(Value::null())))
                } else {
                    None
                }
            };
            if let Some(out) = read_now(n) {
                return out;
            }
            block_labeled(
                n,
                doppio_sockets::wait_label("read", fd),
                Box::new(move |n2| read_now(n2)),
            )
        }
        ("close", "(I)V") => {
            let fd = args[0].as_int() as usize;
            if let Some(slot) = n.state.sockets.get_mut(fd) {
                if let Some(s) = slot.take() {
                    s.close();
                }
            }
            NativeOutcome::Return(None)
        }
        _ => throw(
            "java/lang/UnsatisfiedLinkError",
            format!("Socket.{name}{desc}"),
        ),
    }
}
