//! The direct-threaded second execution tier (tier-up).
//!
//! Hot methods — found by the §6.1 call-boundary profiling hooks
//! (invocation counters, backedge counters, sampler hits) — are
//! compiled to a pre-decoded instruction stream ([`TieredCode`]) and
//! executed by [`run_tiered`] instead of the switch interpreter.
//! Operand decoding, constant-pool probing and inline-cache lookup
//! happen once at compile time; hot pairs and triples fuse into
//! superinstructions (`iload+iload+iadd`, `aload+getfield` with the
//! resolved field baked in, `iinc+goto` loop latches) and `invoke*`
//! sites go straight to their quickened [`CallSite`].
//!
//! **The virtual-time invariant.** The tier is a host-speed
//! optimization only: every tiered op charges the *identical* virtual
//! cost sequence and bumps the *identical* cache counters as the
//! switch interpreter executing the same bytecode. Transcripts,
//! RunReports and schedule pick logs are byte-identical with the tier
//! on or off — which is what lets `DOPPIO_TIER_UP=off` serve as a CI
//! oracle. Only the `jvm.tier.*` counters (excluded from reports) and
//! `perf`-category trace instants reveal that the tier ran.
//!
//! **Deoptimization.** Anything the tier did not bake — an
//! unquickened site, a `tableswitch`, a monitor op — compiles to
//! [`Op::Fallback`], which runs that one instruction through the
//! switch interpreter. Anything that invalidates a baked assumption
//! at runtime — an inline-cache miss (e.g. a subclass loaded mid-run),
//! an exception — re-enters the switch interpreter at the equivalent
//! bytecode pc and is counted in `jvm.tier.deopt`. Because the two
//! tiers agree on every observable, deopt needs no state repair beyond
//! materializing the bytecode pc.

use std::rc::Rc;

use doppio_classfile::opcodes as op;
use doppio_core::{ThreadContext, ThreadId};
use doppio_jsengine::Cost;
use doppio_trace::cat;

use crate::class::{ClassId, CpEntry, ResolvedField};
use crate::frame::Frame;
use crate::interp::{self, StepResult};
use crate::object::HeapObj;
use crate::state::{CallSite, CodeBlob, JvmState};
use crate::value::{ObjRef, Value};

/// Hotness at which a method is compiled to the tier.
pub const TIER_THRESHOLD: u32 = 128;
/// Hotness added per invocation (the §6.1 call-boundary hook).
pub const INVOKE_BOOST: u32 = 8;
/// Hotness added per backward branch.
pub const BACKEDGE_BOOST: u32 = 1;
/// Hotness added per frame seen by the sampling profiler.
pub const SAMPLE_BOOST: u32 = 64;

/// "This pc is not the head of a tiered op" sentinel in `ip_by_pc`
/// (fusion middles, operand bytes).
const NO_IP: u32 = u32::MAX;

/// A branch edge resolved at compile time: the target's bytecode pc
/// (for deopt and the backedge suspend check) and its tiered ip.
#[derive(Debug)]
struct BranchTarget {
    pc: u32,
    ip: u32,
    backedge: bool,
}

impl BranchTarget {
    fn unresolved(target_pc: usize, branch_pc: usize) -> BranchTarget {
        BranchTarget {
            pc: target_pc as u32,
            ip: NO_IP,
            backedge: target_pc < branch_pc,
        }
    }
}

/// One pre-decoded op. Variants that can throw carry their bytecode pc
/// so the frame can be re-anchored before the exception dispatches.
#[derive(Debug)]
enum Op {
    /// Deopt oracle: run this one instruction in the switch tier.
    Fallback {
        pc: u32,
    },
    Nop,
    Const {
        v: Value,
        cost: Option<Cost>,
    },
    LdcValue {
        v: Value,
    },
    LdcObj {
        r: ObjRef,
    },
    Load {
        slot: u16,
        cost: Cost,
    },
    Store {
        slot: u16,
        cost: Cost,
    },
    ArrLoad {
        pc: u32,
    },
    ArrStore {
        pc: u32,
    },
    Pop1,
    Pop2,
    Dup,
    DupX1,
    DupX2,
    Dup2,
    Dup2X1,
    Dup2X2,
    Swap,
    IntBin {
        op: u8,
    },
    IntDivRem {
        rem: bool,
        pc: u32,
    },
    IntNeg,
    LongBin {
        op: u8,
    },
    LongDivRem {
        rem: bool,
        pc: u32,
    },
    LongShift {
        op: u8,
    },
    LongNeg,
    FloatBin {
        op: u8,
    },
    DoubleBin {
        op: u8,
    },
    FloatNeg,
    DoubleNeg,
    Iinc {
        slot: u16,
        delta: i32,
    },
    Conv {
        op: u8,
    },
    Lcmp,
    Fcmp {
        greater_on_nan: bool,
    },
    Dcmp {
        greater_on_nan: bool,
    },
    If0 {
        cond: u8,
        t: BranchTarget,
    },
    IfICmp {
        cond: u8,
        t: BranchTarget,
    },
    IfACmp {
        eq: bool,
        t: BranchTarget,
    },
    IfNull {
        when_null: bool,
        t: BranchTarget,
    },
    Goto {
        t: BranchTarget,
    },
    Return {
        has_value: bool,
    },
    GetStatic {
        field: Rc<ResolvedField>,
    },
    PutStatic {
        field: Rc<ResolvedField>,
    },
    GetField {
        field: Rc<ResolvedField>,
        pc: u32,
    },
    PutField {
        field: Rc<ResolvedField>,
        pc: u32,
    },
    Invoke {
        opcode: u8,
        pc: u32,
        next_pc: u32,
        site: Rc<CallSite>,
    },
    New {
        class: ClassId,
    },
    ArrayLength {
        pc: u32,
    },
    /// Superinstruction: `iload a; iload b; <int binop>`.
    LoadLoadIntBin {
        a: u16,
        b: u16,
        op: u8,
    },
    /// Superinstruction: `iinc slot, delta; goto` — the loop latch.
    IincGoto {
        slot: u16,
        delta: i32,
        t: BranchTarget,
    },
    /// Superinstruction: `aload slot; getfield` with the resolved
    /// field baked in.
    LoadGetfield {
        slot: u16,
        field: Rc<ResolvedField>,
        pc: u32,
    },
}

/// A method's direct-threaded form.
#[derive(Debug)]
pub struct TieredCode {
    ops: Vec<Op>,
    /// bytecode pc → tiered ip, [`NO_IP`] where no op starts.
    ip_by_pc: Vec<u32>,
}

impl TieredCode {
    /// The tiered ip for bytecode offset `pc`, if one starts there.
    pub fn entry(&self, pc: usize) -> Option<usize> {
        match self.ip_by_pc.get(pc) {
            Some(&ip) if ip != NO_IP => Some(ip as usize),
            _ => None,
        }
    }

    /// Sentinel stored for methods that failed to compile so the
    /// oracle is consulted exactly once: `entry` never matches.
    fn unrunnable() -> TieredCode {
        TieredCode {
            ops: Vec::new(),
            ip_by_pc: Vec::new(),
        }
    }

    /// Number of tiered ops (0 for the unrunnable sentinel).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of superinstructions in the stream.
    pub fn super_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    Op::LoadLoadIntBin { .. } | Op::IincGoto { .. } | Op::LoadGetfield { .. }
                )
            })
            .count()
    }
}

/// Count a deoptimization — a tiered frame falling back to the switch
/// interpreter for an event the tier cannot handle — and, when
/// tracing, mark it under the `perf` category. Host-side only: never
/// charges the virtual clock.
pub(crate) fn note_deopt(state: &JvmState, ctx: &ThreadContext<'_>, why: &'static str) {
    state.perf.tier_deopt.inc();
    let tracer = state.engine.tracer();
    if tracer.enabled() {
        tracer.instant(
            cat::PERF,
            "tier_deopt",
            state.engine.now_ns(),
            ctx.trace_lane(),
            vec![("kind", why.into())],
        );
    }
}

/// Tier gate for the top frame: returns its tiered code when the
/// method is compiled (or crosses [`TIER_THRESHOLD`] now) *and* the
/// current pc maps to a tiered op head.
pub(crate) fn enter(
    state: &mut JvmState,
    frames: &[Frame],
    ctx: &ThreadContext<'_>,
) -> Option<Rc<TieredCode>> {
    let frame = frames.last()?;
    let blob = &frame.code;
    {
        let cached = blob.tiered.borrow();
        if let Some(tc) = cached.as_ref() {
            return if tc.entry(frame.pc).is_some() {
                Some(tc.clone())
            } else {
                None
            };
        }
    }
    if blob.hotness.get() < TIER_THRESHOLD {
        return None;
    }
    let tc = Rc::new(compile(state, blob).unwrap_or_else(TieredCode::unrunnable));
    if !tc.ops.is_empty() {
        state.perf.tier_compiled.inc();
        let tracer = state.engine.tracer();
        if tracer.enabled() {
            tracer.instant(
                cat::PERF,
                "tier_compile",
                state.engine.now_ns(),
                ctx.trace_lane(),
                vec![("method", blob.name.to_string().into())],
            );
        }
    }
    *blob.tiered.borrow_mut() = Some(tc.clone());
    if tc.entry(frame.pc).is_some() {
        Some(tc)
    } else {
        None
    }
}

// ----------------------------------------------------------------
// Compilation
// ----------------------------------------------------------------

fn read_u16(bc: &[u8], at: usize) -> Option<u16> {
    Some(u16::from_be_bytes([*bc.get(at)?, *bc.get(at + 1)?]))
}

fn read_i16(bc: &[u8], at: usize) -> Option<i16> {
    Some(i16::from_be_bytes([*bc.get(at)?, *bc.get(at + 1)?]))
}

fn read_i32(bc: &[u8], at: usize) -> Option<i32> {
    Some(i32::from_be_bytes([
        *bc.get(at)?,
        *bc.get(at + 1)?,
        *bc.get(at + 2)?,
        *bc.get(at + 3)?,
    ]))
}

/// Total encoded length of the instruction at `pc`, bounds-checked
/// (the interpreter's `fixed_operand_len` assumes well-formed code).
fn decode_len(opcode: u8, bc: &[u8], pc: usize) -> Option<usize> {
    use doppio_classfile::opcodes::{INFO, VARIABLE};
    let info = INFO[opcode as usize];
    if info.operands != VARIABLE {
        return Some(1 + info.operands as usize);
    }
    match opcode {
        op::WIDE => {
            if *bc.get(pc + 1)? == op::IINC {
                Some(6)
            } else {
                Some(4)
            }
        }
        op::TABLESWITCH => {
            let base = (pc + 4) & !3;
            let low = read_i32(bc, base + 4)?;
            let high = read_i32(bc, base + 8)?;
            let n = i64::from(high) - i64::from(low) + 1;
            if n < 0 || n > bc.len() as i64 {
                return None;
            }
            Some(base + 12 + 4 * n as usize - pc)
        }
        op::LOOKUPSWITCH => {
            let base = (pc + 4) & !3;
            let npairs = read_i32(bc, base + 4)?;
            if npairs < 0 || npairs as i64 * 8 > bc.len() as i64 {
                return None;
            }
            Some(base + 8 + 8 * npairs as usize - pc)
        }
        _ => Some(1),
    }
}

/// All control-flow targets of the instruction at `pc` (branch
/// targets, switch entries, the return point after a `jsr`). `None`
/// means the encoding is malformed.
fn branch_targets(opcode: u8, bc: &[u8], pc: usize, len: usize) -> Option<Vec<usize>> {
    let rel16 = |out: &mut Vec<usize>| -> Option<()> {
        let off = read_i16(bc, pc + 1)? as i64;
        out.push(usize::try_from(pc as i64 + off).ok()?);
        Some(())
    };
    let mut out = Vec::new();
    match opcode {
        op::IFEQ..=op::IFLE
        | op::IF_ICMPEQ..=op::IF_ICMPLE
        | op::IF_ACMPEQ
        | op::IF_ACMPNE
        | op::IFNULL
        | op::IFNONNULL
        | op::GOTO => rel16(&mut out)?,
        op::JSR => {
            rel16(&mut out)?;
            out.push(pc + len);
        }
        op::GOTO_W => {
            let off = read_i32(bc, pc + 1)? as i64;
            out.push(usize::try_from(pc as i64 + off).ok()?);
        }
        op::JSR_W => {
            let off = read_i32(bc, pc + 1)? as i64;
            out.push(usize::try_from(pc as i64 + off).ok()?);
            out.push(pc + len);
        }
        op::TABLESWITCH => {
            let base = (pc + 4) & !3;
            out.push(usize::try_from(pc as i64 + read_i32(bc, base)? as i64).ok()?);
            let low = read_i32(bc, base + 4)?;
            let high = read_i32(bc, base + 8)?;
            for e in 0..(i64::from(high) - i64::from(low) + 1) as usize {
                let off = read_i32(bc, base + 12 + 4 * e)? as i64;
                out.push(usize::try_from(pc as i64 + off).ok()?);
            }
        }
        op::LOOKUPSWITCH => {
            let base = (pc + 4) & !3;
            out.push(usize::try_from(pc as i64 + read_i32(bc, base)? as i64).ok()?);
            let npairs = read_i32(bc, base + 4)? as usize;
            for p in 0..npairs {
                let off = read_i32(bc, base + 8 + 8 * p + 4)? as i64;
                out.push(usize::try_from(pc as i64 + off).ok()?);
            }
        }
        _ => {}
    }
    Some(out)
}

/// Local slot of an int-load at `pc`, if it is one.
fn int_load_slot(opcode: u8, bc: &[u8], pc: usize) -> Option<u16> {
    match opcode {
        op::ILOAD => Some(u16::from(bc[pc + 1])),
        op::ILOAD_0..=op::ILOAD_3 => Some(u16::from(opcode - op::ILOAD_0)),
        _ => None,
    }
}

/// Local slot of a reference load at `pc`, if it is one.
fn aload_slot(opcode: u8, bc: &[u8], pc: usize) -> Option<u16> {
    match opcode {
        op::ALOAD => Some(u16::from(bc[pc + 1])),
        op::ALOAD_0..=op::ALOAD_3 => Some(u16::from(opcode - op::ALOAD_0)),
        _ => None,
    }
}

/// Int binops eligible as superinstruction tails (no div/rem: those
/// can throw and stay single ops).
fn is_int_bin(opcode: u8) -> bool {
    matches!(
        opcode,
        op::IADD
            | op::ISUB
            | op::IMUL
            | op::ISHL
            | op::ISHR
            | op::IUSHR
            | op::IAND
            | op::IOR
            | op::IXOR
    )
}

/// The quickened field entry at `idx` of `class`, if installed.
fn quickened_field(state: &JvmState, class: ClassId, idx: u16) -> Option<Rc<ResolvedField>> {
    match state.registry.get(class).cp_cache.borrow().get(&idx) {
        Some(CpEntry::Field(f)) => Some(f.clone()),
        _ => None,
    }
}

/// Compile a method to its direct-threaded form. Bakes ONLY state
/// that is already quickened (cp-cache entries, existing call sites)
/// so quickening transitions happen at identical program points in
/// both tiers; everything else becomes [`Op::Fallback`]. `None` on
/// malformed bytecode — the switch interpreter owns its error path.
fn compile(state: &JvmState, blob: &CodeBlob) -> Option<TieredCode> {
    let bc: &[u8] = &blob.bytecode;
    if bc.is_empty() {
        return None;
    }

    // Pass 1: instruction boundaries.
    struct Ins {
        pc: usize,
        opcode: u8,
        len: usize,
    }
    let mut ins: Vec<Ins> = Vec::new();
    let mut head = vec![false; bc.len()];
    let mut pc = 0usize;
    while pc < bc.len() {
        let opcode = bc[pc];
        let len = decode_len(opcode, bc, pc)?;
        if len == 0 || pc + len > bc.len() {
            return None;
        }
        head[pc] = true;
        ins.push(Ins { pc, opcode, len });
        pc += len;
    }

    // Pass 2: leaders — pcs that control flow can enter. Fusion must
    // never swallow a leader as a superinstruction middle, or a
    // branch/handler/deopt resume would land inside a fused op.
    let mut leader = vec![false; bc.len()];
    leader[0] = true;
    for e in &blob.exceptions {
        let h = e.handler_pc as usize;
        if h >= bc.len() || !head[h] {
            return None;
        }
        leader[h] = true;
    }
    for i in &ins {
        for t in branch_targets(i.opcode, bc, i.pc, i.len)? {
            if t >= bc.len() || !head[t] {
                return None;
            }
            leader[t] = true;
        }
    }

    // Pass 3: fuse and translate.
    let mut ops: Vec<Op> = Vec::with_capacity(ins.len());
    let mut ip_by_pc = vec![NO_IP; bc.len()];
    let mut i = 0usize;
    while i < ins.len() {
        let cur = &ins[i];
        ip_by_pc[cur.pc] = ops.len() as u32;

        // iload; iload; <int binop>
        if i + 2 < ins.len() {
            let (n1, n2) = (&ins[i + 1], &ins[i + 2]);
            if !leader[n1.pc] && !leader[n2.pc] && is_int_bin(n2.opcode) {
                if let (Some(a), Some(b)) = (
                    int_load_slot(cur.opcode, bc, cur.pc),
                    int_load_slot(n1.opcode, bc, n1.pc),
                ) {
                    ops.push(Op::LoadLoadIntBin {
                        a,
                        b,
                        op: n2.opcode,
                    });
                    i += 3;
                    continue;
                }
            }
        }
        // aload; getfield (quickened)
        if i + 1 < ins.len() {
            let n1 = &ins[i + 1];
            if n1.opcode == op::GETFIELD && !leader[n1.pc] {
                if let (Some(slot), Some(idx)) =
                    (aload_slot(cur.opcode, bc, cur.pc), read_u16(bc, n1.pc + 1))
                {
                    if let Some(field) = quickened_field(state, blob.class, idx) {
                        ops.push(Op::LoadGetfield {
                            slot,
                            field,
                            pc: n1.pc as u32,
                        });
                        i += 2;
                        continue;
                    }
                }
            }
        }
        // iinc; goto — the loop latch
        if cur.opcode == op::IINC && i + 1 < ins.len() {
            let n1 = &ins[i + 1];
            if n1.opcode == op::GOTO && !leader[n1.pc] {
                let off = read_i16(bc, n1.pc + 1)? as i64;
                let target = usize::try_from(n1.pc as i64 + off).ok()?;
                ops.push(Op::IincGoto {
                    slot: u16::from(bc[cur.pc + 1]),
                    delta: bc[cur.pc + 2] as i8 as i32,
                    t: BranchTarget::unresolved(target, n1.pc),
                });
                i += 2;
                continue;
            }
        }

        ops.push(translate(state, blob, bc, cur.pc, cur.opcode, cur.len)?);
        i += 1;
    }

    // Pass 4: resolve branch targets to tiered ips.
    for o in &mut ops {
        let t = match o {
            Op::If0 { t, .. }
            | Op::IfICmp { t, .. }
            | Op::IfACmp { t, .. }
            | Op::IfNull { t, .. }
            | Op::Goto { t }
            | Op::IincGoto { t, .. } => t,
            _ => continue,
        };
        let ip = ip_by_pc[t.pc as usize];
        if ip == NO_IP {
            return None;
        }
        t.ip = ip;
    }

    Some(TieredCode { ops, ip_by_pc })
}

/// Translate one instruction; anything not baked becomes `Fallback`.
fn translate(
    state: &JvmState,
    blob: &CodeBlob,
    bc: &[u8],
    pc: usize,
    opcode: u8,
    len: usize,
) -> Option<Op> {
    let fallback = Op::Fallback { pc: pc as u32 };
    let branch16 = |bc: &[u8]| -> Option<BranchTarget> {
        let off = read_i16(bc, pc + 1)? as i64;
        Some(BranchTarget::unresolved(
            usize::try_from(pc as i64 + off).ok()?,
            pc,
        ))
    };
    Some(match opcode {
        op::NOP => Op::Nop,
        op::ACONST_NULL => Op::Const {
            v: Value::null(),
            cost: None,
        },
        op::ICONST_M1..=op::ICONST_5 => Op::Const {
            v: Value::Int(opcode as i32 - op::ICONST_0 as i32),
            cost: Some(Cost::IntOp),
        },
        op::LCONST_0 | op::LCONST_1 => Op::Const {
            v: Value::Long((opcode - op::LCONST_0) as i64),
            cost: Some(Cost::LongOp),
        },
        op::FCONST_0..=op::FCONST_2 => Op::Const {
            v: Value::Float((opcode - op::FCONST_0) as f32),
            cost: Some(Cost::FloatOp),
        },
        op::DCONST_0 | op::DCONST_1 => Op::Const {
            v: Value::Double((opcode - op::DCONST_0) as f64),
            cost: Some(Cost::FloatOp),
        },
        op::BIPUSH => Op::Const {
            v: Value::Int(bc[pc + 1] as i8 as i32),
            cost: Some(Cost::IntOp),
        },
        op::SIPUSH => Op::Const {
            v: Value::Int(read_i16(bc, pc + 1)? as i32),
            cost: Some(Cost::IntOp),
        },
        op::LDC | op::LDC_W | op::LDC2_W => {
            let idx = if opcode == op::LDC {
                u16::from(bc[pc + 1])
            } else {
                read_u16(bc, pc + 1)?
            };
            match state.registry.get(blob.class).cp_cache.borrow().get(&idx) {
                Some(CpEntry::Value(v)) => Op::LdcValue { v: *v },
                Some(CpEntry::Obj(r)) => Op::LdcObj { r: *r },
                Some(CpEntry::Class(cc)) => match cc.mirror.get() {
                    Some(r) => Op::LdcObj { r },
                    None => fallback,
                },
                _ => fallback,
            }
        }

        op::ILOAD | op::FLOAD | op::ALOAD => Op::Load {
            slot: u16::from(bc[pc + 1]),
            cost: Cost::IntOp,
        },
        op::LLOAD | op::DLOAD => Op::Load {
            slot: u16::from(bc[pc + 1]),
            cost: Cost::LongOp,
        },
        op::ILOAD_0..=op::ILOAD_3 => Op::Load {
            slot: u16::from(opcode - op::ILOAD_0),
            cost: Cost::IntOp,
        },
        op::LLOAD_0..=op::LLOAD_3 => Op::Load {
            slot: u16::from(opcode - op::LLOAD_0),
            cost: Cost::LongOp,
        },
        op::FLOAD_0..=op::FLOAD_3 => Op::Load {
            slot: u16::from(opcode - op::FLOAD_0),
            cost: Cost::FloatOp,
        },
        op::DLOAD_0..=op::DLOAD_3 => Op::Load {
            slot: u16::from(opcode - op::DLOAD_0),
            cost: Cost::FloatOp,
        },
        op::ALOAD_0..=op::ALOAD_3 => Op::Load {
            slot: u16::from(opcode - op::ALOAD_0),
            cost: Cost::IntOp,
        },

        op::IALOAD
        | op::LALOAD
        | op::FALOAD
        | op::DALOAD
        | op::AALOAD
        | op::BALOAD
        | op::CALOAD
        | op::SALOAD => Op::ArrLoad { pc: pc as u32 },

        op::ISTORE | op::FSTORE | op::ASTORE => Op::Store {
            slot: u16::from(bc[pc + 1]),
            cost: Cost::IntOp,
        },
        op::LSTORE | op::DSTORE => Op::Store {
            slot: u16::from(bc[pc + 1]),
            cost: Cost::LongOp,
        },
        op::ISTORE_0..=op::ISTORE_3 => Op::Store {
            slot: u16::from(opcode - op::ISTORE_0),
            cost: Cost::IntOp,
        },
        op::LSTORE_0..=op::LSTORE_3 => Op::Store {
            slot: u16::from(opcode - op::LSTORE_0),
            cost: Cost::LongOp,
        },
        op::FSTORE_0..=op::FSTORE_3 => Op::Store {
            slot: u16::from(opcode - op::FSTORE_0),
            cost: Cost::FloatOp,
        },
        op::DSTORE_0..=op::DSTORE_3 => Op::Store {
            slot: u16::from(opcode - op::DSTORE_0),
            cost: Cost::FloatOp,
        },
        op::ASTORE_0..=op::ASTORE_3 => Op::Store {
            slot: u16::from(opcode - op::ASTORE_0),
            cost: Cost::IntOp,
        },

        op::IASTORE
        | op::LASTORE
        | op::FASTORE
        | op::DASTORE
        | op::AASTORE
        | op::BASTORE
        | op::CASTORE
        | op::SASTORE => Op::ArrStore { pc: pc as u32 },

        op::POP => Op::Pop1,
        op::POP2 => Op::Pop2,
        op::DUP => Op::Dup,
        op::DUP_X1 => Op::DupX1,
        op::DUP_X2 => Op::DupX2,
        op::DUP2 => Op::Dup2,
        op::DUP2_X1 => Op::Dup2X1,
        op::DUP2_X2 => Op::Dup2X2,
        op::SWAP => Op::Swap,

        op::IADD
        | op::ISUB
        | op::IMUL
        | op::ISHL
        | op::ISHR
        | op::IUSHR
        | op::IAND
        | op::IOR
        | op::IXOR => Op::IntBin { op: opcode },
        op::IDIV | op::IREM => Op::IntDivRem {
            rem: opcode == op::IREM,
            pc: pc as u32,
        },
        op::INEG => Op::IntNeg,
        op::LADD | op::LSUB | op::LMUL | op::LAND | op::LOR | op::LXOR => {
            Op::LongBin { op: opcode }
        }
        op::LDIV | op::LREM => Op::LongDivRem {
            rem: opcode == op::LREM,
            pc: pc as u32,
        },
        op::LSHL | op::LSHR | op::LUSHR => Op::LongShift { op: opcode },
        op::LNEG => Op::LongNeg,
        op::FADD | op::FSUB | op::FMUL | op::FDIV | op::FREM => Op::FloatBin { op: opcode },
        op::DADD | op::DSUB | op::DMUL | op::DDIV | op::DREM => Op::DoubleBin { op: opcode },
        op::FNEG => Op::FloatNeg,
        op::DNEG => Op::DoubleNeg,

        op::IINC => Op::Iinc {
            slot: u16::from(bc[pc + 1]),
            delta: bc[pc + 2] as i8 as i32,
        },

        op::I2L
        | op::I2F
        | op::I2D
        | op::L2I
        | op::L2F
        | op::L2D
        | op::F2I
        | op::F2L
        | op::F2D
        | op::D2I
        | op::D2L
        | op::D2F
        | op::I2B
        | op::I2C
        | op::I2S => Op::Conv { op: opcode },

        op::LCMP => Op::Lcmp,
        op::FCMPL | op::FCMPG => Op::Fcmp {
            greater_on_nan: opcode == op::FCMPG,
        },
        op::DCMPL | op::DCMPG => Op::Dcmp {
            greater_on_nan: opcode == op::DCMPG,
        },

        op::IFEQ..=op::IFLE => Op::If0 {
            cond: opcode,
            t: branch16(bc)?,
        },
        op::IF_ICMPEQ..=op::IF_ICMPLE => Op::IfICmp {
            cond: opcode,
            t: branch16(bc)?,
        },
        op::IF_ACMPEQ | op::IF_ACMPNE => Op::IfACmp {
            eq: opcode == op::IF_ACMPEQ,
            t: branch16(bc)?,
        },
        op::IFNULL | op::IFNONNULL => Op::IfNull {
            when_null: opcode == op::IFNULL,
            t: branch16(bc)?,
        },
        op::GOTO => Op::Goto { t: branch16(bc)? },
        op::GOTO_W => {
            let off = read_i32(bc, pc + 1)? as i64;
            Op::Goto {
                t: BranchTarget::unresolved(usize::try_from(pc as i64 + off).ok()?, pc),
            }
        }

        op::IRETURN | op::LRETURN | op::FRETURN | op::DRETURN | op::ARETURN | op::RETURN => {
            Op::Return {
                has_value: opcode != op::RETURN,
            }
        }

        op::GETSTATIC | op::PUTSTATIC => {
            match quickened_field(state, blob.class, read_u16(bc, pc + 1)?) {
                Some(field) if opcode == op::GETSTATIC => Op::GetStatic { field },
                Some(field) => Op::PutStatic { field },
                None => fallback,
            }
        }
        op::GETFIELD | op::PUTFIELD => {
            match quickened_field(state, blob.class, read_u16(bc, pc + 1)?) {
                Some(field) if opcode == op::GETFIELD => Op::GetField {
                    field,
                    pc: pc as u32,
                },
                Some(field) => Op::PutField {
                    field,
                    pc: pc as u32,
                },
                None => fallback,
            }
        }

        op::INVOKEVIRTUAL | op::INVOKESPECIAL | op::INVOKESTATIC | op::INVOKEINTERFACE => {
            match blob.ics.borrow().get(&pc) {
                Some(site) => Op::Invoke {
                    opcode,
                    pc: pc as u32,
                    next_pc: (pc + len) as u32,
                    site: site.clone(),
                },
                None => fallback,
            }
        }

        op::NEW => {
            let idx = read_u16(bc, pc + 1)?;
            match state.registry.get(blob.class).cp_cache.borrow().get(&idx) {
                Some(CpEntry::Class(cc)) => match cc.init_id.get() {
                    Some(id) => Op::New { class: id },
                    None => fallback,
                },
                _ => fallback,
            }
        }

        op::ARRAYLENGTH => Op::ArrayLength { pc: pc as u32 },

        // Everything else — switches, jsr/ret, monitors, allocation
        // with side conditions, athrow, checkcast, wide — deopts to
        // the oracle for that one instruction.
        _ => fallback,
    })
}

// ----------------------------------------------------------------
// Execution
// ----------------------------------------------------------------

/// Run the top frame's tiered code from its current pc until the
/// thread must leave the tier: a frame push/pop, a block, a deopt to
/// an unmapped pc, or a backedge suspend check.
///
/// Charge parity with [`interp::step`] is the whole contract here:
/// each op replays the switch interpreter's exact `instructions`
/// increment, `Cost` sequence and cache-counter bumps — fused
/// superinstructions replay one sequence *per fused sub-op* (never a
/// single `charge_n`, whose paging adjustment is non-linear).
pub(crate) fn run_tiered(
    state: &mut JvmState,
    frames: &mut Vec<Frame>,
    ctx: &mut ThreadContext<'_>,
    tid: ThreadId,
    code: &Rc<TieredCode>,
) -> StepResult {
    // Identity of the frame we entered with: after a sub-call returns
    // `Continue` (handled exception, synchronous native, fallback
    // step) we may only resume direct-threading if the top frame is
    // still the same activation of the same method.
    let entry_depth = frames.len();
    let entry_blob = Rc::as_ptr(&frames.last().expect("tiered frame").code);
    let mut ip = match code.entry(frames.last().expect("tiered frame").pc) {
        Some(ip) => ip,
        None => return StepResult::Continue,
    };

    macro_rules! exit_or_resync {
        ($sr:expr) => {{
            match $sr {
                StepResult::Continue => {
                    let same = frames.len() == entry_depth
                        && frames
                            .last()
                            .map(|f| Rc::as_ptr(&f.code) == entry_blob)
                            .unwrap_or(false);
                    if same {
                        match code.entry(frames.last().expect("tiered frame").pc) {
                            Some(next) => {
                                ip = next;
                                continue;
                            }
                            None => return StepResult::Continue,
                        }
                    }
                    return StepResult::Continue;
                }
                other => return other,
            }
        }};
    }

    // Taken branch: backward edges replicate the switch interpreter's
    // instrumented suspend check (charged IntOp + CallBoundary) when
    // `check_backedges` is on; otherwise direct-thread to the target.
    macro_rules! take_branch {
        ($t:expr) => {{
            let t = $t;
            if t.backedge && state.check_backedges {
                frames.last_mut().expect("tiered frame").pc = t.pc as usize;
                state.engine.charge(Cost::IntOp);
                return StepResult::CallBoundary;
            }
            ip = t.ip as usize;
            continue;
        }};
    }

    macro_rules! throw_at {
        ($pc:expr, $class:expr, $msg:expr) => {{
            frames.last_mut().expect("tiered frame").pc = $pc as usize;
            note_deopt(state, ctx, "throw");
            let sr = interp::throw_vm(state, frames, ctx, tid, $class, $msg);
            exit_or_resync!(sr);
        }};
    }

    loop {
        let Some(cur) = code.ops.get(ip) else {
            // Ran off the end of the stream (malformed code that does
            // not end in a return): materialize the out-of-range pc
            // and let the oracle produce its InternalError.
            frames.last_mut().expect("tiered frame").pc = code.ip_by_pc.len();
            return StepResult::Continue;
        };
        match cur {
            Op::Fallback { pc } => {
                frames.last_mut().expect("tiered frame").pc = *pc as usize;
                let sr = interp::step(state, frames, ctx, tid);
                exit_or_resync!(sr);
            }

            Op::Nop => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                ip += 1;
            }
            Op::Const { v, cost } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                if let Some(c) = cost {
                    state.engine.charge(*c);
                }
                frames.last_mut().expect("tiered frame").push(*v);
                ip += 1;
            }
            Op::LdcValue { v } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.perf.cp_hit.inc();
                if matches!(v, Value::Long(_)) {
                    state.engine.charge(Cost::LongOp);
                }
                frames.last_mut().expect("tiered frame").push(*v);
                ip += 1;
            }
            Op::LdcObj { r } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.perf.cp_hit.inc();
                state.engine.charge(Cost::MapOp);
                frames
                    .last_mut()
                    .expect("tiered frame")
                    .push(Value::Ref(Some(*r)));
                ip += 1;
            }

            Op::Load { slot, cost } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(*cost);
                let f = frames.last_mut().expect("tiered frame");
                let v = f.local(*slot as usize);
                f.push(v);
                ip += 1;
            }
            Op::Store { slot, cost } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(*cost);
                let f = frames.last_mut().expect("tiered frame");
                let v = f.pop();
                f.set_local(*slot as usize, v);
                ip += 1;
            }

            Op::ArrLoad { pc } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::ArrayGet);
                let (index, arr) = {
                    let f = frames.last_mut().expect("tiered frame");
                    (f.pop_int(), f.pop_ref())
                };
                let Some(arr) = arr else {
                    throw_at!(*pc, "java/lang/NullPointerException", "array load");
                };
                let len = state.heap.get(arr).array_len().unwrap_or(0);
                if index < 0 || index as usize >= len {
                    throw_at!(
                        *pc,
                        "java/lang/ArrayIndexOutOfBoundsException",
                        &format!("index {index}, length {len}")
                    );
                }
                let i = index as usize;
                let v = match state.heap.get(arr) {
                    HeapObj::ArrayInt(v) => Value::Int(v[i]),
                    HeapObj::ArrayLong(v) => Value::Long(v[i]),
                    HeapObj::ArrayFloat(v) => Value::Float(v[i]),
                    HeapObj::ArrayDouble(v) => Value::Double(v[i]),
                    HeapObj::ArrayByte(v) => Value::Int(v[i] as i32),
                    HeapObj::ArrayChar(v) => Value::Int(v[i] as i32),
                    HeapObj::ArrayShort(v) => Value::Int(v[i] as i32),
                    HeapObj::ArrayRef { data, .. } => Value::Ref(data[i]),
                    _ => {
                        throw_at!(*pc, "java/lang/InternalError", "not an array");
                    }
                };
                frames.last_mut().expect("tiered frame").push(v);
                ip += 1;
            }
            Op::ArrStore { pc } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::ArrayPut);
                let (value, index, arr) = {
                    let f = frames.last_mut().expect("tiered frame");
                    (f.pop(), f.pop_int(), f.pop_ref())
                };
                let Some(arr) = arr else {
                    throw_at!(*pc, "java/lang/NullPointerException", "array store");
                };
                let len = state.heap.get(arr).array_len().unwrap_or(0);
                if index < 0 || index as usize >= len {
                    throw_at!(
                        *pc,
                        "java/lang/ArrayIndexOutOfBoundsException",
                        &format!("index {index}, length {len}")
                    );
                }
                let i = index as usize;
                match (state.heap.get_mut(arr), value) {
                    (HeapObj::ArrayInt(v), Value::Int(x)) => v[i] = x,
                    (HeapObj::ArrayLong(v), Value::Long(x)) => v[i] = x,
                    (HeapObj::ArrayFloat(v), Value::Float(x)) => v[i] = x,
                    (HeapObj::ArrayDouble(v), Value::Double(x)) => v[i] = x,
                    (HeapObj::ArrayByte(v), Value::Int(x)) => v[i] = x as i8,
                    (HeapObj::ArrayChar(v), Value::Int(x)) => v[i] = x as u16,
                    (HeapObj::ArrayShort(v), Value::Int(x)) => v[i] = x as i16,
                    (HeapObj::ArrayRef { data, .. }, Value::Ref(r)) => data[i] = r,
                    _ => {
                        throw_at!(
                            *pc,
                            "java/lang/ArrayStoreException",
                            "element type mismatch"
                        );
                    }
                }
                ip += 1;
            }

            Op::Pop1 => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                frames.last_mut().expect("tiered frame").pop_slot();
                ip += 1;
            }
            Op::Pop2 => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                let f = frames.last_mut().expect("tiered frame");
                f.pop_slot();
                f.pop_slot();
                ip += 1;
            }
            Op::Dup => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                let f = frames.last_mut().expect("tiered frame");
                let v = *f.peek(0);
                f.stack.push(v);
                ip += 1;
            }
            Op::DupX1 => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                let f = frames.last_mut().expect("tiered frame");
                let v1 = f.pop_slot();
                let v2 = f.pop_slot();
                f.stack.push(v1);
                f.stack.push(v2);
                f.stack.push(v1);
                ip += 1;
            }
            Op::DupX2 => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                let f = frames.last_mut().expect("tiered frame");
                let v1 = f.pop_slot();
                let v2 = f.pop_slot();
                let v3 = f.pop_slot();
                f.stack.push(v1);
                f.stack.push(v3);
                f.stack.push(v2);
                f.stack.push(v1);
                ip += 1;
            }
            Op::Dup2 => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                let f = frames.last_mut().expect("tiered frame");
                let v1 = *f.peek(0);
                let v2 = *f.peek(1);
                f.stack.push(v2);
                f.stack.push(v1);
                ip += 1;
            }
            Op::Dup2X1 => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                let f = frames.last_mut().expect("tiered frame");
                let v1 = f.pop_slot();
                let v2 = f.pop_slot();
                let v3 = f.pop_slot();
                f.stack.push(v2);
                f.stack.push(v1);
                f.stack.push(v3);
                f.stack.push(v2);
                f.stack.push(v1);
                ip += 1;
            }
            Op::Dup2X2 => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                let f = frames.last_mut().expect("tiered frame");
                let v1 = f.pop_slot();
                let v2 = f.pop_slot();
                let v3 = f.pop_slot();
                let v4 = f.pop_slot();
                f.stack.push(v2);
                f.stack.push(v1);
                f.stack.push(v4);
                f.stack.push(v3);
                f.stack.push(v2);
                f.stack.push(v1);
                ip += 1;
            }
            Op::Swap => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                let f = frames.last_mut().expect("tiered frame");
                let v1 = f.pop_slot();
                let v2 = f.pop_slot();
                f.stack.push(v1);
                f.stack.push(v2);
                ip += 1;
            }

            Op::IntBin { op: bop } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::IntOp);
                let f = frames.last_mut().expect("tiered frame");
                let b = f.pop_int();
                let a = f.pop_int();
                f.push(Value::Int(int_bin(*bop, a, b)));
                ip += 1;
            }
            Op::IntDivRem { rem, pc } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::IntOp);
                let (a, b) = {
                    let f = frames.last_mut().expect("tiered frame");
                    let b = f.pop_int();
                    let a = f.pop_int();
                    (a, b)
                };
                if b == 0 {
                    throw_at!(*pc, "java/lang/ArithmeticException", "/ by zero");
                }
                let r = if *rem {
                    a.wrapping_rem(b)
                } else {
                    a.wrapping_div(b)
                };
                frames.last_mut().expect("tiered frame").push(Value::Int(r));
                ip += 1;
            }
            Op::IntNeg => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::IntOp);
                let f = frames.last_mut().expect("tiered frame");
                let a = f.pop_int();
                f.push(Value::Int(a.wrapping_neg()));
                ip += 1;
            }

            Op::LongBin { op: bop } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::LongOp);
                let f = frames.last_mut().expect("tiered frame");
                let b = f.pop_long();
                let a = f.pop_long();
                let r = match *bop {
                    op::LADD => a.wrapping_add(b),
                    op::LSUB => a.wrapping_sub(b),
                    op::LMUL => a.wrapping_mul(b),
                    op::LAND => a & b,
                    op::LOR => a | b,
                    _ => a ^ b,
                };
                f.push(Value::Long(r));
                ip += 1;
            }
            Op::LongDivRem { rem, pc } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::LongOp);
                let (a, b) = {
                    let f = frames.last_mut().expect("tiered frame");
                    let b = f.pop_long();
                    let a = f.pop_long();
                    (a, b)
                };
                if b == 0 {
                    throw_at!(*pc, "java/lang/ArithmeticException", "/ by zero");
                }
                let r = if *rem {
                    a.wrapping_rem(b)
                } else {
                    a.wrapping_div(b)
                };
                frames
                    .last_mut()
                    .expect("tiered frame")
                    .push(Value::Long(r));
                ip += 1;
            }
            Op::LongShift { op: bop } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::LongOp);
                let f = frames.last_mut().expect("tiered frame");
                let b = f.pop_int();
                let a = f.pop_long();
                let s = b as u32 & 63;
                let r = match *bop {
                    op::LSHL => a.wrapping_shl(s),
                    op::LSHR => a.wrapping_shr(s),
                    _ => ((a as u64).wrapping_shr(s)) as i64,
                };
                f.push(Value::Long(r));
                ip += 1;
            }
            Op::LongNeg => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::LongOp);
                let f = frames.last_mut().expect("tiered frame");
                let a = f.pop_long();
                f.push(Value::Long(a.wrapping_neg()));
                ip += 1;
            }

            Op::FloatBin { op: bop } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::FloatOp);
                let f = frames.last_mut().expect("tiered frame");
                let b = f.pop_float();
                let a = f.pop_float();
                let r = match *bop {
                    op::FADD => a + b,
                    op::FSUB => a - b,
                    op::FMUL => a * b,
                    op::FDIV => a / b,
                    _ => a % b,
                };
                f.push(Value::Float(r));
                ip += 1;
            }
            Op::DoubleBin { op: bop } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::FloatOp);
                let f = frames.last_mut().expect("tiered frame");
                let b = f.pop_double();
                let a = f.pop_double();
                let r = match *bop {
                    op::DADD => a + b,
                    op::DSUB => a - b,
                    op::DMUL => a * b,
                    op::DDIV => a / b,
                    _ => a % b,
                };
                f.push(Value::Double(r));
                ip += 1;
            }
            Op::FloatNeg => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::FloatOp);
                let f = frames.last_mut().expect("tiered frame");
                let a = f.pop_float();
                f.push(Value::Float(-a));
                ip += 1;
            }
            Op::DoubleNeg => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::FloatOp);
                let f = frames.last_mut().expect("tiered frame");
                let a = f.pop_double();
                f.push(Value::Double(-a));
                ip += 1;
            }

            Op::Iinc { slot, delta } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::IntOp);
                let f = frames.last_mut().expect("tiered frame");
                let v = f.local(*slot as usize).as_int();
                f.set_local(*slot as usize, Value::Int(v.wrapping_add(*delta)));
                ip += 1;
            }

            Op::Conv { op: cop } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                let cop = *cop;
                state.engine.charge(conv_cost(cop));
                let f = frames.last_mut().expect("tiered frame");
                let v = match cop {
                    op::I2L => Value::Long(f.pop_int() as i64),
                    op::I2F => Value::Float(f.pop_int() as f32),
                    op::I2D => Value::Double(f.pop_int() as f64),
                    op::L2I => Value::Int(f.pop_long() as i32),
                    op::L2F => Value::Float(f.pop_long() as f32),
                    op::L2D => Value::Double(f.pop_long() as f64),
                    op::F2I => Value::Int(interp::f2i(f.pop_float() as f64)),
                    op::F2L => Value::Long(interp::f2l(f.pop_float() as f64)),
                    op::F2D => Value::Double(f.pop_float() as f64),
                    op::D2I => Value::Int(interp::f2i(f.pop_double())),
                    op::D2L => Value::Long(interp::f2l(f.pop_double())),
                    op::D2F => Value::Float(f.pop_double() as f32),
                    op::I2B => Value::Int(f.pop_int() as i8 as i32),
                    op::I2C => Value::Int(f.pop_int() as u16 as i32),
                    _ => Value::Int(f.pop_int() as i16 as i32),
                };
                f.push(v);
                ip += 1;
            }

            Op::Lcmp => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::LongOp);
                let f = frames.last_mut().expect("tiered frame");
                let b = f.pop_long();
                let a = f.pop_long();
                f.push(Value::Int(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }));
                ip += 1;
            }
            Op::Fcmp { greater_on_nan } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::FloatOp);
                let f = frames.last_mut().expect("tiered frame");
                let b = f.pop_float();
                let a = f.pop_float();
                f.push(Value::Int(interp::fp_cmp(
                    a as f64,
                    b as f64,
                    *greater_on_nan,
                )));
                ip += 1;
            }
            Op::Dcmp { greater_on_nan } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::FloatOp);
                let f = frames.last_mut().expect("tiered frame");
                let b = f.pop_double();
                let a = f.pop_double();
                f.push(Value::Int(interp::fp_cmp(a, b, *greater_on_nan)));
                ip += 1;
            }

            Op::If0 { cond, t } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::Branch);
                let v = frames.last_mut().expect("tiered frame").pop_int();
                let taken = match *cond {
                    op::IFEQ => v == 0,
                    op::IFNE => v != 0,
                    op::IFLT => v < 0,
                    op::IFGE => v >= 0,
                    op::IFGT => v > 0,
                    _ => v <= 0,
                };
                if taken {
                    take_branch!(t);
                }
                ip += 1;
            }
            Op::IfICmp { cond, t } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::Branch);
                let f = frames.last_mut().expect("tiered frame");
                let b = f.pop_int();
                let a = f.pop_int();
                let taken = match *cond {
                    op::IF_ICMPEQ => a == b,
                    op::IF_ICMPNE => a != b,
                    op::IF_ICMPLT => a < b,
                    op::IF_ICMPGE => a >= b,
                    op::IF_ICMPGT => a > b,
                    _ => a <= b,
                };
                if taken {
                    take_branch!(t);
                }
                ip += 1;
            }
            Op::IfACmp { eq, t } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::Branch);
                let f = frames.last_mut().expect("tiered frame");
                let b = f.pop_ref();
                let a = f.pop_ref();
                if (a == b) == *eq {
                    take_branch!(t);
                }
                ip += 1;
            }
            Op::IfNull { when_null, t } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::Branch);
                let v = frames.last_mut().expect("tiered frame").pop_ref();
                if v.is_none() == *when_null {
                    take_branch!(t);
                }
                ip += 1;
            }
            Op::Goto { t } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::Branch);
                take_branch!(t);
            }

            Op::Return { has_value } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                let value = if *has_value {
                    Some(frames.last_mut().expect("tiered frame").pop())
                } else {
                    None
                };
                return interp::do_return(state, frames, ctx, tid, value);
            }

            Op::GetStatic { field } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.perf.cp_hit.inc();
                state.engine.charge(Cost::MapOp);
                state.engine.charge(Cost::FieldGet);
                let v = state
                    .registry
                    .get(field.class)
                    .statics
                    .get(&*field.key)
                    .copied()
                    .unwrap_or(field.default);
                frames.last_mut().expect("tiered frame").push(v);
                ip += 1;
            }
            Op::PutStatic { field } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.perf.cp_hit.inc();
                state.engine.charge(Cost::MapOp);
                state.engine.charge(Cost::FieldPut);
                let v = frames.last_mut().expect("tiered frame").pop();
                let statics = &mut state.registry.get_mut(field.class).statics;
                if let Some(slot) = statics.get_mut(&*field.key) {
                    *slot = v;
                } else {
                    statics.insert(field.key.to_string(), v);
                }
                ip += 1;
            }
            Op::GetField { field, pc } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.perf.cp_hit.inc();
                state.engine.charge(Cost::MapOp);
                state.engine.charge(Cost::FieldGet);
                let obj = frames.last_mut().expect("tiered frame").pop_ref();
                let Some(obj) = obj else {
                    throw_at!(
                        *pc,
                        "java/lang/NullPointerException",
                        &format!("getfield {}", field.key)
                    );
                };
                let v = match state.heap.get(obj) {
                    HeapObj::Instance { fields, .. } => {
                        fields.get(&*field.key).copied().unwrap_or(field.default)
                    }
                    _ => field.default,
                };
                frames.last_mut().expect("tiered frame").push(v);
                ip += 1;
            }
            Op::PutField { field, pc } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.perf.cp_hit.inc();
                state.engine.charge(Cost::MapOp);
                state.engine.charge(Cost::FieldPut);
                let (v, obj) = {
                    let f = frames.last_mut().expect("tiered frame");
                    (f.pop(), f.pop_ref())
                };
                let Some(obj) = obj else {
                    throw_at!(
                        *pc,
                        "java/lang/NullPointerException",
                        &format!("putfield {}", field.key)
                    );
                };
                if let HeapObj::Instance { fields, .. } = state.heap.get_mut(obj) {
                    if let Some(slot) = fields.get_mut(&*field.key) {
                        *slot = v;
                    } else {
                        fields.insert(field.key.to_string(), v);
                    }
                }
                ip += 1;
            }

            Op::Invoke {
                opcode,
                pc,
                next_pc,
                site,
            } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                // Re-anchor first: NPE throws and monitor-blocked
                // retries resolve against the invoke's own pc.
                frames.last_mut().expect("tiered frame").pc = *pc as usize;
                state.engine.charge(Cost::Call);
                state.perf.cp_hit.inc();
                let sr = interp::invoke_with_site(
                    state,
                    frames,
                    ctx,
                    tid,
                    *opcode,
                    *next_pc as usize,
                    site,
                    true,
                );
                exit_or_resync!(sr);
            }

            Op::New { class } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.perf.cp_hit.inc();
                let r = interp::alloc_instance(state, *class);
                frames
                    .last_mut()
                    .expect("tiered frame")
                    .push(Value::Ref(Some(r)));
                ip += 1;
            }

            Op::ArrayLength { pc } => {
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::IntOp);
                let arr = frames.last_mut().expect("tiered frame").pop_ref();
                let Some(arr) = arr else {
                    throw_at!(*pc, "java/lang/NullPointerException", "arraylength");
                };
                let Some(len) = state.heap.get(arr).array_len() else {
                    throw_at!(*pc, "java/lang/InternalError", "not an array");
                };
                frames
                    .last_mut()
                    .expect("tiered frame")
                    .push(Value::Int(len as i32));
                ip += 1;
            }

            Op::LoadLoadIntBin { a, b, op: bop } => {
                state.perf.tier_super.inc();
                // iload a
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::IntOp);
                let f = frames.last_mut().expect("tiered frame");
                let va = f.local(*a as usize);
                f.push(va);
                // iload b
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::IntOp);
                let f = frames.last_mut().expect("tiered frame");
                let vb = f.local(*b as usize);
                f.push(vb);
                // binop
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::IntOp);
                let f = frames.last_mut().expect("tiered frame");
                let y = f.pop_int();
                let x = f.pop_int();
                f.push(Value::Int(int_bin(*bop, x, y)));
                ip += 1;
            }

            Op::IincGoto { slot, delta, t } => {
                state.perf.tier_super.inc();
                // iinc
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::IntOp);
                let f = frames.last_mut().expect("tiered frame");
                let v = f.local(*slot as usize).as_int();
                f.set_local(*slot as usize, Value::Int(v.wrapping_add(*delta)));
                // goto
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::Branch);
                take_branch!(t);
            }

            Op::LoadGetfield { slot, field, pc } => {
                state.perf.tier_super.inc();
                // aload
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.engine.charge(Cost::IntOp);
                let f = frames.last_mut().expect("tiered frame");
                let v = f.local(*slot as usize);
                f.push(v);
                // getfield (quickened hit path)
                state.instructions += 1;
                state.engine.charge(Cost::Dispatch);
                state.perf.cp_hit.inc();
                state.engine.charge(Cost::MapOp);
                state.engine.charge(Cost::FieldGet);
                let obj = frames.last_mut().expect("tiered frame").pop_ref();
                let Some(obj) = obj else {
                    throw_at!(
                        *pc,
                        "java/lang/NullPointerException",
                        &format!("getfield {}", field.key)
                    );
                };
                let v = match state.heap.get(obj) {
                    HeapObj::Instance { fields, .. } => {
                        fields.get(&*field.key).copied().unwrap_or(field.default)
                    }
                    _ => field.default,
                };
                frames.last_mut().expect("tiered frame").push(v);
                ip += 1;
            }
        }
    }
}

/// The nine fusable int binops, matching the switch interpreter.
fn int_bin(opcode: u8, a: i32, b: i32) -> i32 {
    match opcode {
        op::IADD => a.wrapping_add(b),
        op::ISUB => a.wrapping_sub(b),
        op::IMUL => a.wrapping_mul(b),
        op::ISHL => a.wrapping_shl(b as u32 & 31),
        op::ISHR => a.wrapping_shr(b as u32 & 31),
        op::IUSHR => ((a as u32).wrapping_shr(b as u32 & 31)) as i32,
        op::IAND => a & b,
        op::IOR => a | b,
        _ => a ^ b,
    }
}

/// Virtual cost of each conversion, transcribed from the switch tier.
fn conv_cost(opcode: u8) -> Cost {
    match opcode {
        op::I2L | op::L2I | op::L2F | op::L2D | op::F2L | op::D2L => Cost::LongOp,
        op::I2B | op::I2C | op::I2S => Cost::IntOp,
        _ => Cost::FloatOp,
    }
}
