//! The DoppioJVM facade (§6, §6.8).
//!
//! "DoppioJVM also makes it possible for a JavaScript program to invoke
//! the JVM much as one would invoke Java on the command line via an
//! API: the programmer specifies the classpath, main class, and
//! arguments, and optionally, custom functions to redirect standard
//! input and output." [`Jvm`] is that API.

use std::cell::RefCell;
use std::rc::Rc;

use doppio_core::{DoppioRuntime, ExitStatus, GuestThread, RuntimeError, RuntimeStats, ThreadId};
use doppio_fs::FileSystem;
use doppio_jsengine::Engine;
use doppio_sockets::Network;

use doppio_classfile::access::{ACC_PUBLIC, ACC_STATIC};
use doppio_classfile::builder::{ClassBuilder, MethodBuilder};
use doppio_classfile::opcodes::AASTORE;

use crate::frame::Frame;
use crate::loader;
use crate::natives::{NativeCtx, NativeOutcome};
use crate::rtlib;
use crate::state::JvmState;
use crate::thread::JvmThread;
use crate::value::{ObjRef, Value};

/// A user-registered native method (the §6.3 JNI story).
pub type UserNative = Rc<dyn Fn(&mut NativeCtx<'_, '_, '_>, Vec<Value>) -> NativeOutcome>;

/// Result of running a JVM program to completion.
#[derive(Debug, Clone)]
pub struct JvmRunResult {
    /// `System.exit` code, if called.
    pub exit_code: Option<i32>,
    /// Captured standard output.
    pub stdout: String,
    /// Captured standard error.
    pub stderr: String,
    /// Rendered uncaught exception of the main thread, if any.
    pub uncaught: Option<String>,
    /// Bytecode instructions executed (all threads).
    pub instructions: u64,
    /// Doppio runtime statistics (suspensions, context switches...).
    pub runtime: RuntimeStats,
    /// Class files fetched through the file system.
    pub class_fetches: u64,
    /// Virtual wall-clock nanoseconds consumed by the whole run.
    pub wall_ns: u64,
}

/// A running or finished JVM instance.
pub struct Jvm {
    engine: Engine,
    state: Rc<RefCell<JvmState>>,
    runtime: DoppioRuntime,
    main_uncaught: RefCell<Option<Rc<RefCell<Option<ObjRef>>>>>,
    boot_counter: RefCell<u32>,
}

impl Jvm {
    /// Create a JVM over an engine and a Doppio file system. The
    /// runtime class library is defined eagerly; user classes load
    /// lazily through `fs` from the classpath (default `/classes`).
    pub fn new(engine: &Engine, fs: FileSystem) -> Jvm {
        Jvm::with_runtime(engine, fs, DoppioRuntime::new(engine))
    }

    /// [`new`](Self::new), but scheduling the JVM's threads on an
    /// existing runtime instead of a private one. This is how several
    /// JVMs share one scheduler and wait-for graph — the kernel's
    /// multi-process layer builds every guest this way (see
    /// `doppio_core::Kernel` and [`crate::process::spawn_jvm`]).
    pub fn with_runtime(engine: &Engine, fs: FileSystem, runtime: DoppioRuntime) -> Jvm {
        let mut state = JvmState::new(engine, fs);
        for cf in rtlib::runtime_classes() {
            let name = cf.name().expect("rt class").to_string();
            loader::define_with_constants(&mut state, cf)
                .unwrap_or_else(|e| panic!("defining runtime class {name}: {e}"));
        }
        let state = Rc::new(RefCell::new(state));
        state.borrow_mut().self_rc = Some(Rc::downgrade(&state));
        Jvm {
            engine: engine.clone(),
            state,
            runtime,
            main_uncaught: RefCell::new(None),
            boot_counter: RefCell::new(0),
        }
    }

    /// The engine this JVM runs on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The Doppio runtime hosting the JVM's threads.
    pub fn runtime(&self) -> &DoppioRuntime {
        &self.runtime
    }

    /// Set the classpath (directories on the Doppio file system).
    pub fn set_classpath(&self, entries: Vec<String>) {
        self.state.borrow_mut().classpath = entries;
    }

    /// Attach a socket fabric for the `doppio/net/Socket` natives.
    pub fn set_network(&self, net: Network) {
        self.state.borrow_mut().network = Some(net);
    }

    /// Enable suspend checks on loop back edges (§6.1's extension).
    pub fn set_check_backedges(&self, on: bool) {
        self.state.borrow_mut().check_backedges = on;
    }

    /// Install the §6.8 JavaScript-interop eval hook.
    pub fn set_js_eval(&self, f: impl FnMut(&Engine, &str) -> String + 'static) {
        self.state.borrow_mut().js_eval = Some(Box::new(f));
    }

    /// Tee standard output to a callback as it is produced.
    pub fn set_stdout_hook(&self, f: impl FnMut(&str) + 'static) {
        self.state.borrow_mut().stdout_hook = Some(Box::new(f));
    }

    /// Register a native method (the §6.3 JNI path: "these native
    /// methods will need to be reimplemented ... and registered with
    /// DoppioJVM").
    pub fn register_native(
        &self,
        class: &str,
        name: &str,
        desc: &str,
        f: impl Fn(&mut NativeCtx<'_, '_, '_>, Vec<Value>) -> NativeOutcome + 'static,
    ) {
        self.state.borrow_mut().user_natives.insert(
            (class.to_string(), name.to_string(), desc.to_string()),
            Rc::new(f),
        );
    }

    /// Queue bytes on standard input, waking blocked readers.
    pub fn push_stdin(&self, bytes: &[u8]) {
        let waiters: Vec<ThreadId> = {
            let mut st = self.state.borrow_mut();
            st.push_stdin(bytes);
            st.stdin_waiters.drain(..).collect()
        };
        for w in waiters {
            self.runtime.wake(w);
        }
    }

    /// Close standard input (EOF), waking blocked readers.
    pub fn close_stdin(&self) {
        let waiters: Vec<ThreadId> = {
            let mut st = self.state.borrow_mut();
            st.stdin_closed = true;
            st.stdin_waiters.drain(..).collect()
        };
        for w in waiters {
            self.runtime.wake(w);
        }
    }

    /// Direct access to the shared state (tests, embedders).
    pub fn with_state<R>(&self, f: impl FnOnce(&mut JvmState) -> R) -> R {
        f(&mut self.state.borrow_mut())
    }

    /// Launch `main_class.main(String[] args)` on a new JVM thread.
    ///
    /// The main class itself is loaded lazily through the file system
    /// when the bootstrap's `invokestatic` first references it (§6.4).
    pub fn launch(&self, main_class: &str, args: &[&str]) {
        let thread = self.prepare_main(main_class, args);
        self.runtime.spawn("main", thread);
    }

    /// Build the main thread for `main_class.main(args)` without
    /// spawning it. The caller decides where it runs — directly on
    /// [`runtime`](Self::runtime) (what [`launch`](Self::launch)
    /// does), or wrapped as a kernel process main thread
    /// (`Kernel::spawn`). Live-thread accounting starts here, so the
    /// returned thread MUST be spawned exactly once.
    pub fn prepare_main(&self, main_class: &str, args: &[&str]) -> Box<dyn GuestThread> {
        let n = {
            let mut c = self.boot_counter.borrow_mut();
            *c += 1;
            *c
        };
        let boot_name = format!("doppio/Bootstrap{n}");
        let mut b = ClassBuilder::new(&boot_name, "java/lang/Object");
        let mut m = MethodBuilder::new(ACC_PUBLIC | ACC_STATIC, "boot", "()V", 1);
        m.ldc_int(args.len() as i32);
        m.anewarray("java/lang/String");
        for (i, a) in args.iter().enumerate() {
            m.dup();
            m.ldc_int(i as i32);
            m.ldc_string(a);
            m.simple(AASTORE);
        }
        m.invokestatic(main_class, "main", "([Ljava/lang/String;)V");
        m.return_void();
        b.add_method(m);

        let mut state = self.state.borrow_mut();
        loader::define_with_constants(&mut state, b.finish()).expect("bootstrap defines");
        let boot_id = state
            .registry
            .lookup(&boot_name)
            .expect("bootstrap defined");
        let boot_idx = state
            .registry
            .get(boot_id)
            .cf
            .as_ref()
            .expect("bootstrap cf")
            .methods
            .iter()
            .position(|mm| mm.name == "boot")
            .expect("boot method");
        let blob = state.code_blob(boot_id, boot_idx).expect("boot blob");
        state.live_threads += 1;
        drop(state);

        let thread = JvmThread::new(self.state.clone(), "main", Frame::new(blob));
        *self.main_uncaught.borrow_mut() = Some(thread.uncaught.clone());
        Box::new(thread)
    }

    /// An exit probe for the kernel's process layer: reports
    /// `Some(status)` once the JVM program is over — `System.exit`'s
    /// code, or (when every JVM thread has finished) 0, or 1 if the
    /// main thread died to an uncaught exception. Install it with
    /// `Kernel::set_exit_probe`.
    pub fn exit_probe(&self) -> impl Fn() -> Option<ExitStatus> {
        let state = self.state.clone();
        let uncaught = self.main_uncaught.borrow().clone();
        move || {
            let st = state.borrow();
            if let Some(code) = st.exit_code {
                return Some(ExitStatus::Exited(code));
            }
            if st.live_threads == 0 {
                let failed = uncaught
                    .as_ref()
                    .map(|u| u.borrow().is_some())
                    .unwrap_or(false);
                return Some(ExitStatus::Exited(if failed { 1 } else { 0 }));
            }
            None
        }
    }

    /// A standalone handle to this JVM's standard input, cloneable and
    /// usable after the `Jvm` itself is dropped (the kernel's stdin
    /// pump threads hold one).
    pub fn stdin_handle(&self) -> JvmStdin {
        JvmStdin {
            state: self.state.clone(),
            runtime: self.runtime.clone(),
        }
    }

    /// Whether every JVM thread has finished (or `System.exit` ran).
    pub fn is_finished(&self) -> bool {
        self.runtime.is_finished() || self.state.borrow().exit_code.is_some()
    }

    /// Drive the engine's event loop until the program completes.
    pub fn run_to_completion(&self) -> Result<JvmRunResult, RuntimeError> {
        let start_ns = self.engine.now_ns();
        self.runtime.start();
        loop {
            if self.is_finished() {
                break;
            }
            // A detected wait-for cycle can never resolve: fail fast
            // with the per-thread blame report.
            if self.runtime.deadlock_report().is_some() {
                return Err(self.runtime.deadlock_error());
            }
            if !self.engine.run_one() {
                if self.is_finished() {
                    break;
                }
                return Err(self.runtime.deadlock_error());
            }
        }
        Ok(self.collect_result(start_ns))
    }

    fn collect_result(&self, start_ns: u64) -> JvmRunResult {
        let state = self.state.borrow();
        let uncaught = self
            .main_uncaught
            .borrow()
            .as_ref()
            .and_then(|u| *u.borrow())
            .map(|ex| {
                let (cls, msg, _) = crate::natives::describe_throwable(&state, ex);
                if msg.is_empty() {
                    cls
                } else {
                    format!("{cls}: {msg}")
                }
            });
        JvmRunResult {
            exit_code: state.exit_code,
            stdout: state.stdout_text(),
            stderr: String::from_utf8_lossy(&state.stderr).into_owned(),
            uncaught,
            instructions: state.instructions,
            runtime: self.runtime.stats(),
            class_fetches: state.loader.fetches,
            wall_ns: self.engine.now_ns() - start_ns,
        }
    }
}

/// A cloneable handle to one JVM's standard input stream. Obtained
/// from [`Jvm::stdin_handle`]; pushing bytes or closing the stream
/// wakes guest threads blocked in `Console.readLine`/`readByte`.
#[derive(Clone)]
pub struct JvmStdin {
    state: Rc<RefCell<JvmState>>,
    runtime: DoppioRuntime,
}

impl JvmStdin {
    /// Queue bytes on standard input, waking blocked readers.
    pub fn push(&self, bytes: &[u8]) {
        let waiters: Vec<ThreadId> = {
            let mut st = self.state.borrow_mut();
            st.push_stdin(bytes);
            st.stdin_waiters.drain(..).collect()
        };
        for w in waiters {
            self.runtime.wake(w);
        }
    }

    /// Close standard input (EOF), waking blocked readers.
    pub fn close(&self) {
        let waiters: Vec<ThreadId> = {
            let mut st = self.state.borrow_mut();
            st.stdin_closed = true;
            st.stdin_waiters.drain(..).collect()
        };
        for w in waiters {
            self.runtime.wake(w);
        }
    }
}
