//! Shared JVM state: heap, classes, monitors, I/O, and the Doppio
//! services the native methods bridge to (§6.3).

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::{Rc, Weak};

use doppio_core::ThreadId;
use doppio_fs::FileSystem;
use doppio_heap::UnmanagedHeap;
use doppio_jsengine::Engine;
use doppio_sockets::{DoppioSocket, Network};
use doppio_trace::Counter;

use crate::class::{ClassId, ClassRegistry, MethodRef};
use crate::loader::LoaderState;
use crate::object::Heap;
use crate::value::ObjRef;

/// A JVM monitor (the lock behind `monitorenter`/`synchronized`).
#[derive(Debug, Default)]
pub struct Monitor {
    /// Owning thread and recursion count.
    pub owner: Option<(ThreadId, u32)>,
    /// Threads blocked trying to enter.
    pub entry_queue: VecDeque<ThreadId>,
    /// Threads in `Object.wait`, with the recursion count to restore.
    pub wait_set: Vec<(ThreadId, u32)>,
}

/// One invoke site's cached resolution state, keyed by bytecode offset
/// within its method (see [`CodeBlob::ics`]).
///
/// The symbolic part (`cname`/`name`/`desc`/`arg_slots`) is decoded
/// from the constant pool exactly once. `direct` binds sites whose
/// target never depends on the receiver (`invokestatic` once the
/// `<clinit>` chain is `Initialized`, `invokespecial` immediately).
/// `mono` is the monomorphic inline cache for `invokevirtual` /
/// `invokeinterface`: it is keyed on the receiver's [`ClassId`], so a
/// subclass loaded mid-run gets a fresh id, misses, and re-dispatches
/// through `select_virtual` — the cache self-invalidates on class
/// loading without any registry hook.
#[derive(Debug)]
pub struct CallSite {
    /// Referenced class name from the CP entry.
    pub cname: Rc<str>,
    /// Method name.
    pub name: Rc<str>,
    /// Method descriptor.
    pub desc: Rc<str>,
    /// Argument slot count computed from the descriptor (receiver not
    /// included).
    pub arg_slots: usize,
    /// Resolved id of `cname`, filled once that class is defined.
    pub ref_class: Cell<Option<ClassId>>,
    /// Receiver-independent target (method + access flags).
    pub direct: Cell<Option<(MethodRef, u16)>>,
    /// Monomorphic cache: receiver class → (target, access flags).
    pub mono: Cell<Option<(ClassId, MethodRef, u16)>>,
}

/// A shared, precompiled view of one method body (built once per
/// method, cached).
#[derive(Debug)]
pub struct CodeBlob {
    /// Declaring class.
    pub class: ClassId,
    /// Index into the class's method list.
    pub method_index: usize,
    /// Method name (for traces).
    pub name: String,
    /// Method descriptor.
    pub descriptor: String,
    /// The bytecode.
    pub bytecode: Vec<u8>,
    /// Exception handlers.
    pub exceptions: Vec<doppio_classfile::ExceptionEntry>,
    /// Local slots.
    pub max_locals: u16,
    /// Whether the method is `synchronized`.
    pub synchronized: bool,
    /// Whether the method is `static`.
    pub is_static: bool,
    /// Line-number table.
    pub line_numbers: Vec<(u16, u16)>,
    /// Inline caches for the method's invoke sites, keyed by bytecode
    /// offset, populated lazily by the interpreter.
    pub ics: RefCell<HashMap<usize, Rc<CallSite>>>,
    /// Tier-up hotness: bumped on invocation (+8), backward branch
    /// (+1), and profiler sample (+64); crossing
    /// [`crate::tiered::TIER_THRESHOLD`] triggers compilation to the
    /// direct-threaded tier. Host-side bookkeeping only — never
    /// consulted by anything that charges virtual time.
    pub hotness: Cell<u32>,
    /// The method's direct-threaded form, compiled on first tier-up
    /// (`None` until hot, and forever when tier-up is disabled).
    pub tiered: RefCell<Option<Rc<crate::tiered::TieredCode>>>,
}

/// Counter handles for the resolution caches, resolved once from the
/// shared [`MetricsRegistry`](doppio_trace::MetricsRegistry) so the
/// interpreter bumps an `Rc<Cell<u64>>` instead of doing name lookups.
#[derive(Clone, Debug)]
pub struct PerfCounters {
    /// Constant-pool cache hits (`jvm.cp_cache.hit`).
    pub cp_hit: Counter,
    /// Constant-pool cache misses — first resolution (`jvm.cp_cache.miss`).
    pub cp_miss: Counter,
    /// Inline-cache hits at invoke sites (`jvm.icache.hit`).
    pub ic_hit: Counter,
    /// Inline-cache misses (`jvm.icache.miss`).
    pub ic_miss: Counter,
    /// Methods compiled to the direct-threaded tier
    /// (`jvm.tier.compiled`). Tier counters are host-side diagnostics:
    /// [`RunReport`](doppio_core::report::RunReport) excludes the
    /// `jvm.tier.*` prefix so reports stay byte-identical with tier-up
    /// on or off.
    pub tier_compiled: Counter,
    /// Deoptimizations: guard failures and inline-cache misses that
    /// sent a tiered frame back through the switch interpreter
    /// (`jvm.tier.deopt`).
    pub tier_deopt: Counter,
    /// Superinstruction executions in tiered code
    /// (`jvm.tier.super_hit`).
    pub tier_super: Counter,
}

impl PerfCounters {
    /// Resolve the handles from `engine`'s metrics registry.
    pub fn new(engine: &Engine) -> PerfCounters {
        let m = engine.metrics();
        PerfCounters {
            cp_hit: m.counter("jvm.cp_cache.hit"),
            cp_miss: m.counter("jvm.cp_cache.miss"),
            ic_hit: m.counter("jvm.icache.hit"),
            ic_miss: m.counter("jvm.icache.miss"),
            tier_compiled: m.counter("jvm.tier.compiled"),
            tier_deopt: m.counter("jvm.tier.deopt"),
            tier_super: m.counter("jvm.tier.super_hit"),
        }
    }
}

/// Everything the JVM's threads share.
#[allow(clippy::type_complexity)] // callback plumbing, not public API surface
pub struct JvmState {
    /// The simulated browser engine.
    pub engine: Engine,
    /// Defined classes.
    pub registry: ClassRegistry,
    /// The object heap.
    pub heap: Heap,
    /// Interned `String` constants (`ldc` of the same literal yields
    /// the same object).
    pub string_pool: HashMap<String, ObjRef>,
    /// Monitors, lazily created per object.
    pub monitors: HashMap<ObjRef, Monitor>,
    /// Captured standard output.
    pub stdout: Vec<u8>,
    /// Captured standard error.
    pub stderr: Vec<u8>,
    /// Optional stdout tee (the §6.8 "custom functions to redirect
    /// standard input and output").
    pub stdout_hook: Option<Box<dyn FnMut(&str)>>,
    /// Buffered standard input bytes.
    pub stdin: VecDeque<u8>,
    /// Whether stdin has reached end-of-file.
    pub stdin_closed: bool,
    /// The unmanaged heap backing `sun.misc.Unsafe` (§6.5).
    pub unmanaged: UnmanagedHeap,
    /// The Doppio file system the class loader and file natives use.
    pub fs: FileSystem,
    /// Optional socket fabric for the socket natives (§5.3).
    pub network: Option<Network>,
    /// Open sockets by descriptor.
    pub sockets: Vec<Option<DoppioSocket>>,
    /// Class-loading bookkeeping.
    pub loader: LoaderState,
    /// Classpath entries (directories on `fs`).
    pub classpath: Vec<String>,
    /// Method-code cache.
    pub code_cache: HashMap<(ClassId, usize), Rc<CodeBlob>>,
    /// `System.exit` code, if called.
    pub exit_code: Option<i32>,
    /// JavaScript-interop hook (§6.8 `eval`).
    pub js_eval: Option<Box<dyn FnMut(&Engine, &str) -> String>>,
    /// Instructions executed (all threads).
    pub instructions: u64,
    /// Whether to also perform suspend checks on backward branches
    /// (§6.1 discusses instrumenting loop back edges; off by default,
    /// matching DoppioJVM).
    pub check_backedges: bool,
    /// JVM threads that are live (indexes parallel the runtime's ids).
    pub live_threads: usize,
    /// Deterministic RNG state for `Math.random`.
    pub rng_state: u64,
    /// Threads blocked waiting for stdin bytes.
    pub stdin_waiters: Vec<ThreadId>,
    /// User-registered native methods (the §6.3 JNI path).
    pub user_natives: HashMap<(String, String, String), crate::jvm::UserNative>,
    /// `java/lang/Thread` objects per runtime thread id.
    pub thread_objs: HashMap<usize, ObjRef>,
    /// Inverse: runtime thread id per Thread object.
    pub thread_of_obj: HashMap<ObjRef, usize>,
    /// Runtime thread ids that have finished.
    pub finished_threads: HashSet<usize>,
    /// Threads blocked in `join`, keyed by the joined thread's id.
    pub join_waiters: HashMap<usize, Vec<ThreadId>>,
    /// Back-reference for natives that must spawn threads.
    pub self_rc: Option<Weak<RefCell<JvmState>>>,
    /// Resolution-cache counters (shared with the metrics registry).
    pub perf: PerfCounters,
    /// Whether hot methods tier up to direct-threaded code (from
    /// [`Engine::tier_up_enabled`]). Host speed only; results are
    /// byte-identical either way.
    pub tier_up: bool,
}

impl JvmState {
    /// Fresh state over an engine and file system.
    pub fn new(engine: &Engine, fs: FileSystem) -> JvmState {
        JvmState {
            engine: engine.clone(),
            registry: ClassRegistry::new(),
            heap: Heap::new(),
            string_pool: HashMap::new(),
            monitors: HashMap::new(),
            stdout: Vec::new(),
            stderr: Vec::new(),
            stdout_hook: None,
            stdin: VecDeque::new(),
            stdin_closed: false,
            unmanaged: UnmanagedHeap::new(engine, 16 * 1024 * 1024),
            fs,
            network: None,
            sockets: Vec::new(),
            loader: LoaderState::default(),
            classpath: vec!["/classes".to_string()],
            code_cache: HashMap::new(),
            exit_code: None,
            js_eval: None,
            instructions: 0,
            check_backedges: false,
            live_threads: 0,
            rng_state: 0x5DEECE66D,
            stdin_waiters: Vec::new(),
            user_natives: HashMap::new(),
            thread_objs: HashMap::new(),
            thread_of_obj: HashMap::new(),
            finished_threads: HashSet::new(),
            join_waiters: HashMap::new(),
            self_rc: None,
            perf: PerfCounters::new(engine),
            tier_up: engine.tier_up_enabled(),
        }
    }

    /// Intern a string literal, returning its heap reference.
    pub fn intern_string(&mut self, s: &str) -> ObjRef {
        if let Some(&r) = self.string_pool.get(s) {
            return r;
        }
        let r = self.heap.alloc_string(s);
        self.string_pool.insert(s.to_string(), r);
        r
    }

    /// Write to captured stdout (and the hook, if set).
    pub fn write_stdout(&mut self, text: &str) {
        self.stdout.extend_from_slice(text.as_bytes());
        if let Some(hook) = &mut self.stdout_hook {
            hook(text);
        }
    }

    /// Captured stdout as UTF-8.
    pub fn stdout_text(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }

    /// Queue bytes on standard input.
    pub fn push_stdin(&mut self, bytes: &[u8]) {
        self.stdin.extend(bytes);
    }

    /// The code blob for a method, building it on first use.
    pub fn code_blob(&mut self, class: ClassId, method_index: usize) -> Option<Rc<CodeBlob>> {
        if let Some(b) = self.code_cache.get(&(class, method_index)) {
            return Some(b.clone());
        }
        let rc = self.registry.get(class);
        let cf = rc.cf.as_ref()?;
        let m = cf.methods.get(method_index)?;
        let code = m.code.as_ref()?;
        let blob = Rc::new(CodeBlob {
            class,
            method_index,
            name: m.name.clone(),
            descriptor: m.descriptor.clone(),
            bytecode: code.bytecode.clone(),
            exceptions: code.exception_table.clone(),
            max_locals: code.max_locals,
            synchronized: m.access_flags & doppio_classfile::access::ACC_SYNCHRONIZED != 0
                && m.name != "<clinit>",
            is_static: m.is_static(),
            line_numbers: code.line_numbers.clone(),
            ics: RefCell::new(HashMap::new()),
            hotness: Cell::new(0),
            tiered: RefCell::new(None),
        });
        self.code_cache.insert((class, method_index), blob.clone());
        Some(blob)
    }
}
