//! The class loader (§6.4).
//!
//! "The DoppioJVM class loader uses the Doppio file system and its
//! Buffer module to appropriately download and parse JVM class files.
//! ... When the class loader opens a class file for reading, the file
//! system backend launches an asynchronous download request for the
//! particular file to load it into memory before passing it to the
//! class loader." The requesting JVM thread *blocks* (suspends) while
//! the download is in flight — the §4.2 async→sync bridge in action —
//! and classes are fetched lazily, on first reference, so unused
//! classes never hit memory or storage.

use std::collections::{HashMap, VecDeque};

use doppio_classfile::{parse, ClassFile, Constant};
use doppio_core::{AsyncCell, AsyncResolver, ThreadContext};
use doppio_fs::FileSystem;

use crate::state::JvmState;
use crate::value::Value;

/// Loader bookkeeping inside [`JvmState`].
#[derive(Default)]
pub struct LoaderState {
    /// Parsed classes waiting for their superclass/interfaces.
    pub parked: Vec<ClassFile>,
    /// Classes that permanently failed to load, with the reason.
    pub failed: HashMap<String, String>,
    /// Count of classes fetched through the file system.
    pub fetches: u64,
}

/// Result of a fetch completion.
#[derive(Debug, PartialEq, Eq)]
pub enum AfterFetch {
    /// The requested class (and possibly parked dependents) is defined.
    Ready,
    /// Another class must be fetched first (a superclass/interface).
    Fetch(String),
    /// Loading failed permanently.
    Fail(String),
}

/// Begin fetching `.class` bytes for `name`, trying each classpath
/// entry in order. The calling thread must block on the returned cell.
pub fn start_fetch(
    state: &mut JvmState,
    ctx: &mut ThreadContext<'_>,
    name: &str,
) -> AsyncCell<Result<Vec<u8>, String>> {
    state.loader.fetches += 1;
    let candidates: VecDeque<String> = state
        .classpath
        .iter()
        .map(|cp| format!("{cp}/{name}.class"))
        .collect();
    let fs = state.fs.clone();
    let name = name.to_string();
    ctx.block_on(move |_engine, resolver| {
        try_candidates(fs, candidates, name, resolver);
    })
}

fn try_candidates(
    fs: FileSystem,
    mut rest: VecDeque<String>,
    name: String,
    resolver: AsyncResolver<Result<Vec<u8>, String>>,
) {
    match rest.pop_front() {
        None => resolver.resolve(Err(format!("class {name} not found on classpath"))),
        Some(path) => {
            let fs2 = fs.clone();
            fs.read_file(&path, move |_, result| match result {
                Ok(bytes) => resolver.resolve(Ok(bytes)),
                Err(_) => try_candidates(fs2, rest, name, resolver),
            });
        }
    }
}

/// Feed fetched bytes (or the fetch error) back into the loader and
/// drive definition as far as possible.
pub fn after_fetch(
    state: &mut JvmState,
    name: &str,
    result: Result<Vec<u8>, String>,
) -> AfterFetch {
    // Another thread may have loaded the class while our fetch was in
    // flight (§6.2 threads share one class registry): that's success.
    if state.registry.lookup(name).is_some() {
        return AfterFetch::Ready;
    }
    match result {
        Err(e) => {
            state.loader.failed.insert(name.to_string(), e.clone());
            AfterFetch::Fail(e)
        }
        Ok(bytes) => {
            let cf = match parse(&bytes) {
                Ok(cf) => cf,
                Err(e) => {
                    let msg = format!("malformed class {name}: {e}");
                    state.loader.failed.insert(name.to_string(), msg.clone());
                    return AfterFetch::Fail(msg);
                }
            };
            match cf.name() {
                Ok(n) if n == name => {}
                Ok(n) => {
                    let msg = format!("expected class {name}, file defines {n}");
                    state.loader.failed.insert(name.to_string(), msg.clone());
                    return AfterFetch::Fail(msg);
                }
                Err(e) => {
                    let msg = format!("bad class {name}: {e}");
                    state.loader.failed.insert(name.to_string(), msg.clone());
                    return AfterFetch::Fail(msg);
                }
            }
            // Don't park the same class twice (concurrent loaders).
            if !state
                .loader
                .parked
                .iter()
                .any(|p| p.name().ok() == Some(name))
            {
                state.loader.parked.push(cf);
            }
            drain_parked(state, name)
        }
    }
}

/// Define every parked class whose dependencies are satisfied; report
/// what is still missing for `target`.
fn drain_parked(state: &mut JvmState, target: &str) -> AfterFetch {
    loop {
        let mut defined_any = false;
        let mut i = 0;
        while i < state.loader.parked.len() {
            if deps_defined(state, &state.loader.parked[i]) {
                let cf = state.loader.parked.remove(i);
                if let Err(e) = define_with_constants(state, cf) {
                    return AfterFetch::Fail(e);
                }
                defined_any = true;
            } else {
                i += 1;
            }
        }
        if !defined_any {
            break;
        }
    }
    if state.registry.lookup(target).is_some() {
        return AfterFetch::Ready;
    }
    // Find a dependency that is neither defined nor parked: fetch it.
    for cf in &state.loader.parked {
        if let Some(dep) = dep_to_fetch(state, cf) {
            return AfterFetch::Fetch(dep);
        }
    }
    AfterFetch::Fail(format!("could not make progress loading {target}"))
}

fn class_deps(cf: &ClassFile) -> Vec<String> {
    let mut deps = Vec::new();
    if let Ok(Some(s)) = cf.super_name() {
        deps.push(s.to_string());
    }
    if let Ok(ifaces) = cf.interface_names() {
        deps.extend(ifaces.into_iter().map(str::to_string));
    }
    deps
}

/// All dependencies already defined in the registry?
fn deps_defined(state: &JvmState, cf: &ClassFile) -> bool {
    class_deps(cf)
        .iter()
        .all(|d| state.registry.lookup(d).is_some())
}

/// First dependency that is neither defined nor parked.
fn dep_to_fetch(state: &JvmState, cf: &ClassFile) -> Option<String> {
    class_deps(cf).into_iter().find(|d| {
        state.registry.lookup(d).is_none()
            && !state
                .loader
                .parked
                .iter()
                .any(|p| p.name().ok() == Some(d.as_str()))
    })
}

/// Define a class and apply its `ConstantValue` static initializers.
pub fn define_with_constants(state: &mut JvmState, cf: ClassFile) -> Result<(), String> {
    let name = cf.name().map_err(|e| e.to_string())?.to_string();
    // Collect ConstantValue statics before the registry consumes `cf`.
    let mut constants: Vec<(String, Value)> = Vec::new();
    let mut strings: Vec<(String, String)> = Vec::new();
    for f in &cf.fields {
        if let Some(cv) = f.constant_value {
            let key = format!("{name}.{}", f.name);
            match cf.constant_pool.get(cv) {
                Ok(Constant::Integer(v)) => constants.push((key, Value::Int(*v))),
                Ok(Constant::Long(v)) => constants.push((key, Value::Long(*v))),
                Ok(Constant::Float(v)) => constants.push((key, Value::Float(*v))),
                Ok(Constant::Double(v)) => constants.push((key, Value::Double(*v))),
                Ok(Constant::String { .. }) => {
                    if let Ok(s) = cf.constant_pool.string(cv) {
                        strings.push((key, s.to_string()));
                    }
                }
                _ => {}
            }
        }
    }
    let id = state.registry.define(cf)?;
    // Mark the definition point: a new ClassId is the epoch boundary
    // the inline caches key on (a receiver of this class misses every
    // monomorphic cache installed before now).
    let tracer = state.engine.tracer();
    if tracer.enabled() {
        tracer.instant(
            doppio_trace::cat::PERF,
            "class_defined",
            state.engine.now_ns(),
            0,
            vec![
                ("class", name.clone().into()),
                ("id", doppio_trace::ArgValue::U64(id as u64)),
            ],
        );
    }
    for (key, v) in constants {
        state.registry.get_mut(id).statics.insert(key, v);
    }
    for (key, s) in strings {
        let r = state.intern_string(&s);
        state
            .registry
            .get_mut(id)
            .statics
            .insert(key, Value::Ref(Some(r)));
    }
    Ok(())
}
