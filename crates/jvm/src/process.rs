//! Running DoppioJVM instances as kernel processes (the Browsix-style
//! layer over §6.8's embedding API).
//!
//! [`spawn_jvm`] is the `exec` analog: it builds a [`Jvm`] on the
//! kernel's shared engine and runtime, wires the [`SpawnOptions`]
//! stdin/stdout pipes to the JVM's standard streams, installs the
//! JVM's exit probe (so `System.exit`, normal completion, and uncaught
//! exceptions all become the process's [`ExitStatus`]), and spawns the
//! main thread as a process. Several JVMs spawned this way interleave
//! deterministically on one virtual clock, and blocked pipe I/O in any
//! of them participates in the kernel's cross-process deadlock blame.

use doppio_core::kernel::{Kernel, PipeRead, Process, SpawnOptions};
use doppio_core::ThreadStep;
use doppio_fs::FileSystem;

use crate::jvm::Jvm;

/// How many bytes the stdin pump moves from the pipe into the JVM's
/// stdin buffer per slice.
const STDIN_CHUNK: usize = 4096;

/// Spawn `main_class.main(argv)` as a kernel process running on its
/// own JVM instance over `fs`.
///
/// * `opts.stdin`: a pump thread (tagged with the process's pid)
///   drains the pipe into the JVM's standard input, propagating EOF
///   when every write end closes.
/// * `opts.stdout`: everything the program prints is fed into the
///   pipe as it is produced; pipe backpressure parks the process at
///   slice boundaries.
/// * The process's exit status comes from the JVM's own lifecycle:
///   `System.exit(n)` → `exit(n)`, all threads finished → `exit(0)`,
///   uncaught exception on the main thread → `exit(1)`.
///
/// Returns the process handle and the `Jvm` (for classpath tweaks,
/// native registration, state inspection). The `Jvm` may be dropped;
/// the process keeps running.
pub fn spawn_jvm(
    kernel: &Kernel,
    opts: SpawnOptions,
    fs: FileSystem,
    main_class: &str,
) -> (Process, Jvm) {
    let engine = kernel.engine();
    let jvm = Jvm::with_runtime(&engine, fs, kernel.runtime());
    let argv: Vec<&str> = opts.argv.iter().map(|s| s.as_str()).collect();
    let main = jvm.prepare_main(main_class, &argv);
    let (stdin, stdout) = (opts.stdin, opts.stdout);
    let process = kernel.spawn(opts, main);
    let pid = process.pid();

    if let Some(pipe) = stdout {
        let k = kernel.clone();
        // The pipe outlives the process (ends are released, pipes are
        // never deleted); if it somehow vanished the output is simply
        // dropped, matching a write to a fully-closed pipe.
        jvm.set_stdout_hook(move |s| {
            let _ = k.feed_pipe(pid, pipe, s.as_bytes());
        });
    }
    if let Some(pipe) = stdin {
        let k = kernel.clone();
        let handle = jvm.stdin_handle();
        kernel.spawn_fn_aux(pid, "stdin-pump", move |ctx| {
            match k.read_pipe(ctx, pipe, STDIN_CHUNK) {
                Ok(PipeRead::Data(d)) => {
                    handle.push(&d);
                    ThreadStep::Yielded
                }
                Ok(PipeRead::WouldBlock) => ThreadStep::Blocked,
                Ok(PipeRead::Eof) | Err(_) => {
                    handle.close();
                    ThreadStep::Finished
                }
            }
        });
    }
    kernel
        .set_exit_probe(pid, jvm.exit_probe())
        .expect("freshly spawned pid");
    (process, jvm)
}
