//! Runtime class representation, registry, and resolution.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use doppio_classfile::{access, ClassFile};

use crate::value::{ObjRef, Value};

/// Index of a class in the registry.
pub type ClassId = usize;

/// `<clinit>` progress (JVMS2 §2.17.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClinitState {
    /// Never initialized.
    NotStarted,
    /// A thread is running `<clinit>` (recursion by the same thread
    /// proceeds, as the specification requires).
    InProgress(usize),
    /// Done.
    Initialized,
}

/// A quickened constant-pool entry: the result of resolving a CP index
/// once, cached per class so the interpreter's hot path never repeats
/// the string-keyed lookup (HotSpot calls this CP quickening; the paper
/// pays the full lookup on every `getfield`/`invoke*`).
///
/// Entries are only installed once the information they capture is
/// final: `ldc` values and symbolic names never change, and field /
/// class entries that imply "initialization already ran" are cached
/// only after the `<clinit>` chain reached `Initialized` (a sticky
/// state). Classes are never redefined in this registry (`define`
/// rejects duplicates), so a cached entry cannot go stale; new
/// *subclasses* invalidate call sites via receiver-class keying in the
/// inline caches, not here.
#[derive(Debug, Clone)]
pub enum CpEntry {
    /// `ldc`/`ldc_w`/`ldc2_w` of a numeric constant, decoded.
    Value(Value),
    /// `ldc` of a String or Class constant: the interned object, shared
    /// across executions instead of re-allocated per hit.
    Obj(ObjRef),
    /// A resolved field reference (get/putfield, get/putstatic).
    Field(Rc<ResolvedField>),
    /// A resolved class reference (`new`, `checkcast`, `instanceof`,
    /// `anewarray`, `multianewarray`).
    Class(Rc<ClassConst>),
}

/// A field reference resolved to its declaring class, with the
/// dictionary key and default value precomputed.
#[derive(Debug)]
pub struct ResolvedField {
    /// Declaring class.
    pub class: ClassId,
    /// Dictionary key (`"DeclaringClass.fieldName"`).
    pub key: Rc<str>,
    /// Field descriptor.
    pub descriptor: Rc<str>,
    /// Default value for the descriptor (lazy `getfield` on a fresh
    /// instance returns this without re-parsing the descriptor).
    pub default: Value,
    /// Whether the field is static.
    pub is_static: bool,
}

/// A resolved class constant. `checkcast`/`instanceof`/`anewarray` only
/// need the name (the target class may not even be loaded); `new` also
/// records the id once the class is defined *and* initialized, so the
/// hit path can skip the `<clinit>` protocol entirely.
#[derive(Debug)]
pub struct ClassConst {
    /// Binary name from the constant pool.
    pub name: Rc<str>,
    /// Id of the class, filled once it is defined and its `<clinit>`
    /// chain has run to completion (`Initialized` is sticky).
    pub init_id: Cell<Option<ClassId>>,
    /// The `java/lang/Class` mirror object, filled by the first `ldc`
    /// of this constant (mirrors are pooled, so the handle is final).
    pub mirror: Cell<Option<ObjRef>>,
}

/// A defined class.
#[derive(Debug)]
pub struct RuntimeClass {
    /// Registry index.
    pub id: ClassId,
    /// Binary name (`"java/lang/String"`, `"[I"`, ...).
    pub name: String,
    /// Superclass (None only for `java/lang/Object`).
    pub super_id: Option<ClassId>,
    /// Directly implemented interfaces.
    pub interfaces: Vec<ClassId>,
    /// The parsed class file (None for synthesized array classes).
    pub cf: Option<ClassFile>,
    /// For array classes: the component type name.
    pub array_component: Option<String>,
    /// Static fields, keyed `"Class.name"`.
    pub statics: HashMap<String, Value>,
    /// Initialization state.
    pub clinit: ClinitState,
    /// Quickened constant-pool entries, keyed by CP index, populated on
    /// first use by the interpreter.
    pub cp_cache: RefCell<HashMap<u16, CpEntry>>,
}

impl RuntimeClass {
    /// Whether this is an interface.
    pub fn is_interface(&self) -> bool {
        self.cf
            .as_ref()
            .map(|cf| cf.access_flags & access::ACC_INTERFACE != 0)
            .unwrap_or(false)
    }
}

/// A resolved method: declaring class + index into its method list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodRef {
    /// Declaring class.
    pub class: ClassId,
    /// Index into that class's `methods`.
    pub index: usize,
}

/// A resolved field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldRef {
    /// Declaring class.
    pub class: ClassId,
    /// Dictionary key (`"DeclaringClass.fieldName"`).
    pub key: String,
    /// Field descriptor.
    pub descriptor: String,
    /// Whether the field is static.
    pub is_static: bool,
}

/// The class registry: all defined classes, by id and name.
#[derive(Debug, Default)]
pub struct ClassRegistry {
    classes: Vec<RuntimeClass>,
    by_name: HashMap<String, ClassId>,
}

impl ClassRegistry {
    /// An empty registry.
    pub fn new() -> ClassRegistry {
        ClassRegistry::default()
    }

    /// Look up a defined class by name.
    pub fn lookup(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// The class with the given id.
    pub fn get(&self, id: ClassId) -> &RuntimeClass {
        &self.classes[id]
    }

    /// Mutable access to a class (statics, clinit state).
    pub fn get_mut(&mut self, id: ClassId) -> &mut RuntimeClass {
        &mut self.classes[id]
    }

    /// Number of defined classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether no classes are defined.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Define a class from a parsed class file. The superclass and
    /// interfaces must already be defined (the loader guarantees it).
    ///
    /// Returns `None` if a super/interface is missing (the caller must
    /// load it first).
    pub fn define(&mut self, cf: ClassFile) -> Result<ClassId, String> {
        let name = cf.name().map_err(|e| e.to_string())?.to_string();
        if self.by_name.contains_key(&name) {
            return Err(format!("class {name} already defined"));
        }
        let super_name = cf
            .super_name()
            .map_err(|e| e.to_string())?
            .map(str::to_string);
        let super_id = match &super_name {
            None => None,
            Some(s) => Some(
                self.lookup(s)
                    .ok_or_else(|| format!("superclass {s} not defined"))?,
            ),
        };
        let mut interfaces = Vec::new();
        for iname in cf.interface_names().map_err(|e| e.to_string())? {
            interfaces.push(
                self.lookup(iname)
                    .ok_or_else(|| format!("interface {iname} not defined"))?,
            );
        }
        let id = self.classes.len();
        // Statics get default values now; ConstantValue attributes are
        // applied by the loader after definition.
        let mut statics = HashMap::new();
        for f in &cf.fields {
            if f.access_flags & access::ACC_STATIC != 0 {
                statics.insert(
                    format!("{name}.{}", f.name),
                    Value::default_for(&f.descriptor),
                );
            }
        }
        self.by_name.insert(name.clone(), id);
        self.classes.push(RuntimeClass {
            id,
            name,
            super_id,
            interfaces,
            cf: Some(cf),
            array_component: None,
            statics,
            clinit: ClinitState::NotStarted,
            cp_cache: RefCell::new(HashMap::new()),
        });
        Ok(id)
    }

    /// Get or synthesize the array class named e.g. `"[I"` or
    /// `"[Ljava/lang/String;"`. `java/lang/Object` must be defined.
    pub fn ensure_array_class(&mut self, name: &str) -> Result<ClassId, String> {
        if let Some(id) = self.lookup(name) {
            return Ok(id);
        }
        if !name.starts_with('[') {
            return Err(format!("{name} is not an array class name"));
        }
        let object = self
            .lookup("java/lang/Object")
            .ok_or("java/lang/Object not defined")?;
        let component = component_name(name);
        let id = self.classes.len();
        self.by_name.insert(name.to_string(), id);
        self.classes.push(RuntimeClass {
            id,
            name: name.to_string(),
            super_id: Some(object),
            interfaces: Vec::new(),
            cf: None,
            array_component: Some(component),
            statics: HashMap::new(),
            clinit: ClinitState::Initialized,
            cp_cache: RefCell::new(HashMap::new()),
        });
        Ok(id)
    }

    /// Resolve a method by walking the superclass chain, then
    /// interfaces (JVMS method resolution, §5.4.3.3-3.4 simplified).
    pub fn resolve_method(&self, class: ClassId, name: &str, desc: &str) -> Option<MethodRef> {
        // Superclass chain.
        let mut cur = Some(class);
        while let Some(id) = cur {
            let rc = self.get(id);
            if let Some(cf) = &rc.cf {
                if let Some(index) = cf
                    .methods
                    .iter()
                    .position(|m| m.name == name && m.descriptor == desc)
                {
                    return Some(MethodRef { class: id, index });
                }
            }
            cur = rc.super_id;
        }
        // Interfaces (breadth-first over the whole hierarchy).
        let mut queue: Vec<ClassId> = self.all_interfaces(class);
        let mut qi = 0;
        while qi < queue.len() {
            let id = queue[qi];
            qi += 1;
            let rc = self.get(id);
            if let Some(cf) = &rc.cf {
                if let Some(index) = cf
                    .methods
                    .iter()
                    .position(|m| m.name == name && m.descriptor == desc)
                {
                    return Some(MethodRef { class: id, index });
                }
            }
            for &i in &rc.interfaces {
                if !queue.contains(&i) {
                    queue.push(i);
                }
            }
        }
        None
    }

    /// Virtual dispatch: select the implementation of `(name, desc)`
    /// for a receiver of `runtime_class`.
    pub fn select_virtual(
        &self,
        runtime_class: ClassId,
        name: &str,
        desc: &str,
    ) -> Option<MethodRef> {
        self.resolve_method(runtime_class, name, desc)
    }

    fn all_interfaces(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut cur = Some(class);
        while let Some(id) = cur {
            let rc = self.get(id);
            for &i in &rc.interfaces {
                if !out.contains(&i) {
                    out.push(i);
                }
            }
            cur = rc.super_id;
        }
        out
    }

    /// Resolve a field by walking the class, its interfaces, then the
    /// superclass chain (JVMS §5.4.3.2).
    pub fn resolve_field(&self, class: ClassId, name: &str) -> Option<FieldRef> {
        let rc = self.get(class);
        if let Some(cf) = &rc.cf {
            if let Some(f) = cf.fields.iter().find(|f| f.name == name) {
                return Some(FieldRef {
                    class,
                    key: format!("{}.{}", rc.name, name),
                    descriptor: f.descriptor.clone(),
                    is_static: f.access_flags & access::ACC_STATIC != 0,
                });
            }
        }
        for &i in &rc.interfaces {
            if let Some(f) = self.resolve_field(i, name) {
                return Some(f);
            }
        }
        rc.super_id.and_then(|s| self.resolve_field(s, name))
    }

    /// All instance fields of a class, including inherited ones, as
    /// `(dictionary key, descriptor)` pairs — used to build the field
    /// dictionary of a new instance (§6.7).
    pub fn instance_field_layout(&self, class: ClassId) -> Vec<(String, String)> {
        let mut out = Vec::new();
        let mut cur = Some(class);
        while let Some(id) = cur {
            let rc = self.get(id);
            if let Some(cf) = &rc.cf {
                for f in &cf.fields {
                    if f.access_flags & access::ACC_STATIC == 0 {
                        out.push((format!("{}.{}", rc.name, f.name), f.descriptor.clone()));
                    }
                }
            }
            cur = rc.super_id;
        }
        out
    }

    /// Subtype test: can a value of class `sub` be assigned to
    /// `super_name`? Handles classes, interfaces, and array
    /// covariance.
    pub fn is_assignable(&self, sub: ClassId, super_name: &str) -> bool {
        let sub_rc = self.get(sub);
        if sub_rc.name == super_name || super_name == "java/lang/Object" {
            return true;
        }
        // Array covariance: [X assignable to [Y iff X assignable to Y.
        if let (Some(sc), Some(tc)) = (
            sub_rc.array_component.as_deref(),
            super_name.strip_prefix('['),
        ) {
            let target_component = component_of_descriptor(tc);
            if sc == target_component {
                return true;
            }
            if let Some(sid) = self.lookup(sc) {
                return self.is_assignable(sid, &target_component);
            }
            return false;
        }
        // Class chain.
        if let Some(sup) = sub_rc.super_id {
            if self.is_assignable(sup, super_name) {
                return true;
            }
        }
        // Interfaces.
        sub_rc
            .interfaces
            .iter()
            .any(|&i| self.is_assignable(i, super_name))
    }
}

/// Component type name of an array class name: `"[I"` → `"I"`? No —
/// `"[I"` → primitive int has no class; we name primitive components
/// by their descriptor (`"I"`), object components by their binary name.
fn component_name(array_name: &str) -> String {
    let rest = &array_name[1..];
    component_of_descriptor(rest)
}

fn component_of_descriptor(desc: &str) -> String {
    if let Some(obj) = desc.strip_prefix('L') {
        obj.trim_end_matches(';').to_string()
    } else {
        desc.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppio_classfile::builder::{ClassBuilder, MethodBuilder};

    fn define_object(reg: &mut ClassRegistry) -> ClassId {
        // java/lang/Object has no superclass: patch super_class to 0
        // after building (the builder always interns one).
        let mut b = ClassBuilder::new("java/lang/Object", "java/lang/Object");
        let mut m = MethodBuilder::new(access::ACC_PUBLIC, "<init>", "()V", 1);
        m.return_void();
        b.add_method(m);
        let mut cf = b.finish();
        cf.super_class = 0;
        reg.define(cf).unwrap()
    }

    fn simple_class(reg: &mut ClassRegistry, name: &str, super_name: &str) -> ClassId {
        let mut b = ClassBuilder::new(name, super_name);
        b.add_field(access::ACC_PRIVATE, "x", "I");
        b.add_field(access::ACC_STATIC, "count", "J");
        let mut m = MethodBuilder::new(access::ACC_PUBLIC, "get", "()I", 1);
        m.ldc_int(1);
        m.ireturn();
        b.add_method(m);
        reg.define(b.finish()).unwrap()
    }

    #[test]
    fn hierarchy_resolution() {
        let mut reg = ClassRegistry::new();
        let obj = define_object(&mut reg);
        let a = simple_class(&mut reg, "demo/A", "java/lang/Object");
        let b = {
            let builder = ClassBuilder::new("demo/B", "demo/A");
            reg.define(builder.finish()).unwrap()
        };
        // Method declared on A found from B.
        let m = reg.resolve_method(b, "get", "()I").unwrap();
        assert_eq!(m.class, a);
        // <init> found on Object from B.
        let init = reg.resolve_method(b, "<init>", "()V").unwrap();
        assert_eq!(init.class, obj);
        // Field resolution finds A's field from B, keyed by declarer.
        let f = reg.resolve_field(b, "x").unwrap();
        assert_eq!(f.key, "demo/A.x");
        assert!(!f.is_static);
        let s = reg.resolve_field(b, "count").unwrap();
        assert!(s.is_static);
        // Instance layout includes inherited fields.
        let layout = reg.instance_field_layout(b);
        assert_eq!(layout, vec![("demo/A.x".to_string(), "I".to_string())]);
        // Assignability.
        assert!(reg.is_assignable(b, "demo/A"));
        assert!(reg.is_assignable(b, "java/lang/Object"));
        assert!(!reg.is_assignable(a, "demo/B"));
    }

    #[test]
    fn statics_get_defaults() {
        let mut reg = ClassRegistry::new();
        define_object(&mut reg);
        let a = simple_class(&mut reg, "demo/A", "java/lang/Object");
        assert_eq!(
            reg.get(a).statics.get("demo/A.count"),
            Some(&Value::Long(0))
        );
    }

    #[test]
    fn array_classes_synthesize_and_assign() {
        let mut reg = ClassRegistry::new();
        define_object(&mut reg);
        let a = simple_class(&mut reg, "demo/A", "java/lang/Object");
        let _b = {
            let builder = ClassBuilder::new("demo/B", "demo/A");
            reg.define(builder.finish()).unwrap()
        };
        let arr_b = reg.ensure_array_class("[Ldemo/B;").unwrap();
        let arr_a = reg.ensure_array_class("[Ldemo/A;").unwrap();
        assert_ne!(arr_a, arr_b);
        // Covariance: B[] assignable to A[] and to Object.
        assert!(reg.is_assignable(arr_b, "[Ldemo/A;"));
        assert!(reg.is_assignable(arr_b, "java/lang/Object"));
        assert!(!reg.is_assignable(arr_a, "[Ldemo/B;"));
        // Primitive arrays are invariant.
        let arr_i = reg.ensure_array_class("[I").unwrap();
        assert!(!reg.is_assignable(arr_i, "[J"));
        assert!(reg.is_assignable(arr_i, "[I"));
        let _ = a;
    }

    #[test]
    fn missing_super_is_an_error() {
        let mut reg = ClassRegistry::new();
        define_object(&mut reg);
        let b = ClassBuilder::new("demo/C", "demo/Missing");
        assert!(reg.define(b.finish()).is_err());
    }

    #[test]
    fn duplicate_definition_is_an_error() {
        let mut reg = ClassRegistry::new();
        define_object(&mut reg);
        simple_class(&mut reg, "demo/A", "java/lang/Object");
        let b = ClassBuilder::new("demo/A", "java/lang/Object");
        assert!(reg.define(b.finish()).is_err());
    }
}
