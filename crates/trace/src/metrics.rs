//! The shared counter registry.
//!
//! Before this crate, every subsystem kept its own stats struct
//! (`EngineStats`, `FsStats`, …) with duplicated `stats()` /
//! `reset_stats()` plumbing. Here the source of truth is a single
//! [`MetricsRegistry`] of named [`Counter`]s; the old structs survive as
//! [`Snapshot`] *views* reconstructed from the registry on demand.
//!
//! Naming convention: dot-separated, subsystem-prefixed —
//! `engine.events_run`, `engine.ops.event_dispatch`, `fs.bytes_read`.
//! A subsystem resets itself with [`MetricsRegistry::reset_prefix`].
//!
//! Hot paths never do string lookups: they resolve a [`Counter`] handle
//! once (at construction) and bump it through an `Rc<Cell<u64>>`, which
//! costs the same as the old direct field increment.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

pub use crate::hist::{Histogram, HistogramSnapshot};

/// A named `u64` cell; cloning shares the underlying value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.set(v);
    }

    /// Raise the value to `v` if `v` is larger (running maximum).
    #[inline]
    pub fn record_max(&self, v: u64) {
        if v > self.0.get() {
            self.0.set(v);
        }
    }
}

/// A view over the registry that a subsystem can materialize on demand.
///
/// Implemented by `EngineStats` and `FsStats`: `from_registry` reads the
/// subsystem's counters back into the familiar struct shape, so legacy
/// callers keep their field access while the registry stays the single
/// source of truth.
pub trait Snapshot: Sized {
    /// Counter-name prefix this view reads (e.g. `"engine"`).
    fn prefix() -> &'static str;

    /// Build the view from the registry's current counter values.
    fn from_registry(reg: &MetricsRegistry) -> Self;
}

/// Shared registry of named counters. Cloning shares the map; the
/// handle is designed to live inside `Engine` and be reachable from
/// every subsystem attached to it.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<BTreeMap<String, Counter>>>,
    hists: Rc<RefCell<BTreeMap<String, Histogram>>>,
    /// Shared by every histogram created here; recording is off by
    /// default so un-instrumented runs pay one branch per sample site.
    hists_enabled: Rc<Cell<bool>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create the counter named `name`. The returned handle
    /// shares the value: hold it and bump it without further lookups.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.borrow_mut();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        map.insert(name.to_string(), c.clone());
        c
    }

    /// Current value of `name`, or 0 if it was never registered.
    pub fn get(&self, name: &str) -> u64 {
        self.inner.borrow().get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner.borrow().keys().cloned().collect()
    }

    /// `(name, value)` for every counter whose name starts with
    /// `prefix`, sorted by name.
    pub fn with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.inner
            .borrow()
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Zero every counter (and empty every histogram) whose name starts
    /// with `prefix`. Handles held by hot paths stay valid — they share
    /// the zeroed cells.
    pub fn reset_prefix(&self, prefix: &str) {
        for (k, c) in self.inner.borrow().iter() {
            if k.starts_with(prefix) {
                c.set(0);
            }
        }
        for (k, h) in self.hists.borrow().iter() {
            if k.starts_with(prefix) {
                h.reset();
            }
        }
    }

    /// Materialize a subsystem's [`Snapshot`] view.
    pub fn snapshot<S: Snapshot>(&self) -> S {
        S::from_registry(self)
    }

    // ----------------------------------------------------------------
    // Histograms
    // ----------------------------------------------------------------

    /// Get or create the histogram named `name`. Like [`Counter`]
    /// handles, the result shares storage and should be resolved once
    /// at construction; recording is gated on
    /// [`MetricsRegistry::set_histograms_enabled`] (default off).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.hists.borrow_mut();
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Histogram::with_flag(self.hists_enabled.clone());
        map.insert(name.to_string(), h.clone());
        h
    }

    /// Turn sample recording on or off for every histogram created by
    /// this registry, past and future. Off by default.
    pub fn set_histograms_enabled(&self, on: bool) {
        self.hists_enabled.set(on);
    }

    /// Whether histogram recording is currently on.
    pub fn histograms_enabled(&self) -> bool {
        self.hists_enabled.get()
    }

    /// All registered histogram names, sorted.
    pub fn histogram_names(&self) -> Vec<String> {
        self.hists.borrow().keys().cloned().collect()
    }

    /// `(name, snapshot)` for every *non-empty* histogram whose name
    /// starts with `prefix`, sorted by name.
    pub fn histograms_with_prefix(&self, prefix: &str) -> Vec<(String, HistogramSnapshot)> {
        self.hists
            .borrow()
            .iter()
            .filter(|(k, h)| k.starts_with(prefix) && h.count() > 0)
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }

    /// Render every counter and histogram in the Prometheus text
    /// exposition format; see [`crate::prometheus`].
    pub fn prometheus(&self) -> String {
        crate::prometheus::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_values() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("engine.events_run");
        let b = reg.counter("engine.events_run");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.get("engine.events_run"), 4);
        assert_eq!(reg.get("engine.never_touched"), 0);
    }

    #[test]
    fn record_max_keeps_running_maximum() {
        let c = Counter::default();
        c.record_max(7);
        c.record_max(3);
        assert_eq!(c.get(), 7);
        c.record_max(9);
        assert_eq!(c.get(), 9);
    }

    #[test]
    fn reset_prefix_zeroes_only_that_subsystem() {
        let reg = MetricsRegistry::new();
        let e = reg.counter("engine.events_run");
        let f = reg.counter("fs.bytes_read");
        e.add(10);
        f.add(20);
        reg.reset_prefix("engine.");
        assert_eq!(e.get(), 0, "live handle sees the reset");
        assert_eq!(reg.get("fs.bytes_read"), 20);
    }

    #[test]
    fn histograms_share_the_registry_gate_and_reset() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("engine.event_latency");
        h.record(5);
        assert_eq!(h.count(), 0, "off by default");
        reg.set_histograms_enabled(true);
        h.record(5);
        reg.histogram("engine.event_latency").record(7);
        assert_eq!(h.count(), 2, "handles share storage");
        assert_eq!(reg.histograms_with_prefix("engine.").len(), 1);
        reg.reset_prefix("engine.");
        assert_eq!(h.count(), 0);
        assert!(reg.histograms_with_prefix("engine.").is_empty());
        assert_eq!(reg.histogram_names(), vec!["engine.event_latency"]);
    }

    #[test]
    fn with_prefix_lists_sorted_pairs() {
        let reg = MetricsRegistry::new();
        reg.counter("fs.opens").add(2);
        reg.counter("fs.bytes_read").add(9);
        reg.counter("engine.events_run").add(1);
        let fs = reg.with_prefix("fs.");
        assert_eq!(
            fs,
            vec![
                ("fs.bytes_read".to_string(), 9),
                ("fs.opens".to_string(), 2)
            ]
        );
    }

    struct FakeView {
        opens: u64,
    }
    impl Snapshot for FakeView {
        fn prefix() -> &'static str {
            "fs"
        }
        fn from_registry(reg: &MetricsRegistry) -> Self {
            FakeView {
                opens: reg.get("fs.opens"),
            }
        }
    }

    #[test]
    fn snapshot_builds_views() {
        let reg = MetricsRegistry::new();
        reg.counter("fs.opens").add(5);
        let v: FakeView = reg.snapshot();
        assert_eq!(FakeView::prefix(), "fs");
        assert_eq!(v.opens, 5);
    }
}
