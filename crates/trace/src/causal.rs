//! Causal tracing: cross-process span propagation and critical-path
//! analysis.
//!
//! A slow request in a Browsix-style world crosses pids, pipes,
//! sockets, and replication hops; the flat trace stream records those
//! as unrelated events. This module adds the causal layer:
//!
//! * [`SpanContext`] — a `(trace_id, span_id)` pair minted from a
//!   dedicated SplitMix64 stream seeded by the engine seed. Minting
//!   never touches the simulation's own RNG stream, so enabling causal
//!   tracing cannot perturb schedules, and same-seed runs mint
//!   byte-identical ids.
//! * [`Causal`] — the recording handle the engine owns. Subsystems
//!   create request roots at ingress points (event dispatch, kernel
//!   `spawn`, storage client ops), mint child spans as work propagates,
//!   and emit `flow` begin/end events at every cross-domain edge (pipe
//!   write→read, spawn/waitpid, signal, socket delivery, storage
//!   replication). The ambient "current" context rides along with
//!   engine events and thread slices so emitters deep in a subsystem
//!   see the request they are serving.
//! * [`CausalGraph`] — the offline analyzer: rebuilds the per-request
//!   causality DAG from a recorded event stream, walks the
//!   virtual-time critical path of each request, and attributes every
//!   nanosecond of request wall time to a named category.
//! * [`TraceQuery`] — causal-invariant assertions for tests
//!   ([`TraceQuery::spans_for`], [`TraceQuery::assert_happens_before`]).
//! * [`CausalReport`] — the deterministic markdown/JSON "Critical
//!   paths" artifact surfaced through `RunReport`. When the ring
//!   dropped events the report degrades to an explicit
//!   `[truncated: N events]` verdict instead of a silently broken DAG.
//!
//! Everything here is read-only with respect to the virtual clock:
//! recording and analysis never advance time, so the virtual-time
//! invariance assertions hold with causal tracing on or off.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use crate::json::Json;
use crate::{cat, ArgValue, Phase, TraceEvent, Tracer};

/// The propagated causal identity of one request: which trace the work
/// belongs to and which span within it is currently executing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanContext {
    /// The request's trace id (stable across every hop).
    pub trace_id: u64,
    /// The currently-executing span within the trace.
    pub span_id: u64,
}

/// Category a gap on the critical path falls into when its predecessor
/// is a same-trace parent edge and the span recorded no wait reason.
pub const WAIT_SCHED: &str = "wait.sched";
/// The catch-all for request time the walk could not attribute.
pub const UNATTRIBUTED: &str = "other";

fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct CausalInner {
    tracer: Tracer,
    rng: Cell<u64>,
    current: Cell<Option<SpanContext>>,
}

/// The engine-owned recording handle. Cheaply cloneable (`Rc` under
/// the hood); id minting is always live (it is deterministic and must
/// not depend on whether a sink is attached), event emission is gated
/// by the tracer's enabled flag.
#[derive(Clone)]
pub struct Causal {
    inner: Rc<CausalInner>,
}

impl Causal {
    /// A handle minting from the stream derived from `seed`. The
    /// derivation differs from the engine's own `random_u64` stream,
    /// so causal ids never collide with (or consume) simulation draws.
    pub fn new(seed: u64, tracer: Tracer) -> Causal {
        Causal {
            inner: Rc::new(CausalInner {
                tracer,
                // Offset the state so the causal stream and the
                // engine's simulation stream differ even at seed 0.
                rng: Cell::new(seed ^ 0xD0_FF_10_CA_5A_11_00_01),
                current: Cell::new(None),
            }),
        }
    }

    /// A handle that mints ids but records nothing.
    pub fn disabled() -> Causal {
        Causal::new(0, Tracer::disabled())
    }

    /// Whether flow/span events will actually be recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.tracer.enabled()
    }

    fn mint(&self) -> u64 {
        let mut s = self.inner.rng.get();
        let id = split_mix64(&mut s);
        self.inner.rng.set(s);
        // Zero is the wire encoding of "no context"; skip it.
        if id == 0 {
            self.mint()
        } else {
            id
        }
    }

    /// The ambient context of the currently-running event or slice.
    #[inline]
    pub fn current(&self) -> Option<SpanContext> {
        self.inner.current.get()
    }

    /// Install the ambient context, returning the previous one (the
    /// caller restores it when its scope ends).
    #[inline]
    pub fn set_current(&self, ctx: Option<SpanContext>) -> Option<SpanContext> {
        self.inner.current.replace(ctx)
    }

    /// Mint a fresh root context (new trace).
    pub fn root(&self) -> SpanContext {
        let trace_id = self.mint();
        let span_id = self.mint();
        SpanContext { trace_id, span_id }
    }

    /// Mint a child span within `parent`'s trace.
    pub fn child(&self, parent: SpanContext) -> SpanContext {
        SpanContext {
            trace_id: parent.trace_id,
            span_id: self.mint(),
        }
    }

    /// Begin a request: mint a root context and record the ingress
    /// marker carrying the request class.
    pub fn begin_request(&self, class: impl Into<Cow<'static, str>>, now_ns: u64) -> SpanContext {
        let ctx = self.root();
        if self.enabled() {
            self.inner.tracer.instant(
                cat::CAUSAL,
                "req.begin",
                now_ns,
                0,
                vec![
                    ("trace", ArgValue::U64(ctx.trace_id)),
                    ("span", ArgValue::U64(ctx.span_id)),
                    ("class", ArgValue::Str(class.into())),
                ],
            );
        }
        ctx
    }

    /// End the request rooted at `ctx`.
    pub fn end_request(&self, ctx: SpanContext, now_ns: u64) {
        if self.enabled() {
            self.inner.tracer.instant(
                cat::CAUSAL,
                "req.end",
                now_ns,
                0,
                vec![
                    ("trace", ArgValue::U64(ctx.trace_id)),
                    ("span", ArgValue::U64(ctx.span_id)),
                ],
            );
        }
    }

    /// Record a completed unit of attributed work. `category` becomes
    /// the span's attribution bucket ("interp", "dispatch",
    /// "storage.journal", …); `wait` names what the span's owner was
    /// waiting on in the gap *before* this span started (pipe
    /// backpressure, a child, the scheduler).
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        category: &'static str,
        ctx: SpanContext,
        parent_span: u64,
        start_ns: u64,
        end_ns: u64,
        tid: u32,
        wait: Option<&'static str>,
    ) {
        if self.enabled() {
            let mut args = vec![
                ("trace", ArgValue::U64(ctx.trace_id)),
                ("span", ArgValue::U64(ctx.span_id)),
                ("parent", ArgValue::U64(parent_span)),
            ];
            if let Some(w) = wait {
                args.push(("wait", ArgValue::Str(Cow::Borrowed(w))));
            }
            self.inner.tracer.record(TraceEvent {
                name: Cow::Borrowed(category),
                cat: cat::CAUSAL,
                phase: Phase::Complete,
                ts_ns: start_ns,
                dur_ns: end_ns.saturating_sub(start_ns),
                tid,
                id: 0,
                args,
            });
        }
    }

    /// Begin a cross-domain flow edge of `kind` leaving `src` at
    /// `now_ns`, returning the flow id the consumer must finish with.
    pub fn flow_start(&self, kind: &'static str, src: SpanContext, now_ns: u64, tid: u32) -> u64 {
        let id = self.mint();
        if self.enabled() {
            self.inner.tracer.record(TraceEvent {
                name: Cow::Borrowed(kind),
                cat: cat::CAUSAL,
                phase: Phase::FlowStart,
                ts_ns: now_ns,
                dur_ns: 0,
                tid,
                id,
                args: vec![
                    ("trace", ArgValue::U64(src.trace_id)),
                    ("span", ArgValue::U64(src.span_id)),
                ],
            });
        }
        id
    }

    /// Finish flow `flow_id` at its consumer span `dst`.
    pub fn flow_end(
        &self,
        kind: &'static str,
        flow_id: u64,
        dst: SpanContext,
        now_ns: u64,
        tid: u32,
    ) {
        if self.enabled() {
            self.inner.tracer.record(TraceEvent {
                name: Cow::Borrowed(kind),
                cat: cat::CAUSAL,
                phase: Phase::FlowEnd,
                ts_ns: now_ns,
                dur_ns: 0,
                tid,
                id: flow_id,
                args: vec![
                    ("trace", ArgValue::U64(dst.trace_id)),
                    ("span", ArgValue::U64(dst.span_id)),
                ],
            });
        }
    }

    /// Record a named causal marker (a point fact tests can query, e.g.
    /// `storage.journal.append` with `key` = the journal sequence).
    pub fn mark(&self, name: &'static str, ctx: SpanContext, key: u64, now_ns: u64) {
        if self.enabled() {
            self.inner.tracer.instant(
                cat::CAUSAL,
                name,
                now_ns,
                0,
                vec![
                    ("trace", ArgValue::U64(ctx.trace_id)),
                    ("span", ArgValue::U64(ctx.span_id)),
                    ("key", ArgValue::U64(key)),
                ],
            );
        }
    }
}

impl std::fmt::Debug for Causal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Causal")
            .field("enabled", &self.enabled())
            .field("current", &self.current())
            .finish()
    }
}

// ---------------------------------------------------------------------
// The offline analyzer
// ---------------------------------------------------------------------

fn arg_u64(ev: &TraceEvent, key: &str) -> Option<u64> {
    ev.args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| {
        if let ArgValue::U64(n) = v {
            Some(*n)
        } else {
            None
        }
    })
}

fn arg_str<'a>(ev: &'a TraceEvent, key: &str) -> Option<&'a str> {
    ev.args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| {
        if let ArgValue::Str(s) = v {
            Some(s.as_ref())
        } else {
            None
        }
    })
}

/// One reconstructed span node in the causality DAG.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 when the span is a trace root).
    pub parent: u64,
    /// Attribution category (the span event's name), empty for spans
    /// only ever referenced by flows or markers.
    pub category: String,
    /// What the span's owner waited on before this span started.
    pub wait: Option<String>,
    /// Earliest timestamp attributed to the span.
    pub start_ns: u64,
    /// Latest timestamp attributed to the span.
    pub end_ns: u64,
}

/// One flow edge: `src` handed work to `dst`, leaving at `start_ns`
/// and landing at `end_ns`.
#[derive(Clone, Debug)]
struct FlowEdge {
    kind: String,
    src: u64,
    start_ns: u64,
    end_ns: u64,
}

/// A request window recorded by `req.begin`/`req.end`.
#[derive(Clone, Debug)]
pub struct RequestNode {
    /// The request's trace id.
    pub trace_id: u64,
    /// Root span id.
    pub root_span: u64,
    /// Request class (`proc:grep`, `storage:put`, …).
    pub class: String,
    /// Ingress timestamp.
    pub begin_ns: u64,
    /// Completion timestamp (`None` for requests still in flight when
    /// the trace ended).
    pub end_ns: Option<u64>,
}

/// A named point fact ([`Causal::mark`]) tests assert over.
#[derive(Clone, Debug)]
pub struct Marker {
    /// Marker name.
    pub name: String,
    /// Span it was recorded in.
    pub span_id: u64,
    /// Correlation key (journal seq, req id, …).
    pub key: u64,
    /// When it was recorded.
    pub ts_ns: u64,
}

/// One step of a rendered critical path: `ns` nanoseconds attributed
/// to `category`.
pub type PathStep = (String, u64);

/// The reconstructed per-request causality DAG over a recorded event
/// stream. Build it with [`CausalGraph::build`]; the analyzer only
/// reads events in the `causal` category and ignores everything else.
#[derive(Debug, Default)]
pub struct CausalGraph {
    spans: BTreeMap<u64, SpanNode>,
    flows_in: BTreeMap<u64, Vec<usize>>,
    flows: Vec<FlowEdge>,
    requests: Vec<RequestNode>,
    markers: Vec<Marker>,
    /// Events the ring evicted before analysis; a non-zero count means
    /// the DAG is incomplete and verdicts must say so.
    pub dropped: u64,
}

impl CausalGraph {
    /// Reconstruct the DAG from `events`. `dropped` is the ring's
    /// eviction count: when non-zero the graph still builds (tolerating
    /// unmatched flows and orphan spans) but reports the truncation.
    pub fn build(events: &[TraceEvent], dropped: u64) -> CausalGraph {
        let mut g = CausalGraph {
            dropped,
            ..CausalGraph::default()
        };
        let mut open_flows: BTreeMap<u64, (String, u64, u64)> = BTreeMap::new();
        for ev in events.iter().filter(|e| e.cat == cat::CAUSAL) {
            let (Some(trace), Some(span)) = (arg_u64(ev, "trace"), arg_u64(ev, "span")) else {
                continue;
            };
            match ev.phase {
                Phase::Complete => {
                    let node = g.touch(trace, span, ev.ts_ns);
                    node.category = ev.name.to_string();
                    node.wait = arg_str(ev, "wait").map(str::to_string);
                    node.parent = arg_u64(ev, "parent").unwrap_or(0);
                    node.start_ns = node.start_ns.min(ev.ts_ns);
                    node.end_ns = node.end_ns.max(ev.ts_ns + ev.dur_ns);
                }
                Phase::FlowStart => {
                    g.touch(trace, span, ev.ts_ns);
                    open_flows.insert(ev.id, (ev.name.to_string(), span, ev.ts_ns));
                }
                Phase::FlowEnd => {
                    // A FlowEnd whose start was evicted (or dropped by
                    // a fault) is tolerated: no edge, no panic.
                    if let Some((kind, src, start_ns)) = open_flows.remove(&ev.id) {
                        g.touch(trace, span, ev.ts_ns);
                        let idx = g.flows.len();
                        g.flows.push(FlowEdge {
                            kind,
                            src,
                            start_ns,
                            end_ns: ev.ts_ns,
                        });
                        g.flows_in.entry(span).or_default().push(idx);
                    }
                }
                Phase::Instant => match ev.name.as_ref() {
                    "req.begin" => {
                        g.touch(trace, span, ev.ts_ns);
                        g.requests.push(RequestNode {
                            trace_id: trace,
                            root_span: span,
                            class: arg_str(ev, "class").unwrap_or("?").to_string(),
                            begin_ns: ev.ts_ns,
                            end_ns: None,
                        });
                    }
                    "req.end" => {
                        if let Some(r) = g
                            .requests
                            .iter_mut()
                            .rev()
                            .find(|r| r.trace_id == trace && r.end_ns.is_none())
                        {
                            r.end_ns = Some(ev.ts_ns);
                        }
                    }
                    name => {
                        g.touch(trace, span, ev.ts_ns);
                        g.markers.push(Marker {
                            name: name.to_string(),
                            span_id: span,
                            key: arg_u64(ev, "key").unwrap_or(0),
                            ts_ns: ev.ts_ns,
                        });
                    }
                },
                _ => {}
            }
        }
        g
    }

    fn touch(&mut self, trace: u64, span: u64, ts: u64) -> &mut SpanNode {
        let node = self.spans.entry(span).or_insert(SpanNode {
            trace_id: trace,
            span_id: span,
            parent: 0,
            category: String::new(),
            wait: None,
            start_ns: ts,
            end_ns: ts,
        });
        node.start_ns = node.start_ns.min(ts);
        node.end_ns = node.end_ns.max(ts);
        node
    }

    /// Every request window found in the stream, in recorded order.
    pub fn requests(&self) -> &[RequestNode] {
        &self.requests
    }

    /// Every span of `trace_id`, in span-id order.
    pub fn spans_for(&self, trace_id: u64) -> Vec<&SpanNode> {
        self.spans
            .values()
            .filter(|s| s.trace_id == trace_id)
            .collect()
    }

    /// Whether span `a` can reach span `b` along the causal edges
    /// (parent→child and flow src→dst). Reflexive.
    pub fn reaches(&self, a: u64, b: u64) -> bool {
        if a == b {
            return true;
        }
        // Walk backward from b: predecessor sets are what the graph
        // indexes (parents and inbound flows).
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([b]);
        while let Some(cur) = queue.pop_front() {
            if cur == a {
                return true;
            }
            if !seen.insert(cur) {
                continue;
            }
            if let Some(node) = self.spans.get(&cur) {
                if node.parent != 0 {
                    queue.push_back(node.parent);
                }
            }
            if let Some(edges) = self.flows_in.get(&cur) {
                for &i in edges {
                    queue.push_back(self.flows[i].src);
                }
            }
        }
        false
    }

    /// Walk the virtual-time critical path of one request backward
    /// from its completion, attributing every nanosecond of
    /// `[begin, end]` to a category. Returns the steps in path order
    /// (latest first) — the sum of step durations equals the request's
    /// wall time exactly.
    pub fn critical_path(&self, req: &RequestNode) -> Vec<PathStep> {
        let mut steps: Vec<PathStep> = Vec::new();
        let mut push = |cat: &str, ns: u64| {
            if ns == 0 {
                return;
            }
            match steps.last_mut() {
                Some((c, n)) if c == cat => *n += ns,
                _ => steps.push((cat.to_string(), ns)),
            }
        };
        let end = match req.end_ns {
            Some(e) => e,
            None => return steps,
        };
        // Terminal node: the latest-ending span of the request's trace
        // (deterministic tie-break on span id).
        let terminal = self
            .spans
            .values()
            .filter(|s| s.trace_id == req.trace_id)
            .max_by_key(|s| (s.end_ns, s.span_id));
        let Some(terminal) = terminal else {
            push(UNATTRIBUTED, end - req.begin_ns);
            return steps;
        };

        let mut cursor = end;
        let mut current = terminal.span_id;
        let mut hops = 0usize;
        while cursor > req.begin_ns {
            // A malformed graph (truncated ring) could cycle; bail to
            // the unattributed bucket rather than spin.
            hops += 1;
            if hops > self.spans.len().saturating_mul(2) + 16 {
                push(UNATTRIBUTED, cursor - req.begin_ns);
                break;
            }
            let node = &self.spans[&current];
            // Work inside the span itself. A span known only from flow
            // touches has no category; its extent still has to land
            // somewhere or the steps would sum short of the wall time.
            let lo = node.start_ns.max(req.begin_ns).min(cursor);
            let hi = node.end_ns.min(cursor);
            if hi > lo {
                if node.category.is_empty() {
                    push(UNATTRIBUTED, hi - lo);
                } else {
                    push(&node.category, hi - lo);
                }
            }
            cursor = cursor.min(lo.max(node.start_ns.min(cursor)));
            cursor = cursor.min(node.start_ns.max(req.begin_ns));
            if cursor <= req.begin_ns {
                break;
            }
            // Choose the predecessor that kept us waiting longest: the
            // flow or parent whose hand-off happened latest (flow edges
            // win ties — they carry the sharper category).
            let mut best: Option<(u64, bool, u64, usize)> = None; // (ts, is_flow, span, flow idx)
            if let Some(edges) = self.flows_in.get(&current) {
                for &i in edges {
                    let f = &self.flows[i];
                    if f.end_ns <= cursor {
                        let cand = (f.start_ns, true, f.src, i);
                        if best.is_none()
                            || (cand.0, cand.1, cand.2)
                                > (best.unwrap().0, best.unwrap().1, best.unwrap().2)
                        {
                            best = Some(cand);
                        }
                    }
                }
            }
            if node.parent != 0 {
                if let Some(p) = self.spans.get(&node.parent) {
                    let p_end = p.end_ns.min(cursor);
                    let cand = (p_end, false, p.span_id, usize::MAX);
                    if best.is_none()
                        || (cand.0, cand.1, cand.2)
                            > (best.unwrap().0, best.unwrap().1, best.unwrap().2)
                    {
                        best = Some(cand);
                    }
                }
            }
            match best {
                Some((hand_off, is_flow, pred, idx)) => {
                    let gap_to = hand_off.min(cursor);
                    let gap = cursor - gap_to;
                    if gap > 0 {
                        let cat = if is_flow {
                            format!("wait.{}", self.flows[idx].kind)
                        } else {
                            node.wait.clone().unwrap_or_else(|| WAIT_SCHED.to_string())
                        };
                        push(&cat, gap);
                    }
                    cursor = gap_to;
                    current = pred;
                }
                None => {
                    // No predecessor: whatever remains before this span
                    // is the span's own wait reason, or unattributed.
                    let cat = node
                        .wait
                        .clone()
                        .unwrap_or_else(|| UNATTRIBUTED.to_string());
                    push(&cat, cursor - req.begin_ns);
                    cursor = req.begin_ns;
                }
            }
        }
        steps
    }
}

// ---------------------------------------------------------------------
// Queries for tests
// ---------------------------------------------------------------------

/// Causal-invariant queries over a built [`CausalGraph`].
pub struct TraceQuery<'a> {
    graph: &'a CausalGraph,
}

impl<'a> TraceQuery<'a> {
    /// Query `graph`.
    pub fn new(graph: &'a CausalGraph) -> TraceQuery<'a> {
        TraceQuery { graph }
    }

    /// Every span recorded for `trace_id`, in span-id order.
    pub fn spans_for(&self, trace_id: u64) -> Vec<&SpanNode> {
        self.graph.spans_for(trace_id)
    }

    /// Markers named `name`, in recorded order.
    pub fn markers(&self, name: &str) -> Vec<&Marker> {
        self.graph
            .markers
            .iter()
            .filter(|m| m.name == name)
            .collect()
    }

    /// Assert that every `a`-marker happens-before the `b`-marker with
    /// the same correlation key: `a.ts <= b.ts` *and* `a`'s span
    /// reaches `b`'s span on the causal DAG. Keys of `a` with no
    /// matching `b` are ignored (the request may still be in flight);
    /// a `b` with no matching `a` is an error — the effect exists with
    /// no recorded cause. Errors immediately on a truncated ring,
    /// because an evicted cause would be indistinguishable from a
    /// missing one.
    pub fn assert_happens_before(&self, a: &str, b: &str) -> Result<(), String> {
        if self.graph.dropped > 0 {
            return Err(format!(
                "[truncated: {} events] cannot assert {a} happens-before {b} over an incomplete graph",
                self.graph.dropped
            ));
        }
        let firsts: BTreeMap<u64, &Marker> =
            self.markers(a)
                .into_iter()
                .fold(BTreeMap::new(), |mut m, mk| {
                    m.entry(mk.key).or_insert(mk);
                    m
                });
        let mut checked = 0u64;
        for eb in self.markers(b) {
            let ea = firsts
                .get(&eb.key)
                .ok_or_else(|| format!("{b}(key={}) recorded with no preceding {a}", eb.key))?;
            if ea.ts_ns > eb.ts_ns {
                return Err(format!(
                    "{a}(key={}) at {}ns does not precede {b} at {}ns",
                    eb.key, ea.ts_ns, eb.ts_ns
                ));
            }
            if !self.graph.reaches(ea.span_id, eb.span_id) {
                return Err(format!(
                    "no causal path from {a}(key={}) span {:#x} to {b} span {:#x}",
                    eb.key, ea.span_id, eb.span_id
                ));
            }
            checked += 1;
        }
        if checked == 0 {
            return Err(format!("no {b} markers recorded; nothing to assert"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The report artifact
// ---------------------------------------------------------------------

/// Per-request-class aggregate of the critical-path analysis.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClassStats {
    /// Requests of this class that completed.
    pub requests: u64,
    /// Total request wall time (virtual ns).
    pub wall_ns: u64,
    /// Nanoseconds attributed to each category across all requests.
    pub attributed: BTreeMap<String, u64>,
    /// Wall time of the slowest request.
    pub slowest_wall_ns: u64,
    /// Trace id of the slowest request (deterministic tie-break:
    /// larger trace id wins among equals).
    pub slowest_trace: u64,
    /// The slowest request's critical path, latest step first.
    pub slowest_path: Vec<PathStep>,
}

impl ClassStats {
    /// Nanoseconds in named categories (everything but
    /// [`UNATTRIBUTED`]).
    pub fn named_ns(&self) -> u64 {
        self.attributed
            .iter()
            .filter(|(k, _)| k.as_str() != UNATTRIBUTED)
            .map(|(_, v)| v)
            .sum()
    }
}

/// The deterministic "Critical paths" artifact: per-class latency
/// attribution plus the slowest request's rendered critical path.
/// Mergeable across tenants/shards; byte-identical across reruns and
/// shard counts by construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CausalReport {
    /// Ring evictions at analysis time. Non-zero means the per-class
    /// tables are withheld and the report renders a
    /// `[truncated: N events]` verdict instead.
    pub truncated: u64,
    /// Completed requests that never produced a `req.end` are counted
    /// here, not silently dropped.
    pub in_flight: u64,
    /// Per-class statistics, keyed (and rendered) in class order.
    pub classes: BTreeMap<String, ClassStats>,
}

impl CausalReport {
    /// Analyze a recorded stream: build the [`CausalGraph`], walk
    /// every completed request's critical path, and aggregate per
    /// class. On a truncated ring (`dropped > 0`) the tables are
    /// withheld — an explicit verdict beats a silently broken DAG.
    pub fn analyze(events: &[TraceEvent], dropped: u64) -> CausalReport {
        let graph = CausalGraph::build(events, dropped);
        CausalReport::from_graph(&graph)
    }

    /// Analyze an already-built graph.
    pub fn from_graph(graph: &CausalGraph) -> CausalReport {
        let mut report = CausalReport {
            truncated: graph.dropped,
            ..CausalReport::default()
        };
        if graph.dropped > 0 {
            return report;
        }
        for req in graph.requests() {
            let Some(end) = req.end_ns else {
                report.in_flight += 1;
                continue;
            };
            let wall = end - req.begin_ns;
            let path = graph.critical_path(req);
            let stats = report.classes.entry(req.class.clone()).or_default();
            stats.requests += 1;
            stats.wall_ns += wall;
            for (cat, ns) in &path {
                *stats.attributed.entry(cat.clone()).or_insert(0) += ns;
            }
            if (wall, req.trace_id) >= (stats.slowest_wall_ns, stats.slowest_trace) {
                stats.slowest_wall_ns = wall;
                stats.slowest_trace = req.trace_id;
                stats.slowest_path = path;
            }
        }
        report
    }

    /// Merge per-tenant reports (order-independent: counters sum,
    /// slowest request is the max by `(wall, trace_id)`, truncation is
    /// sticky).
    pub fn merge(reports: &[CausalReport]) -> CausalReport {
        let mut out = CausalReport::default();
        for r in reports {
            out.truncated += r.truncated;
            out.in_flight += r.in_flight;
            for (class, s) in &r.classes {
                let slot = out.classes.entry(class.clone()).or_default();
                slot.requests += s.requests;
                slot.wall_ns += s.wall_ns;
                for (cat, ns) in &s.attributed {
                    *slot.attributed.entry(cat.clone()).or_insert(0) += ns;
                }
                if (s.slowest_wall_ns, s.slowest_trace)
                    >= (slot.slowest_wall_ns, slot.slowest_trace)
                {
                    slot.slowest_wall_ns = s.slowest_wall_ns;
                    slot.slowest_trace = s.slowest_trace;
                    slot.slowest_path = s.slowest_path.clone();
                }
            }
        }
        if out.truncated > 0 {
            // A truncated shard poisons the merged tables the same way
            // it poisons its own.
            out.classes.clear();
        }
        out
    }

    /// The markdown "Critical paths" section body.
    pub fn to_markdown(&self) -> String {
        let mut md = String::new();
        if self.truncated > 0 {
            md.push_str(&format!(
                "[truncated: {} events] — the trace ring evicted events; \
                 the causality DAG is incomplete and no critical path is reported. \
                 Raise the ring capacity to analyze this run.\n",
                self.truncated
            ));
            return md;
        }
        if self.classes.is_empty() {
            md.push_str("no completed requests recorded\n");
            return md;
        }
        if self.in_flight > 0 {
            md.push_str(&format!("{} requests still in flight\n\n", self.in_flight));
        }
        md.push_str("| class | requests | wall ns | attributed | breakdown |\n");
        md.push_str("|---|---:|---:|---:|---|\n");
        for (class, s) in &self.classes {
            let named = s.named_ns();
            let pct = if s.wall_ns == 0 {
                100.0
            } else {
                named as f64 * 100.0 / s.wall_ns as f64
            };
            let breakdown = s
                .attributed
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            md.push_str(&format!(
                "| `{class}` | {} | {} | {pct:.1}% | {breakdown} |\n",
                s.requests, s.wall_ns
            ));
        }
        for (class, s) in &self.classes {
            if s.slowest_path.is_empty() {
                continue;
            }
            md.push_str(&format!(
                "\nslowest `{class}` request ({} ns): ",
                s.slowest_wall_ns
            ));
            let rendered = s
                .slowest_path
                .iter()
                .rev()
                .map(|(c, ns)| format!("{c}:{ns}"))
                .collect::<Vec<_>>()
                .join(" → ");
            md.push_str(&rendered);
            md.push('\n');
        }
        md
    }

    /// The report as a [`Json`] value (deterministic key order).
    pub fn to_json(&self) -> Json {
        let mut root = BTreeMap::new();
        root.insert("truncated".into(), Json::Num(self.truncated as f64));
        root.insert("in_flight".into(), Json::Num(self.in_flight as f64));
        let classes: BTreeMap<String, Json> = self
            .classes
            .iter()
            .map(|(class, s)| {
                let mut o = BTreeMap::new();
                o.insert("requests".into(), Json::Num(s.requests as f64));
                o.insert("wall_ns".into(), Json::Num(s.wall_ns as f64));
                let attributed: BTreeMap<String, Json> = s
                    .attributed
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect();
                o.insert("attributed".into(), Json::Obj(attributed));
                o.insert(
                    "slowest_wall_ns".into(),
                    Json::Num(s.slowest_wall_ns as f64),
                );
                o.insert(
                    "slowest_path".into(),
                    Json::Arr(
                        s.slowest_path
                            .iter()
                            .rev()
                            .map(|(c, ns)| {
                                Json::Arr(vec![Json::Str(c.clone()), Json::Num(*ns as f64)])
                            })
                            .collect(),
                    ),
                );
                (class.clone(), Json::Obj(o))
            })
            .collect();
        root.insert("classes".into(), Json::Obj(classes));
        Json::Obj(root)
    }

    /// JSON rendering as a string (pretty, sorted keys, trailing
    /// newline) — the CI diff artifact.
    pub fn to_json_string(&self) -> String {
        crate::json::to_string(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RingSink;

    fn causal_on(capacity: usize) -> (Causal, Rc<RingSink>) {
        let sink = Rc::new(RingSink::with_capacity(capacity));
        let c = Causal::new(7, Tracer::new(sink.clone()));
        (c, sink)
    }

    #[test]
    fn minting_is_deterministic_and_never_zero() {
        let a = Causal::new(42, Tracer::disabled());
        let b = Causal::new(42, Tracer::disabled());
        let (ra, rb) = (a.root(), b.root());
        assert_eq!(ra, rb, "same seed, same ids");
        assert_ne!(ra.trace_id, 0);
        assert_ne!(a.root(), ra, "stream advances");
        let c = Causal::new(43, Tracer::disabled());
        assert_ne!(c.root(), ra, "different seed, different ids");
    }

    #[test]
    fn request_attribution_covers_the_whole_wall() {
        let (c, sink) = causal_on(1024);
        // A request: root span works 0-10, hands off over a pipe
        // (10 → 25), consumer works 25-40, ends at 40.
        let root = c.begin_request("proc:test", 0);
        c.span("interp", root, 0, 0, 10, 0, None);
        let f = c.flow_start("pipe", root, 10, 0);
        let consumer = c.child(root);
        c.flow_end("pipe", f, consumer, 25, 0);
        c.span("interp", consumer, root.span_id, 25, 40, 0, None);
        c.end_request(root, 40);

        let report = CausalReport::analyze(&sink.events(), 0);
        let s = &report.classes["proc:test"];
        assert_eq!(s.requests, 1);
        assert_eq!(s.wall_ns, 40);
        assert_eq!(s.attributed["interp"], 25);
        assert_eq!(s.attributed["wait.pipe"], 15);
        assert_eq!(s.named_ns(), 40, "every ns lands in a named category");
        let total: u64 = s.slowest_path.iter().map(|(_, ns)| ns).sum();
        assert_eq!(total, 40, "path steps sum to the wall exactly");
    }

    #[test]
    fn parent_gaps_use_the_span_wait_reason() {
        let (c, sink) = causal_on(1024);
        let root = c.begin_request("proc:w", 0);
        c.span("interp", root, 0, 0, 10, 0, None);
        let s2 = c.child(root);
        c.span(
            "interp",
            s2,
            root.span_id,
            30,
            35,
            0,
            Some("wait.pipe.write"),
        );
        c.end_request(root, 35);
        let report = CausalReport::analyze(&sink.events(), 0);
        let s = &report.classes["proc:w"];
        assert_eq!(s.attributed["wait.pipe.write"], 20, "{:?}", s.attributed);
        assert_eq!(s.attributed["interp"], 15);
    }

    #[test]
    fn happens_before_holds_along_flows_and_fails_without_a_path() {
        let (c, sink) = causal_on(1024);
        let a = c.root();
        c.mark("journal.append", a, 1, 5);
        let f = c.flow_start("repl", a, 6, 0);
        let b = c.child(a);
        c.flow_end("repl", f, b, 9, 0);
        c.mark("repl.ack", b, 1, 10);
        // An unrelated trace acks key 2 with no journal cause.
        let stray = c.root();
        c.mark("repl.ack", stray, 2, 11);

        let graph = CausalGraph::build(&sink.events(), 0);
        let q = TraceQuery::new(&graph);
        assert!(q
            .assert_happens_before("journal.append", "repl.ack")
            .is_err());

        // Restrict to the well-formed key: rebuild without the stray.
        let evs: Vec<TraceEvent> = sink
            .events()
            .into_iter()
            .filter(|e| arg_u64(e, "trace") != Some(stray.trace_id))
            .collect();
        let graph = CausalGraph::build(&evs, 0);
        let q = TraceQuery::new(&graph);
        q.assert_happens_before("journal.append", "repl.ack")
            .expect("journal precedes ack along the repl flow");
        assert!(
            q.assert_happens_before("repl.ack", "journal.append")
                .is_err(),
            "the reverse direction must not hold"
        );
        assert_eq!(q.spans_for(a.trace_id).len(), 2);
    }

    #[test]
    fn truncated_ring_degrades_to_an_explicit_verdict() {
        // A ring far too small for the stream: events are evicted.
        let (c, sink) = causal_on(4);
        for i in 0..10 {
            let root = c.begin_request("proc:t", i * 100);
            c.span("interp", root, 0, i * 100, i * 100 + 50, 0, None);
            c.end_request(root, i * 100 + 50);
        }
        assert!(sink.dropped() > 0, "the forged ring must actually drop");
        let report = CausalReport::analyze(&sink.events(), sink.dropped());
        assert_eq!(report.truncated, sink.dropped());
        assert!(report.classes.is_empty(), "tables withheld when truncated");
        let md = report.to_markdown();
        assert!(
            md.contains(&format!("[truncated: {} events]", sink.dropped())),
            "{md}"
        );
        let graph = CausalGraph::build(&sink.events(), sink.dropped());
        let q = TraceQuery::new(&graph);
        let err = q.assert_happens_before("a", "b").unwrap_err();
        assert!(err.contains("[truncated:"), "{err}");
    }

    #[test]
    fn merge_is_order_independent_and_truncation_is_sticky() {
        let (c1, s1) = causal_on(1024);
        let r1 = c1.begin_request("proc:a", 0);
        c1.span("interp", r1, 0, 0, 10, 0, None);
        c1.end_request(r1, 10);
        let a = CausalReport::analyze(&s1.events(), 0);

        let (c2, s2) = causal_on(1024);
        let r2 = c2.begin_request("proc:a", 0);
        c2.span("interp", r2, 0, 0, 30, 0, None);
        c2.end_request(r2, 30);
        let b = CausalReport::analyze(&s2.events(), 0);

        let ab = CausalReport::merge(&[a.clone(), b.clone()]);
        let ba = CausalReport::merge(&[b.clone(), a.clone()]);
        assert_eq!(ab.to_json_string(), ba.to_json_string());
        assert_eq!(ab.classes["proc:a"].requests, 2);
        assert_eq!(ab.classes["proc:a"].wall_ns, 40);
        assert_eq!(ab.classes["proc:a"].slowest_wall_ns, 30);

        let trunc = CausalReport {
            truncated: 3,
            ..CausalReport::default()
        };
        let merged = CausalReport::merge(&[a, trunc]);
        assert_eq!(merged.truncated, 3);
        assert!(merged.classes.is_empty());
    }

    #[test]
    fn unfinished_flows_and_open_requests_are_tolerated() {
        let (c, sink) = causal_on(1024);
        let root = c.begin_request("proc:open", 0);
        c.flow_start("net", root, 5, 0); // dropped by a fault: never ends
        let done = c.begin_request("proc:done", 0);
        c.span("interp", done, 0, 0, 20, 0, None);
        c.end_request(done, 20);
        let report = CausalReport::analyze(&sink.events(), 0);
        assert_eq!(report.in_flight, 1);
        assert_eq!(report.classes.len(), 1);
        assert!(report.classes.contains_key("proc:done"));
    }
}
