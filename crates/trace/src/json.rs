//! A minimal JSON reader and writer.
//!
//! The workspace builds offline (no serde), but the exporter's output
//! must be *provably* valid JSON — the integration tests parse every
//! exported trace with this module. It is a strict recursive-descent
//! parser for the subset of JSON the exporter emits plus everything a
//! hand-edited trace could contain; it is not a performance target.
//!
//! [`to_string`] is the matching pretty-printer: object keys come out
//! in `BTreeMap` order, so serialized documents (bench results,
//! `RunReport`s) are deterministic and diffable across runs.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Json::Str(string(b, pos)?)),
        Some(b't') => literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => literal(b, pos, "null", Json::Null),
        Some(_) => number(b, pos),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let v = value(b, pos)?;
        map.insert(key, v);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // '"'
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not emitted by our
                        // exporter; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so
                // boundaries are valid).
                let s = &b[*pos..];
                let ch_len = utf8_len(s[0]);
                let chunk = std::str::from_utf8(&s[..ch_len]).map_err(|e| e.to_string())?;
                out.push_str(chunk);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

/// Serialize a [`Json`] value (pretty, two-space indent, keys in
/// `BTreeMap` order — deterministic across runs). Ends with a newline.
pub fn to_string(v: &Json) -> String {
    let mut out = String::new();
    emit(v, 0, &mut out);
    out.push('\n');
    out
}

fn emit(v: &Json, indent: usize, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => emit_str(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent + 1));
                emit(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Json::Obj(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent + 1));
                emit_str(k, out);
                out.push_str(": ");
                emit(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
    }
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializer_round_trips_through_the_parser() {
        let mut obj = BTreeMap::new();
        obj.insert("a \"x\"\n".to_string(), Json::Num(1.5));
        obj.insert(
            "b".to_string(),
            Json::Arr(vec![Json::Null, Json::Bool(true)]),
        );
        obj.insert("c".to_string(), Json::Obj(BTreeMap::new()));
        let v = Json::Obj(obj);
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        let mut s = String::new();
        emit(&Json::Num(12345.0), 0, &mut s);
        assert_eq!(s, "12345");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"c"},[]],"d":{}}"#).unwrap();
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(arr[2].as_array().map(Vec::len), Some(0));
        assert_eq!(v.get("d"), Some(&Json::Obj(BTreeMap::new())));
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse("\"caf\u{e9} \\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("café A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
