//! Fixed-capacity event storage.
//!
//! Traces of long simulated runs can produce millions of events; the
//! recorder must not turn a bounded simulation into unbounded memory.
//! [`RingBuffer`] keeps the most recent `capacity` events and counts the
//! ones it evicted, so the exporter can report truncation honestly.

use crate::TraceEvent;

/// A circular buffer of [`TraceEvent`]s that overwrites its oldest
/// entries once full.
#[derive(Debug)]
pub struct RingBuffer {
    slots: Vec<Option<TraceEvent>>,
    /// Index of the next slot to write.
    head: usize,
    len: usize,
    dropped: u64,
}

impl RingBuffer {
    /// A ring holding at most `capacity` events. `capacity` must be
    /// non-zero.
    pub fn new(capacity: usize) -> RingBuffer {
        assert!(capacity > 0, "ring capacity must be non-zero");
        RingBuffer {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if full. Returns whether
    /// an event was evicted, so callers can maintain a live drop
    /// counter without re-reading [`RingBuffer::dropped`].
    pub fn push(&mut self, ev: TraceEvent) -> bool {
        let evicted = self.slots[self.head].is_some();
        if evicted {
            self.dropped += 1;
        } else {
            self.len += 1;
        }
        self.slots[self.head] = Some(ev);
        self.head = (self.head + 1) % self.slots.len();
        evicted
    }

    /// Number of events currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// How many events were evicted to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The stored events, oldest first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        let cap = self.slots.len();
        // Oldest event sits at `head` once the ring has wrapped, at 0
        // otherwise.
        let start = if self.len == cap { self.head } else { 0 };
        (0..self.len)
            .filter_map(|i| self.slots[(start + i) % cap].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;
    use std::borrow::Cow;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            name: Cow::Borrowed("e"),
            cat: "engine",
            phase: Phase::Instant,
            ts_ns: ts,
            dur_ns: 0,
            tid: 0,
            id: 0,
            args: vec![],
        }
    }

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut r = RingBuffer::new(4);
        for ts in 0..4 {
            r.push(ev(ts));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        let ts: Vec<u64> = r.to_vec().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![0, 1, 2, 3]);

        // Two more pushes evict the two oldest.
        r.push(ev(4));
        r.push(ev(5));
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<u64> = r.to_vec().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![2, 3, 4, 5]);
    }

    #[test]
    fn wraps_many_times() {
        let mut r = RingBuffer::new(3);
        for ts in 0..100 {
            r.push(ev(ts));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 97);
        let ts: Vec<u64> = r.to_vec().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![97, 98, 99]);
    }

    #[test]
    fn partial_fill_preserves_order() {
        let mut r = RingBuffer::new(8);
        r.push(ev(10));
        r.push(ev(20));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        let ts: Vec<u64> = r.to_vec().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![10, 20]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        RingBuffer::new(0);
    }
}
