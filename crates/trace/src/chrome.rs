//! Chrome `trace_event` JSON exporter.
//!
//! Emits the "JSON object format" (`{"traceEvents": [...]}`) understood
//! by `chrome://tracing` and Perfetto's legacy importer. Timestamps in
//! that format are **microseconds**; ours are virtual nanoseconds, so
//! values are written as fractional micros to preserve ns precision.

use std::borrow::Cow;
use std::fmt::Write as _;

use crate::json::{self, Json};
use crate::{cat, ArgValue, Phase, TraceEvent};

/// Serialize `events` as a complete Chrome trace JSON document.
///
/// `dropped` (from the ring buffer) is recorded twice: in the
/// top-level `metadata` object, and — when non-zero — as a
/// `trace.dropped` metadata event *inside* `traceEvents`, because most
/// viewers surface events but not document metadata. Truncated traces
/// must never look complete.
pub fn export(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 120 + 128);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, ev);
    }
    if dropped > 0 {
        if !events.is_empty() {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"trace.dropped\",\"cat\":\"__metadata\",\"ph\":\"M\",\
             \"ts\":0,\"pid\":1,\"tid\":0,\"args\":{{\"dropped_events\":{dropped}}}}}"
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"metadata\":{");
    let _ = write!(out, "\"clock\":\"virtual\",\"dropped_events\":{dropped}");
    out.push_str("}}");
    out
}

fn write_event(out: &mut String, ev: &TraceEvent) {
    let ph = match ev.phase {
        Phase::Complete => "X",
        Phase::Instant => "i",
        Phase::Counter => "C",
        Phase::Metadata => "M",
        Phase::FlowStart => "s",
        Phase::FlowEnd => "f",
    };
    out.push_str("{\"name\":");
    write_str(out, &ev.name);
    out.push_str(",\"cat\":");
    write_str(out, ev.cat);
    let _ = write!(out, ",\"ph\":\"{ph}\",\"ts\":");
    write_micros(out, ev.ts_ns);
    if ev.phase == Phase::Complete {
        out.push_str(",\"dur\":");
        write_micros(out, ev.dur_ns);
    }
    if ev.phase == Phase::Instant {
        // Thread-scoped instant: renders as a tick on its lane.
        out.push_str(",\"s\":\"t\"");
    }
    if matches!(ev.phase, Phase::FlowStart | Phase::FlowEnd) {
        let _ = write!(out, ",\"id\":{}", ev.id);
        if ev.phase == Phase::FlowEnd {
            // Bind the arrow head to the enclosing slice, the viewer
            // convention for hand-offs that complete inside a span.
            out.push_str(",\"bp\":\"e\"");
        }
    }
    let _ = write!(out, ",\"pid\":1,\"tid\":{}", ev.tid);
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(out, k);
            out.push(':');
            write_arg(out, v);
        }
        out.push('}');
    }
    out.push('}');
}

/// Write `ns` as microseconds with nanosecond precision, avoiding
/// float formatting (exact, and stable across platforms).
fn write_micros(out: &mut String, ns: u64) {
    let whole = ns / 1000;
    let frac = ns % 1000;
    if frac == 0 {
        let _ = write!(out, "{whole}");
    } else {
        let _ = write!(out, "{whole}.{frac:03}");
    }
}

fn write_arg(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        // JSON has no NaN/Inf; stringify them rather than corrupt
        // the document.
        ArgValue::F64(x) => write_str(out, &x.to_string()),
        ArgValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        ArgValue::Str(s) => write_str(out, s),
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: export straight from a [`RingSink`](crate::RingSink).
pub fn export_sink(sink: &crate::RingSink) -> String {
    export(&sink.events(), sink.dropped())
}

/// Intern a parsed category back onto the workspace's `&'static`
/// vocabulary. Unknown categories map to the empty string — the
/// importer exists for re-analysis, and the analyzers only dispatch on
/// well-known names.
fn intern_cat(s: &str) -> &'static str {
    for known in [
        cat::ENGINE,
        cat::CORE,
        cat::FS,
        cat::NET,
        cat::JVM,
        cat::FAULT,
        cat::PERF,
        cat::SCHED,
        cat::PROC,
        cat::CAUSAL,
    ] {
        if s == known {
            return known;
        }
    }
    if s == "__metadata" {
        return "__metadata";
    }
    ""
}

/// Arg keys the emitters use, interned for the same reason.
fn intern_key(s: &str) -> Option<&'static str> {
    [
        "trace",
        "span",
        "parent",
        "wait",
        "class",
        "key",
        "value",
        "kind",
        "name",
        "pid",
        "thread",
        "step",
        "dropped_events",
    ]
    .into_iter()
    .find(|k| s == *k)
}

/// Parse a document produced by [`export`] back into events plus the
/// recorded dropped-event count — the strict half of the round-trip
/// the causal analyzer is tested against. Unknown arg keys are
/// skipped; malformed documents (or ones this exporter could not have
/// written) are errors, not best-effort guesses.
pub fn import(doc: &str) -> Result<(Vec<TraceEvent>, u64), String> {
    let v = json::parse(doc)?;
    let evs = v
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing traceEvents array")?;
    let dropped = v
        .get("metadata")
        .and_then(|m| m.get("dropped_events"))
        .and_then(Json::as_f64)
        .ok_or("missing metadata.dropped_events")? as u64;
    let ts_of = |e: &Json, key: &str| -> Result<u64, String> {
        let us = e
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric {key}"))?;
        Ok((us * 1000.0).round() as u64)
    };
    let mut out = Vec::with_capacity(evs.len());
    for e in evs {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or("event missing name")?
            .to_string();
        let cat_name = e
            .get("cat")
            .and_then(Json::as_str)
            .ok_or("event missing cat")?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or("event missing ph")?;
        let phase = match ph {
            "X" => Phase::Complete,
            "i" => Phase::Instant,
            "C" => Phase::Counter,
            "M" => Phase::Metadata,
            "s" => Phase::FlowStart,
            "f" => Phase::FlowEnd,
            other => return Err(format!("unknown phase {other:?}")),
        };
        let dur_ns = if phase == Phase::Complete {
            ts_of(e, "dur")?
        } else {
            0
        };
        let id = match e.get("id").and_then(Json::as_f64) {
            Some(n) => n as u64,
            None if matches!(phase, Phase::FlowStart | Phase::FlowEnd) => {
                return Err(format!("flow event {name:?} missing id"))
            }
            None => 0,
        };
        let mut args = Vec::new();
        if let Some(Json::Obj(map)) = e.get("args") {
            for (k, val) in map {
                let Some(key) = intern_key(k) else { continue };
                let arg = match val {
                    Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => ArgValue::U64(*n as u64),
                    Json::Num(n) => ArgValue::F64(*n),
                    Json::Bool(b) => ArgValue::Bool(*b),
                    Json::Str(s) => ArgValue::Str(Cow::Owned(s.clone())),
                    _ => continue,
                };
                args.push((key, arg));
            }
        }
        out.push(TraceEvent {
            name: Cow::Owned(name),
            cat: intern_cat(cat_name),
            phase,
            ts_ns: ts_of(e, "ts")?,
            dur_ns,
            tid: e.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u32,
            id,
            args,
        });
    }
    Ok((out, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use std::borrow::Cow;

    fn ev(name: &'static str, phase: Phase, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: Cow::Borrowed(name),
            cat: "engine",
            phase,
            ts_ns: ts,
            dur_ns: dur,
            tid: 0,
            id: 0,
            args: vec![],
        }
    }

    #[test]
    fn export_parses_and_round_trips_fields() {
        let mut e = ev("dispatch", Phase::Complete, 1_234_567, 2_500);
        e.args = vec![
            ("kind", "timer".into()),
            ("n", 42u64.into()),
            ("killed", false.into()),
        ];
        let doc = export(&[e, ev("mark", Phase::Instant, 5_000, 0)], 3);
        let v = json::parse(&doc).expect("exporter output must be valid JSON");
        let evs = v.get("traceEvents").and_then(Json::as_array).unwrap();
        // Two recorded events plus the trace.dropped marker.
        assert_eq!(evs.len(), 3);
        let first = &evs[0];
        assert_eq!(first.get("name").unwrap().as_str(), Some("dispatch"));
        assert_eq!(first.get("ph").unwrap().as_str(), Some("X"));
        // 1_234_567 ns == 1234.567 us
        assert_eq!(first.get("ts").unwrap().as_f64(), Some(1234.567));
        assert_eq!(first.get("dur").unwrap().as_f64(), Some(2.5));
        let args = first.get("args").unwrap();
        assert_eq!(args.get("kind").unwrap().as_str(), Some("timer"));
        assert_eq!(args.get("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(evs[1].get("s").unwrap().as_str(), Some("t"));
        assert_eq!(
            v.get("metadata")
                .unwrap()
                .get("dropped_events")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut e = ev("q", Phase::Instant, 0, 0);
        e.args = vec![("path", String::from("/tmp/\"x\"\n\\y").into())];
        let doc = export(&[e], 0);
        let v = json::parse(&doc).expect("escaped output parses");
        let evs = v.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(
            evs[0].get("args").unwrap().get("path").unwrap().as_str(),
            Some("/tmp/\"x\"\n\\y")
        );
    }

    #[test]
    fn dropped_events_surface_inside_the_event_stream() {
        let doc = export(&[ev("e", Phase::Instant, 1, 0)], 7);
        let v = json::parse(&doc).unwrap();
        let evs = v.get("traceEvents").and_then(Json::as_array).unwrap();
        let meta = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("trace.dropped"))
            .expect("trace.dropped metadata event present");
        assert_eq!(meta.get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            meta.get("args").unwrap().get("dropped_events").unwrap(),
            &Json::Num(7.0)
        );
        // A complete trace stays free of the marker.
        let clean = export(&[ev("e", Phase::Instant, 1, 0)], 0);
        assert!(!clean.contains("trace.dropped"));
    }

    #[test]
    fn flow_phases_survive_export_and_import() {
        let mut s = ev("pipe", Phase::FlowStart, 1_000, 0);
        s.cat = cat::CAUSAL;
        s.id = 77;
        s.args = vec![("trace", 5u64.into()), ("span", 6u64.into())];
        let mut f = ev("pipe", Phase::FlowEnd, 2_500, 0);
        f.cat = cat::CAUSAL;
        f.id = 77;
        f.args = vec![("trace", 5u64.into()), ("span", 9u64.into())];
        let doc = export(&[s, f], 0);
        let v = json::parse(&doc).unwrap();
        let evs = v.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("s"));
        assert_eq!(evs[0].get("id").unwrap().as_f64(), Some(77.0));
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("f"));
        assert_eq!(evs[1].get("bp").unwrap().as_str(), Some("e"));

        let (parsed, dropped) = import(&doc).expect("round-trip");
        assert_eq!(dropped, 0);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].phase, Phase::FlowStart);
        assert_eq!(parsed[0].id, 77);
        assert_eq!(parsed[0].cat, cat::CAUSAL);
        assert_eq!(parsed[0].ts_ns, 1_000);
        assert_eq!(parsed[1].phase, Phase::FlowEnd);
        assert_eq!(
            parsed[1].args,
            vec![("span", ArgValue::U64(9)), ("trace", ArgValue::U64(5)),]
        );
    }

    #[test]
    fn import_rejects_flow_events_without_an_id() {
        let doc = "{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"causal\",\
                    \"ph\":\"s\",\"ts\":1,\"pid\":1,\"tid\":0}],\
                    \"metadata\":{\"dropped_events\":0}}";
        assert!(import(doc).unwrap_err().contains("missing id"));
    }

    #[test]
    fn import_recovers_the_dropped_count() {
        let doc = export(&[ev("e", Phase::Instant, 1, 0)], 7);
        let (evs, dropped) = import(&doc).unwrap();
        assert_eq!(dropped, 7);
        // The trace.dropped metadata marker is parsed, not invented.
        assert_eq!(evs.len(), 2);
    }

    #[test]
    fn empty_trace_is_valid() {
        let v = json::parse(&export(&[], 0)).unwrap();
        assert_eq!(
            v.get("traceEvents").and_then(Json::as_array).map(Vec::len),
            Some(0)
        );
    }
}
