//! Chrome `trace_event` JSON exporter.
//!
//! Emits the "JSON object format" (`{"traceEvents": [...]}`) understood
//! by `chrome://tracing` and Perfetto's legacy importer. Timestamps in
//! that format are **microseconds**; ours are virtual nanoseconds, so
//! values are written as fractional micros to preserve ns precision.

use std::fmt::Write as _;

use crate::{ArgValue, Phase, TraceEvent};

/// Serialize `events` as a complete Chrome trace JSON document.
///
/// `dropped` (from the ring buffer) is recorded twice: in the
/// top-level `metadata` object, and — when non-zero — as a
/// `trace.dropped` metadata event *inside* `traceEvents`, because most
/// viewers surface events but not document metadata. Truncated traces
/// must never look complete.
pub fn export(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 120 + 128);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, ev);
    }
    if dropped > 0 {
        if !events.is_empty() {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"trace.dropped\",\"cat\":\"__metadata\",\"ph\":\"M\",\
             \"ts\":0,\"pid\":1,\"tid\":0,\"args\":{{\"dropped_events\":{dropped}}}}}"
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"metadata\":{");
    let _ = write!(out, "\"clock\":\"virtual\",\"dropped_events\":{dropped}");
    out.push_str("}}");
    out
}

fn write_event(out: &mut String, ev: &TraceEvent) {
    let ph = match ev.phase {
        Phase::Complete => "X",
        Phase::Instant => "i",
        Phase::Counter => "C",
        Phase::Metadata => "M",
    };
    out.push_str("{\"name\":");
    write_str(out, &ev.name);
    out.push_str(",\"cat\":");
    write_str(out, ev.cat);
    let _ = write!(out, ",\"ph\":\"{ph}\",\"ts\":");
    write_micros(out, ev.ts_ns);
    if ev.phase == Phase::Complete {
        out.push_str(",\"dur\":");
        write_micros(out, ev.dur_ns);
    }
    if ev.phase == Phase::Instant {
        // Thread-scoped instant: renders as a tick on its lane.
        out.push_str(",\"s\":\"t\"");
    }
    let _ = write!(out, ",\"pid\":1,\"tid\":{}", ev.tid);
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(out, k);
            out.push(':');
            write_arg(out, v);
        }
        out.push('}');
    }
    out.push('}');
}

/// Write `ns` as microseconds with nanosecond precision, avoiding
/// float formatting (exact, and stable across platforms).
fn write_micros(out: &mut String, ns: u64) {
    let whole = ns / 1000;
    let frac = ns % 1000;
    if frac == 0 {
        let _ = write!(out, "{whole}");
    } else {
        let _ = write!(out, "{whole}.{frac:03}");
    }
}

fn write_arg(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        // JSON has no NaN/Inf; stringify them rather than corrupt
        // the document.
        ArgValue::F64(x) => write_str(out, &x.to_string()),
        ArgValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        ArgValue::Str(s) => write_str(out, s),
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: export straight from a [`RingSink`](crate::RingSink).
pub fn export_sink(sink: &crate::RingSink) -> String {
    export(&sink.events(), sink.dropped())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use std::borrow::Cow;

    fn ev(name: &'static str, phase: Phase, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: Cow::Borrowed(name),
            cat: "engine",
            phase,
            ts_ns: ts,
            dur_ns: dur,
            tid: 0,
            args: vec![],
        }
    }

    #[test]
    fn export_parses_and_round_trips_fields() {
        let mut e = ev("dispatch", Phase::Complete, 1_234_567, 2_500);
        e.args = vec![
            ("kind", "timer".into()),
            ("n", 42u64.into()),
            ("killed", false.into()),
        ];
        let doc = export(&[e, ev("mark", Phase::Instant, 5_000, 0)], 3);
        let v = json::parse(&doc).expect("exporter output must be valid JSON");
        let evs = v.get("traceEvents").and_then(Json::as_array).unwrap();
        // Two recorded events plus the trace.dropped marker.
        assert_eq!(evs.len(), 3);
        let first = &evs[0];
        assert_eq!(first.get("name").unwrap().as_str(), Some("dispatch"));
        assert_eq!(first.get("ph").unwrap().as_str(), Some("X"));
        // 1_234_567 ns == 1234.567 us
        assert_eq!(first.get("ts").unwrap().as_f64(), Some(1234.567));
        assert_eq!(first.get("dur").unwrap().as_f64(), Some(2.5));
        let args = first.get("args").unwrap();
        assert_eq!(args.get("kind").unwrap().as_str(), Some("timer"));
        assert_eq!(args.get("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(evs[1].get("s").unwrap().as_str(), Some("t"));
        assert_eq!(
            v.get("metadata")
                .unwrap()
                .get("dropped_events")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut e = ev("q", Phase::Instant, 0, 0);
        e.args = vec![("path", String::from("/tmp/\"x\"\n\\y").into())];
        let doc = export(&[e], 0);
        let v = json::parse(&doc).expect("escaped output parses");
        let evs = v.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(
            evs[0].get("args").unwrap().get("path").unwrap().as_str(),
            Some("/tmp/\"x\"\n\\y")
        );
    }

    #[test]
    fn dropped_events_surface_inside_the_event_stream() {
        let doc = export(&[ev("e", Phase::Instant, 1, 0)], 7);
        let v = json::parse(&doc).unwrap();
        let evs = v.get("traceEvents").and_then(Json::as_array).unwrap();
        let meta = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("trace.dropped"))
            .expect("trace.dropped metadata event present");
        assert_eq!(meta.get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            meta.get("args").unwrap().get("dropped_events").unwrap(),
            &Json::Num(7.0)
        );
        // A complete trace stays free of the marker.
        let clean = export(&[ev("e", Phase::Instant, 1, 0)], 0);
        assert!(!clean.contains("trace.dropped"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let v = json::parse(&export(&[], 0)).unwrap();
        assert_eq!(
            v.get("traceEvents").and_then(Json::as_array).map(Vec::len),
            Some(0)
        );
    }
}
