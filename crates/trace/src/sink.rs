//! Where recorded events go.
//!
//! [`Tracer`](crate::Tracer) writes through an `Rc<dyn TraceSink>`. Two
//! implementations cover the workspace's needs: [`NullSink`] (tracing
//! off — the common case, and the one the bench suite proves is free)
//! and [`RingSink`] (tracing on, bounded memory).

use std::cell::RefCell;

use crate::ring::RingBuffer;
use crate::TraceEvent;

/// Destination for trace events.
pub trait TraceSink {
    /// Store one event.
    fn record(&self, ev: TraceEvent);

    /// Whether this sink wants events at all. `Tracer` caches this
    /// answer at construction, so a sink cannot toggle mid-run.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything; `enabled()` is `false` so tracers built on it
/// skip event construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _ev: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Records into a fixed-capacity [`RingBuffer`]; the default sink for
/// `--trace` runs.
#[derive(Debug)]
pub struct RingSink {
    ring: RefCell<RingBuffer>,
}

impl RingSink {
    /// A sink whose ring holds at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> RingSink {
        RingSink {
            ring: RefCell::new(RingBuffer::new(capacity)),
        }
    }

    /// Snapshot of the recorded events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.borrow().to_vec()
    }

    /// How many events the ring evicted for lack of space.
    pub fn dropped(&self) -> u64 {
        self.ring.borrow().dropped()
    }
}

impl TraceSink for RingSink {
    fn record(&self, ev: TraceEvent) {
        self.ring.borrow_mut().push(ev);
    }
}

/// A generous default ring size: at ~100 bytes/event this caps trace
/// memory near 100 MB while holding several minutes of simulated run.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

impl Default for RingSink {
    fn default() -> RingSink {
        RingSink::with_capacity(DEFAULT_RING_CAPACITY)
    }
}
