//! Where recorded events go.
//!
//! [`Tracer`](crate::Tracer) writes through an `Rc<dyn TraceSink>`. Two
//! implementations cover the workspace's needs: [`NullSink`] (tracing
//! off — the common case, and the one the bench suite proves is free)
//! and [`RingSink`] (tracing on, bounded memory).

use std::cell::RefCell;

use crate::metrics::Counter;
use crate::ring::RingBuffer;
use crate::TraceEvent;

/// Destination for trace events.
pub trait TraceSink {
    /// Store one event.
    fn record(&self, ev: TraceEvent);

    /// Whether this sink wants events at all. `Tracer` caches this
    /// answer at construction, so a sink cannot toggle mid-run.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything; `enabled()` is `false` so tracers built on it
/// skip event construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _ev: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Records into a fixed-capacity [`RingBuffer`]; the default sink for
/// `--trace` runs.
#[derive(Debug)]
pub struct RingSink {
    ring: RefCell<RingBuffer>,
    /// Optional live mirror of the eviction count (the `trace.dropped`
    /// registry counter), so dashboards and `RunReport`s see drops
    /// without holding the sink.
    drop_counter: RefCell<Option<Counter>>,
}

impl RingSink {
    /// A sink whose ring holds at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> RingSink {
        RingSink {
            ring: RefCell::new(RingBuffer::new(capacity)),
            drop_counter: RefCell::new(None),
        }
    }

    /// Snapshot of the recorded events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.borrow().to_vec()
    }

    /// Maximum number of events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.ring.borrow().capacity()
    }

    /// Number of events currently stored.
    pub fn len(&self) -> usize {
        self.ring.borrow().len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.borrow().is_empty()
    }

    /// How many events the ring evicted for lack of space.
    pub fn dropped(&self) -> u64 {
        self.ring.borrow().dropped()
    }

    /// Mirror future evictions into `counter` (conventionally the
    /// registry's `trace.dropped`), seeding it with drops so far.
    pub fn set_drop_counter(&self, counter: Counter) {
        counter.set(self.dropped());
        *self.drop_counter.borrow_mut() = Some(counter);
    }
}

impl TraceSink for RingSink {
    fn record(&self, ev: TraceEvent) {
        if self.ring.borrow_mut().push(ev) {
            if let Some(c) = self.drop_counter.borrow().as_ref() {
                c.inc();
            }
        }
    }
}

/// A generous default ring size: at ~100 bytes/event this caps trace
/// memory near 100 MB while holding several minutes of simulated run.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

impl Default for RingSink {
    fn default() -> RingSink {
        RingSink::with_capacity(DEFAULT_RING_CAPACITY)
    }
}
