//! # doppio-trace — spans, counters, and Chrome traces on the virtual clock
//!
//! The paper's evaluation (§7) attributes *virtual* time to subsystems:
//! event dispatch, suspend checks, file-system backends, socket frames,
//! JVM method calls. This crate is the shared instrumentation layer that
//! makes that attribution possible across the workspace:
//!
//! * [`Tracer`] — a cheaply-cloneable handle that records [`TraceEvent`]s
//!   (complete spans, instants, counter samples) into a [`TraceSink`].
//!   When tracing is disabled the handle holds a [`NullSink`] and a
//!   cached `enabled: false`, so the hot path pays one branch and zero
//!   allocations per would-be span.
//! * [`RingBuffer`] / [`RingSink`] — fixed-capacity storage that keeps
//!   the *most recent* events and counts what it dropped, so tracing a
//!   long run cannot exhaust memory.
//! * [`MetricsRegistry`] / [`Counter`] / [`Snapshot`] — a process-wide
//!   named-counter registry. `EngineStats` and `FsStats` are views
//!   (`Snapshot` impls) over these counters rather than parallel
//!   bookkeeping.
//! * [`Histogram`] — log-bucketed latency/size distributions with
//!   deterministic percentiles, registered next to the counters and
//!   gated off by default (see [`hist`]).
//! * [`Profiler`] — a virtual-clock sampling profiler producing
//!   folded-stack output for flamegraph tooling (see [`profiler`]).
//! * [`chrome`] — serializes recorded events to Chrome `trace_event`
//!   JSON; the output opens directly in `chrome://tracing` or Perfetto.
//! * [`causal`] — cross-process span propagation ([`SpanContext`],
//!   flow begin/end events) and the offline [`CausalGraph`] analyzer
//!   that reconstructs per-request causality DAGs, walks virtual-time
//!   critical paths, and attributes request latency per category.
//! * [`prometheus`] — text-exposition rendering of the registry's
//!   counters and histograms.
//! * [`json`] — a minimal JSON reader/writer used by exporters and
//!   tests, so the workspace needs no external serializer.
//!
//! All timestamps are **virtual nanoseconds** from the engine clock, not
//! wall time: a trace of a simulated run is deterministic and diffable.

use std::borrow::Cow;
use std::rc::Rc;

pub mod causal;
pub mod chrome;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profiler;
pub mod prometheus;
pub mod ring;
pub mod sink;

pub use causal::{Causal, CausalGraph, CausalReport, SpanContext, TraceQuery};
pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, MetricsRegistry, Snapshot};
pub use profiler::Profiler;
pub use ring::RingBuffer;
pub use sink::{NullSink, RingSink, TraceSink};

/// Well-known category names, one per instrumented subsystem. The
/// integration tests key off these, so emitters should prefer them over
/// ad-hoc strings.
pub mod cat {
    /// jsengine event dispatch, watchdog, storage.
    pub const ENGINE: &str = "engine";
    /// doppio-core thread slices and suspend-timer activity.
    pub const CORE: &str = "core";
    /// doppio-fs operations.
    pub const FS: &str = "fs";
    /// doppio-sockets frames and handshakes.
    pub const NET: &str = "net";
    /// JVM sampled method entries.
    pub const JVM: &str = "jvm";
    /// doppio-faults injections and the retry/backoff decisions they
    /// trigger.
    pub const FAULT: &str = "fault";
    /// Interpreter fast-path events: constant-pool quickening, inline
    /// call-cache misses, class-definition cache invalidation points.
    pub const PERF: &str = "perf";
    /// Schedule exploration: per-tick pick instants, deadlock-cycle
    /// dumps, and lock-order-inversion warnings.
    pub const SCHED: &str = "sched";
    /// Kernel process lifecycle: spawns, exits, signals, and pipe
    /// transfers, each tagged with the pid it concerns.
    pub const PROC: &str = "proc";
    /// Causal layer: request ingress/egress markers, attributed spans,
    /// and cross-domain flow edges. See [`crate::causal`].
    pub const CAUSAL: &str = "causal";
}

/// Trace event phase, mirroring the Chrome `trace_event` `ph` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// A span with a start and a duration (`ph: "X"`).
    Complete,
    /// A zero-duration marker (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`).
    Counter,
    /// Stream metadata such as thread names (`ph: "M"`).
    Metadata,
    /// A flow-edge begin (`ph: "s"`): work left this point for another
    /// lane/process; paired with a [`Phase::FlowEnd`] by `id`.
    FlowStart,
    /// A flow-edge end (`ph: "f"`): the work that started at the
    /// matching [`Phase::FlowStart`] landed here.
    FlowEnd,
}

/// A typed argument value attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Signed integer argument.
    I64(i64),
    /// Floating-point argument.
    F64(f64),
    /// Boolean argument.
    Bool(bool),
    /// String argument.
    Str(Cow<'static, str>),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> ArgValue {
        ArgValue::Bool(v)
    }
}
impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> ArgValue {
        ArgValue::Str(Cow::Borrowed(v))
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(Cow::Owned(v))
    }
}

/// One recorded event. Timestamps and durations are virtual nanoseconds.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event name (span or marker label).
    pub name: Cow<'static, str>,
    /// Subsystem category; see [`cat`].
    pub cat: &'static str,
    /// Chrome `ph` phase.
    pub phase: Phase,
    /// Start timestamp on the virtual clock, in nanoseconds.
    pub ts_ns: u64,
    /// Duration in virtual nanoseconds (complete spans only).
    pub dur_ns: u64,
    /// Lane the event renders in; see [`Tracer`] docs for conventions.
    pub tid: u32,
    /// Flow-pair correlation id (flow phases only; 0 otherwise).
    pub id: u64,
    /// Typed key/value annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Handle through which subsystems record events.
///
/// `Tracer` is `Clone` (it is an `Rc` under the hood) and is stored by
/// value inside `Engine`, `FileSystem`, the runtime, etc. The
/// `enabled` flag is cached at construction: emitters guard argument
/// construction with [`Tracer::enabled`] so a disabled tracer costs one
/// predictable branch per site and never allocates.
///
/// Lane (`tid`) conventions used by the workspace emitters: lane 0 is
/// the browser event loop (engine, fs, net, jvm events all happen
/// there); lane `1 + thread_id` is a doppio-core green thread, so each
/// thread's slices render as their own track in Perfetto.
#[derive(Clone)]
pub struct Tracer {
    enabled: bool,
    sink: Rc<dyn TraceSink>,
}

impl Tracer {
    /// A tracer that records nothing and reports `enabled() == false`.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            sink: Rc::new(NullSink),
        }
    }

    /// A tracer backed by `sink`. The sink's [`TraceSink::enabled`]
    /// answer is cached here, once, for the life of the handle.
    pub fn new(sink: Rc<dyn TraceSink>) -> Tracer {
        Tracer {
            enabled: sink.enabled(),
            sink,
        }
    }

    /// Whether events will actually be recorded. Emitters must check
    /// this before building names or args for a span.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record a fully-formed event. Prefer the shaped helpers
    /// ([`Tracer::complete`], [`Tracer::instant`], …); this exists for
    /// emitters — like the [`causal`] layer — that build events with
    /// flow phases or correlation ids the helpers do not cover.
    #[inline]
    pub fn record(&self, ev: TraceEvent) {
        if self.enabled {
            self.sink.record(ev);
        }
    }

    /// Record a complete span (`ph: "X"`) covering
    /// `[ts_ns, ts_ns + dur_ns]` on lane `tid`.
    #[inline]
    pub fn complete(
        &self,
        category: &'static str,
        name: impl Into<Cow<'static, str>>,
        ts_ns: u64,
        dur_ns: u64,
        tid: u32,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.enabled {
            self.sink.record(TraceEvent {
                name: name.into(),
                cat: category,
                phase: Phase::Complete,
                ts_ns,
                dur_ns,
                tid,
                id: 0,
                args,
            });
        }
    }

    /// Record an instant marker (`ph: "i"`) at `ts_ns` on lane `tid`.
    #[inline]
    pub fn instant(
        &self,
        category: &'static str,
        name: impl Into<Cow<'static, str>>,
        ts_ns: u64,
        tid: u32,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.enabled {
            self.sink.record(TraceEvent {
                name: name.into(),
                cat: category,
                phase: Phase::Instant,
                ts_ns,
                dur_ns: 0,
                tid,
                id: 0,
                args,
            });
        }
    }

    /// Record a counter sample (`ph: "C"`); Perfetto plots these as a
    /// stepped line chart named `name`.
    #[inline]
    pub fn counter(
        &self,
        category: &'static str,
        name: impl Into<Cow<'static, str>>,
        ts_ns: u64,
        value: u64,
    ) {
        if self.enabled {
            self.sink.record(TraceEvent {
                name: name.into(),
                cat: category,
                phase: Phase::Counter,
                ts_ns,
                dur_ns: 0,
                tid: 0,
                id: 0,
                args: vec![("value", ArgValue::U64(value))],
            });
        }
    }

    /// Name lane `tid` in the exported trace (`ph: "M"`,
    /// `thread_name` metadata).
    pub fn name_lane(&self, tid: u32, name: impl Into<Cow<'static, str>>) {
        if self.enabled {
            self.sink.record(TraceEvent {
                name: Cow::Borrowed("thread_name"),
                cat: "__metadata",
                phase: Phase::Metadata,
                ts_ns: 0,
                dur_ns: 0,
                tid,
                id: 0,
                args: vec![("name", ArgValue::Str(name.into()))],
            });
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let sink = Rc::new(RingSink::with_capacity(8));
        // A disabled tracer built explicitly discards everything.
        let t = Tracer::disabled();
        t.complete(cat::ENGINE, "ev", 0, 10, 0, vec![]);
        t.instant(cat::ENGINE, "mark", 5, 0, vec![]);
        assert!(!t.enabled());
        assert_eq!(sink.events().len(), 0);
    }

    #[test]
    fn enabled_tracer_records_in_order() {
        let sink = Rc::new(RingSink::with_capacity(8));
        let t = Tracer::new(sink.clone());
        assert!(t.enabled());
        t.complete(cat::ENGINE, "a", 0, 10, 0, vec![("n", 3u64.into())]);
        t.instant(cat::FS, "b", 4, 0, vec![]);
        t.counter(cat::CORE, "live", 6, 2);
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].name, "a");
        assert_eq!(evs[0].phase, Phase::Complete);
        assert_eq!(evs[1].cat, cat::FS);
        assert_eq!(evs[2].phase, Phase::Counter);
        assert_eq!(evs[2].args, vec![("value", ArgValue::U64(2))]);
    }

    #[test]
    fn span_nesting_is_preserved_for_chrome() {
        // Chrome's renderer reconstructs nesting from containment of
        // [ts, ts+dur] on the same tid. Verify a parent/child pair
        // recorded by an emitter keeps containment.
        let sink = Rc::new(RingSink::with_capacity(8));
        let t = Tracer::new(sink.clone());
        // Parent span recorded *after* child, as real emitters do
        // (the parent's duration is only known once it ends).
        t.complete(cat::FS, "read", 120, 30, 0, vec![]);
        t.complete(cat::ENGINE, "event", 100, 100, 0, vec![]);
        let evs = sink.events();
        let child = &evs[0];
        let parent = &evs[1];
        assert!(parent.ts_ns <= child.ts_ns);
        assert!(child.ts_ns + child.dur_ns <= parent.ts_ns + parent.dur_ns);
    }
}
