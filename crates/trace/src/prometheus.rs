//! Prometheus text exposition (version 0.0.4) for the metrics registry.
//!
//! Counters render as `counter` families and histograms as cumulative
//! `histogram` families, exactly as a scrape endpoint would serve them —
//! so a simulated run's metrics can be loaded into real dashboards.
//! Names are prefixed `doppio_` and dots become underscores
//! (`engine.events_run` → `doppio_engine_events_run`). Output order is
//! the registry's sorted name order, so equal runs render byte-identical
//! documents (the golden-file test relies on this).

use std::fmt::Write as _;

use crate::{HistogramSnapshot, MetricsRegistry};

/// Mangle a registry name into a Prometheus metric name.
fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("doppio_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render every counter and every non-empty histogram.
pub fn render(reg: &MetricsRegistry) -> String {
    render_parts(&reg.with_prefix(""), &reg.histograms_with_prefix(""))
}

/// Render already-extracted counter and histogram data — the same text
/// a live registry would serve. This is the merge path for sharded
/// runs: `doppio-scale` folds per-tenant snapshots into one counter
/// set plus one snapshot set and renders them here, so a merged
/// exposition is byte-identical to what a single registry holding the
/// pooled data would produce. Callers must pass names in sorted order
/// (registry accessors already do); empty histograms are skipped.
pub fn render_parts(counters: &[(String, u64)], hists: &[(String, HistogramSnapshot)]) -> String {
    let mut out = String::new();
    for (name, value) in counters {
        let m = mangle(name);
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m} {value}");
    }
    for (name, snap) in hists {
        if snap.is_empty() {
            continue;
        }
        let m = mangle(name);
        let _ = writeln!(out, "# TYPE {m} histogram");
        for (upper, cum) in snap.cumulative_buckets() {
            let _ = writeln!(out, "{m}_bucket{{le=\"{upper}\"}} {cum}");
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(out, "{m}_sum {}", snap.sum);
        let _ = writeln!(out, "{m}_count {}", snap.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_histograms() {
        let reg = MetricsRegistry::new();
        reg.counter("engine.events_run").add(3);
        reg.set_histograms_enabled(true);
        let h = reg.histogram("fs.op_ns");
        h.record(10);
        h.record(10);
        h.record(500);
        let text = reg.prometheus();
        assert!(text.contains("# TYPE doppio_engine_events_run counter"));
        assert!(text.contains("doppio_engine_events_run 3"));
        assert!(text.contains("# TYPE doppio_fs_op_ns histogram"));
        assert!(text.contains("doppio_fs_op_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("doppio_fs_op_ns_sum 520"));
        assert!(text.contains("doppio_fs_op_ns_count 3"));
        // Cumulative: the bucket holding 10 counts both 10s.
        assert!(text.contains("doppio_fs_op_ns_bucket{le=\"10\"} 2"));
    }

    #[test]
    fn empty_histograms_are_omitted() {
        let reg = MetricsRegistry::new();
        reg.histogram("net.delivery_ns");
        assert!(!reg.prometheus().contains("net_delivery_ns"));
    }
}
