//! Virtual-clock sampling profiler.
//!
//! §6 of the paper attributes interpreter cost to runtime services; to
//! reproduce that attribution we need stacks, not counters. A wall-clock
//! profiler would be nondeterministic and would measure the *host*, so
//! this one samples on the **virtual clock**: every `interval_ns` of
//! simulated time, the next suspend/slice boundary that notices the
//! deadline walks its explicit frame stack (the JVM's per-thread
//! `Vec<Frame>`, rooted at the engine's current event kind) into a
//! folded-stack table.
//!
//! Because sample points are a pure function of virtual time and the
//! stacks are reconstructed from deterministic interpreter state, the
//! folded output is **byte-identical across runs** with the same seed
//! and workload — a profile you can diff in CI.
//!
//! Output is the `folded` format consumed by standard flamegraph
//! tooling (`flamegraph.pl`, inferno, speedscope): one line per unique
//! stack, frames joined by `;`, followed by a space and the sample
//! count. A sample that covers several elapsed intervals (boundaries
//! can be sparse) is weighted by how many deadlines it satisfies, so
//! time share stays proportional.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

#[derive(Debug)]
struct ProfInner {
    interval_ns: u64,
    next_due_ns: Cell<u64>,
    samples: Cell<u64>,
    folded: RefCell<BTreeMap<String, u64>>,
}

/// A cheaply-cloneable handle to one sampling profile.
#[derive(Clone, Debug)]
pub struct Profiler {
    inner: Rc<ProfInner>,
}

/// Default sampling interval: one sample per simulated millisecond.
pub const DEFAULT_INTERVAL_NS: u64 = 1_000_000;

impl Profiler {
    /// A profiler that wants one sample every `interval_ns` of virtual
    /// time. `interval_ns` must be non-zero.
    pub fn new(interval_ns: u64) -> Profiler {
        assert!(interval_ns > 0, "profiler interval must be non-zero");
        Profiler {
            inner: Rc::new(ProfInner {
                interval_ns,
                next_due_ns: Cell::new(interval_ns),
                samples: Cell::new(0),
                folded: RefCell::new(BTreeMap::new()),
            }),
        }
    }

    /// The configured sampling interval.
    pub fn interval_ns(&self) -> u64 {
        self.inner.interval_ns
    }

    /// Whether a sample deadline has passed. This is the hot-path
    /// check: one load and one compare.
    #[inline]
    pub fn due(&self, now_ns: u64) -> bool {
        now_ns >= self.inner.next_due_ns.get()
    }

    /// Record one stack observation at virtual time `now_ns`, weighted
    /// by the number of sample deadlines it satisfies, and advance the
    /// next deadline past `now_ns`. Frames are ordered root-first.
    pub fn sample<I, S>(&self, now_ns: u64, frames: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let inner = &*self.inner;
        let due = inner.next_due_ns.get();
        if now_ns < due {
            return;
        }
        // Boundaries can be sparse: one observation may cover several
        // elapsed intervals. Weight it so time share stays honest.
        let weight = (now_ns - due) / inner.interval_ns + 1;
        inner.next_due_ns.set(due + weight * inner.interval_ns);
        inner.samples.set(inner.samples.get() + weight);

        let mut key = String::new();
        for f in frames {
            if !key.is_empty() {
                key.push(';');
            }
            key.push_str(f.as_ref());
        }
        if key.is_empty() {
            key.push_str("<unknown>");
        }
        *inner.folded.borrow_mut().entry(key).or_insert(0) += weight;
    }

    /// Total sample weight recorded so far.
    pub fn samples(&self) -> u64 {
        self.inner.samples.get()
    }

    /// The folded-stack document: `frame;frame;frame count\n` lines,
    /// sorted by stack, ready for flamegraph tooling. Deterministic.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (stack, n) in self.inner.folded.borrow().iter() {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&n.to_string());
            out.push('\n');
        }
        out
    }

    /// Top `n` frames by *self* weight (samples where the frame is the
    /// stack leaf). Sorted by weight descending, then name.
    pub fn top_self(&self, n: usize) -> Vec<(String, u64)> {
        let mut per: BTreeMap<&str, u64> = BTreeMap::new();
        let folded = self.inner.folded.borrow();
        for (stack, w) in folded.iter() {
            let leaf = stack.rsplit(';').next().unwrap_or(stack);
            *per.entry(leaf).or_insert(0) += w;
        }
        rank(per, n)
    }

    /// Top `n` frames by *total* weight (samples where the frame
    /// appears anywhere on the stack; counted once per stack).
    pub fn top_total(&self, n: usize) -> Vec<(String, u64)> {
        let mut per: BTreeMap<&str, u64> = BTreeMap::new();
        let folded = self.inner.folded.borrow();
        for (stack, w) in folded.iter() {
            let mut seen: Vec<&str> = Vec::new();
            for frame in stack.split(';') {
                if !seen.contains(&frame) {
                    seen.push(frame);
                    *per.entry(frame).or_insert(0) += w;
                }
            }
        }
        rank(per, n)
    }
}

fn rank(per: BTreeMap<&str, u64>, n: usize) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = per.into_iter().map(|(k, w)| (k.to_string(), w)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.truncate(n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_and_advance() {
        let p = Profiler::new(100);
        assert!(!p.due(99));
        assert!(p.due(100));
        p.sample(100, ["a"]);
        assert!(!p.due(150));
        assert!(p.due(200));
        assert_eq!(p.samples(), 1);
    }

    #[test]
    fn sparse_boundaries_are_weighted() {
        let p = Profiler::new(100);
        // First boundary observed at t=450: covers deadlines 100..400.
        p.sample(450, ["main", "work"]);
        assert_eq!(p.samples(), 4);
        assert_eq!(p.folded(), "main;work 4\n");
        assert!(!p.due(499));
        assert!(p.due(500));
    }

    #[test]
    fn folded_output_is_sorted_and_stable() {
        let p = Profiler::new(10);
        p.sample(10, ["b", "x"]);
        p.sample(20, ["a"]);
        p.sample(30, ["b", "x"]);
        assert_eq!(p.folded(), "a 1\nb;x 2\n");
    }

    #[test]
    fn top_self_and_total_rank_frames() {
        let p = Profiler::new(1);
        p.sample(1, ["root", "a", "leaf"]);
        p.sample(2, ["root", "a", "leaf"]);
        p.sample(3, ["root", "b"]);
        let selfs = p.top_self(10);
        assert_eq!(selfs[0], ("leaf".to_string(), 2));
        let totals = p.top_total(10);
        assert_eq!(totals[0], ("root".to_string(), 3));
        assert_eq!(p.top_total(1).len(), 1);
    }

    #[test]
    fn empty_stack_is_labelled() {
        let p = Profiler::new(1);
        p.sample(1, Vec::<&str>::new());
        assert_eq!(p.folded(), "<unknown> 1\n");
    }
}
