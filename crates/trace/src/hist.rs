//! Log-bucketed latency histograms.
//!
//! Counters answer "how many / how much total"; Figure 5 of the paper
//! needs *distributions* — p95 event latency under segmentation, slice
//! lengths, fs op times. [`Histogram`] records `u64` samples (virtual
//! nanoseconds, scan lengths, …) into logarithmic buckets with 8
//! sub-buckets per octave, bounding relative error at 12.5% while
//! keeping the whole table under 4 KB.
//!
//! Design rules, matching the rest of the trace layer:
//!
//! * **Zero-cost when off.** Recording is guarded by an enabled flag
//!   shared with the owning [`MetricsRegistry`](crate::MetricsRegistry)
//!   (default *off*), so an un-instrumented run pays one predictable
//!   branch per site — the same contract as [`Tracer`](crate::Tracer).
//!   Histograms never advance the virtual clock, so enabling them can
//!   never change simulated results, only host time.
//! * **Deterministic.** Buckets are a pure function of the sample;
//!   percentiles report the bucket upper bound (clamped to the observed
//!   maximum), so equal runs export byte-identical numbers.
//! * **Mergeable.** [`HistogramSnapshot::merge`] is associative and
//!   commutative, so per-shard histograms can be combined exactly.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two.
const SUB_BITS: u32 = 3;
const SUBS: u64 = 1 << SUB_BITS;

/// Total bucket count for the full `u64` range: 8 exact unit buckets
/// below 8, then 8 sub-buckets for each of the 61 octaves above.
pub const NUM_BUCKETS: usize = (SUBS as usize) * 62;

/// Bucket index for a sample. Monotone in `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let top = 63 - v.leading_zeros(); // >= SUB_BITS
        let k = top - SUB_BITS;
        let sub = ((v >> k) - SUBS) as usize;
        (SUBS as usize) * (k as usize + 1) + sub
    }
}

/// Smallest value that lands in bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i < SUBS as usize {
        i as u64
    } else {
        let k = (i / SUBS as usize) - 1;
        let sub = (i % SUBS as usize) as u64;
        (SUBS + sub) << k
    }
}

/// Largest value that lands in bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

#[derive(Debug)]
struct HistInner {
    enabled: Rc<Cell<bool>>,
    count: Cell<u64>,
    sum: Cell<u64>,
    min: Cell<u64>,
    max: Cell<u64>,
    /// Lazily sized to [`NUM_BUCKETS`] on the first record, so a
    /// never-enabled histogram costs a few words, not 4 KB.
    buckets: RefCell<Vec<u64>>,
}

/// A shared handle to one named histogram. Cloning shares the data,
/// like [`Counter`](crate::Counter).
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Rc<HistInner>,
}

impl Histogram {
    pub(crate) fn with_flag(enabled: Rc<Cell<bool>>) -> Histogram {
        Histogram {
            inner: Rc::new(HistInner {
                enabled,
                count: Cell::new(0),
                sum: Cell::new(0),
                min: Cell::new(u64::MAX),
                max: Cell::new(0),
                buckets: RefCell::new(Vec::new()),
            }),
        }
    }

    /// A free-standing, always-enabled histogram (tests and bench
    /// harnesses that compute an independent oracle distribution).
    pub fn standalone() -> Histogram {
        Histogram::with_flag(Rc::new(Cell::new(true)))
    }

    /// Whether [`Histogram::record`] currently stores samples.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Record one sample. A disabled histogram returns after one
    /// branch.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.inner.enabled.get() {
            return;
        }
        let inner = &*self.inner;
        inner.count.set(inner.count.get().saturating_add(1));
        inner.sum.set(inner.sum.get().saturating_add(v));
        if v < inner.min.get() {
            inner.min.set(v);
        }
        if v > inner.max.get() {
            inner.max.set(v);
        }
        let mut buckets = inner.buckets.borrow_mut();
        if buckets.is_empty() {
            buckets.resize(NUM_BUCKETS, 0);
        }
        let i = bucket_index(v);
        buckets[i] = buckets[i].saturating_add(1);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.get()
    }

    /// Drop all recorded samples (the enabled flag is untouched).
    pub fn reset(&self) {
        let inner = &*self.inner;
        inner.count.set(0);
        inner.sum.set(0);
        inner.min.set(u64::MAX);
        inner.max.set(0);
        inner.buckets.borrow_mut().clear();
    }

    /// An owned copy of the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.inner;
        HistogramSnapshot {
            count: inner.count.get(),
            sum: inner.sum.get(),
            min: if inner.count.get() == 0 {
                0
            } else {
                inner.min.get()
            },
            max: inner.max.get(),
            buckets: inner.buckets.borrow().clone(),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples (saturating at `u64::MAX`).
    pub count: u64,
    /// Sum of all samples (saturating at `u64::MAX`).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts; empty when no sample was recorded.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty distribution.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Build a snapshot from raw samples (the exact-oracle path used in
    /// tests and the fig5 harness).
    pub fn from_values(values: &[u64]) -> HistogramSnapshot {
        let h = Histogram::standalone();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Combine two distributions exactly. Associative and commutative.
    /// All counts saturate at `u64::MAX`, so merging adversarially huge
    /// shard snapshots can neither panic in debug builds nor wrap in
    /// release builds (saturating addition stays associative: the sum
    /// clips at the ceiling and stays there).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut buckets = vec![0u64; NUM_BUCKETS];
        for (i, b) in self.buckets.iter().enumerate().take(NUM_BUCKETS) {
            buckets[i] = buckets[i].saturating_add(*b);
        }
        for (i, b) in other.buckets.iter().enumerate().take(NUM_BUCKETS) {
            buckets[i] = buckets[i].saturating_add(*b);
        }
        HistogramSnapshot {
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets,
        }
    }

    /// The value at percentile `p` (0–100): the upper bound of the
    /// bucket holding the rank-`ceil(p/100·count)` sample, clamped to
    /// the observed maximum. Deterministic, and never below the exact
    /// sorted-order percentile nor more than one bucket width above it.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(b);
            if cum >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// `(bucket_upper, cumulative_count)` for every non-empty bucket,
    /// in ascending order — the shape Prometheus exposition wants.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b > 0 {
                cum = cum.saturating_add(b);
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i));
            if v < 16 {
                // Two full octaves of exact buckets.
                assert_eq!(bucket_lower(i), v);
                assert_eq!(bucket_upper(i), v);
            }
        }
    }

    #[test]
    fn bucket_bounds_cover_and_order() {
        let mut prev_upper = None;
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lower(i);
            let hi = bucket_upper(i);
            assert!(lo <= hi, "bucket {i}");
            if let Some(p) = prev_upper {
                assert_eq!(lo, p + 1, "bucket {i} contiguous");
            }
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            prev_upper = Some(hi);
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let flag = Rc::new(Cell::new(false));
        let h = Histogram::with_flag(flag.clone());
        h.record(42);
        assert_eq!(h.count(), 0);
        assert!(h.snapshot().is_empty());
        flag.set(true);
        h.record(42);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn percentiles_bound_the_exact_oracle() {
        // Fixed-seed property loop: percentile() must sit between the
        // exact order statistic and one bucket width above it.
        let mut state = 0x5EEDu64;
        for round in 0..50 {
            let n = 1 + (round * 37) % 400;
            let mut vals: Vec<u64> = (0..n)
                .map(|_| doppio_prng::split_mix64(&mut state) >> (round % 48))
                .collect();
            let snap = HistogramSnapshot::from_values(&vals);
            vals.sort_unstable();
            for p in [0.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
                let rank = ((p / 100.0) * n as f64).ceil() as usize;
                let exact = vals[rank.clamp(1, n) - 1];
                let got = snap.percentile(p);
                assert!(got >= exact, "p{p}: got {got} < exact {exact}");
                // Relative error bounded by one part in 8 (plus the
                // sub-8 exact range).
                assert!(
                    got as u128 <= exact as u128 + exact as u128 / 8 + 1,
                    "p{p}: got {got} too far above exact {exact}"
                );
            }
            assert_eq!(snap.percentile(100.0), *vals.last().unwrap());
            assert_eq!(snap.min, vals[0]);
        }
    }

    #[test]
    fn merge_is_associative_and_matches_pooled() {
        let mut state = 7u64;
        let mk = |state: &mut u64, n: usize| -> Vec<u64> {
            (0..n)
                .map(|_| doppio_prng::split_mix64(state) % 1_000_000)
                .collect()
        };
        let (va, vb, vc) = (mk(&mut state, 100), mk(&mut state, 57), mk(&mut state, 3));
        let (a, b, c) = (
            HistogramSnapshot::from_values(&va),
            HistogramSnapshot::from_values(&vb),
            HistogramSnapshot::from_values(&vc),
        );
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left, right, "associative");

        let mut pooled = va.clone();
        pooled.extend(&vb);
        pooled.extend(&vc);
        assert_eq!(left, HistogramSnapshot::from_values(&pooled), "exact pool");
        assert_eq!(a.merge(&HistogramSnapshot::empty()), a, "identity");
    }

    /// Scale a snapshot's per-bucket counts by `k` (saturating), as if
    /// `k` identical shards had been pooled — the oracle for the
    /// extreme-count merge property below.
    fn scaled(snap: &HistogramSnapshot, k: u64) -> HistogramSnapshot {
        HistogramSnapshot {
            count: snap.count.saturating_mul(k),
            sum: snap.sum.saturating_mul(k),
            min: snap.min,
            max: snap.max,
            buckets: snap.buckets.iter().map(|b| b.saturating_mul(k)).collect(),
        }
    }

    #[test]
    fn merge_saturates_at_extreme_counts() {
        // Fixed-seed property loop: at counts near u64::MAX, merge must
        // neither panic (debug overflow) nor wrap (release), and must
        // still agree with a saturating pooled oracle.
        let mut state = 0xFEED_5CA1Eu64;
        for round in 0..40 {
            let n = 1 + (round * 13) % 60;
            let vals: Vec<u64> = (0..n)
                .map(|_| doppio_prng::split_mix64(&mut state) % 1_000_000)
                .collect();
            let base = HistogramSnapshot::from_values(&vals);
            let ka = u64::MAX / (1 + doppio_prng::split_mix64(&mut state) % 4);
            let kb = u64::MAX / (1 + doppio_prng::split_mix64(&mut state) % 4);
            let (a, b) = (scaled(&base, ka), scaled(&base, kb));
            let merged = a.merge(&b);
            // Saturating pooled oracle over the same buckets.
            let oracle = HistogramSnapshot {
                count: a.count.saturating_add(b.count),
                sum: a.sum.saturating_add(b.sum),
                min: base.min,
                max: base.max,
                buckets: a
                    .buckets
                    .iter()
                    .zip(&b.buckets)
                    .map(|(x, y)| x.saturating_add(*y))
                    .collect(),
            };
            assert_eq!(merged, oracle, "round {round}");
            // Still associative at the ceiling.
            let left = a.merge(&b).merge(&a);
            let right = a.merge(&b.merge(&a));
            assert_eq!(left, right, "associative at saturation, round {round}");
            // Derived views must not overflow either.
            let _ = merged.percentile(99.0);
            let _ = merged.cumulative_buckets();
            let _ = merged.mean();
        }
        // Two full-scale snapshots: everything pins at u64::MAX.
        let full = scaled(&HistogramSnapshot::from_values(&[3, 900]), u64::MAX);
        let m = full.merge(&full);
        assert_eq!(m.count, u64::MAX);
        assert_eq!(m.sum, u64::MAX);
    }

    #[test]
    fn merge_ignores_overlong_foreign_buckets() {
        // A forged snapshot with more than NUM_BUCKETS buckets must not
        // make merge index out of bounds.
        let mut forged = HistogramSnapshot::from_values(&[1, 2, 3]);
        forged.buckets.resize(NUM_BUCKETS + 64, 7);
        let ok = HistogramSnapshot::from_values(&[4]);
        let merged = ok.merge(&forged);
        assert_eq!(merged.buckets.len(), NUM_BUCKETS);
    }

    #[test]
    fn cumulative_buckets_end_at_count() {
        let snap = HistogramSnapshot::from_values(&[1, 1, 2, 900, 7_000_000]);
        let cum = snap.cumulative_buckets();
        assert_eq!(cum.last().unwrap().1, snap.count);
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
    }
}
