//! Property tests on the storage quota accounting.

use proptest::prelude::*;

use doppio_jsengine::storage::{utf16_bytes, SyncMechanism};
use doppio_jsengine::{Browser, Engine};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn quota_accounting_is_exact_under_arbitrary_ops(
        ops in proptest::collection::vec(
            (0u8..3, "[a-e]", proptest::collection::vec(any::<char>(), 0..64)),
            1..60,
        )
    ) {
        let engine = Engine::new(Browser::Chrome);
        let mut model: std::collections::BTreeMap<String, String> = Default::default();
        engine.with_storage(|s, _| {
            let store = s.sync_store(SyncMechanism::LocalStorage);
            for (kind, key, value_chars) in ops {
                let value: String = value_chars.into_iter().collect();
                match kind {
                    0 => {
                        if store.set_item("Chrome", &key, &value).is_ok() {
                            model.insert(key.clone(), value);
                        }
                    }
                    1 => {
                        store.remove_item("Chrome", &key).unwrap();
                        model.remove(&key);
                    }
                    _ => {
                        let got = store.get_item("Chrome", &key).unwrap();
                        prop_assert_eq!(got.as_ref(), model.get(&key));
                    }
                }
                // Invariant: used_bytes equals the model's footprint
                // and never exceeds the quota.
                let expect: usize = model
                    .iter()
                    .map(|(k, v)| utf16_bytes(k) + utf16_bytes(v))
                    .sum();
                prop_assert_eq!(store.used_bytes(), expect);
                prop_assert!(store.used_bytes() <= store.quota_bytes());
            }
            Ok(())
        })?;
    }
}
