//! Randomized tests on the storage quota accounting (fixed-seed
//! SplitMix64 loops; the build is offline, so no proptest).

use doppio_jsengine::storage::{utf16_bytes, SyncMechanism};
use doppio_jsengine::{Browser, Engine};
use doppio_prng::SplitMix64;

/// A uniformly random Unicode scalar value (any plane, surrogates
/// excluded), so values exercise both UTF-16 code-unit widths.
fn random_char(rng: &mut SplitMix64) -> char {
    loop {
        if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
            return c;
        }
    }
}

#[test]
fn quota_accounting_is_exact_under_arbitrary_ops() {
    let mut rng = SplitMix64::new(0x5709);
    for case in 0..64 {
        let engine = Engine::new(Browser::Chrome);
        let mut model: std::collections::BTreeMap<String, String> = Default::default();
        let nops = rng.gen_range(1usize..60);
        let ops: Vec<(u8, String, String)> = (0..nops)
            .map(|_| {
                let kind = rng.gen_range(0u8..3);
                let key = (b'a' + rng.gen_range(0u8..5)) as char;
                let vlen = rng.gen_range(0usize..64);
                let value: String = (0..vlen).map(|_| random_char(&mut rng)).collect();
                (kind, key.to_string(), value)
            })
            .collect();
        engine.with_storage(|s, _| {
            let store = s.sync_store(SyncMechanism::LocalStorage);
            for (kind, key, value) in ops {
                match kind {
                    0 => {
                        if store.set_item("Chrome", &key, &value).is_ok() {
                            model.insert(key.clone(), value);
                        }
                    }
                    1 => {
                        store.remove_item("Chrome", &key).unwrap();
                        model.remove(&key);
                    }
                    _ => {
                        let got = store.get_item("Chrome", &key).unwrap();
                        assert_eq!(got.as_ref(), model.get(&key), "case {case}");
                    }
                }
                // Invariant: used_bytes equals the model's footprint
                // and never exceeds the quota.
                let expect: usize = model
                    .iter()
                    .map(|(k, v)| utf16_bytes(k) + utf16_bytes(v))
                    .sum();
                assert_eq!(store.used_bytes(), expect, "case {case}");
                assert!(store.used_bytes() <= store.quota_bytes(), "case {case}");
            }
        });
    }
}
