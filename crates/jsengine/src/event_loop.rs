//! The macrotask event queue.
//!
//! JavaScript in the browser is "single-threaded and completely event
//! driven" (§3.1): execution is a sequence of finite-duration events
//! popped from a queue in deadline order (FIFO among events with the
//! same deadline). This module holds the queue data structure; the
//! dispatch loop lives on [`Engine`](crate::Engine).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use doppio_trace::SpanContext;

use crate::engine::{Callback, TimerId};

/// What scheduled an event — used for tracing and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A `setTimeout` timer firing.
    Timer,
    /// A `sendMessage`/`postMessage` message event.
    Message,
    /// A `setImmediate` callback.
    Immediate,
    /// Completion of a simulated asynchronous browser API (XHR,
    /// IndexedDB, network, ...).
    AsyncCompletion,
    /// Synthetic user input (keyboard/mouse) injected by a test or
    /// benchmark to measure responsiveness.
    UserInput,
}

impl EventKind {
    /// Every kind, in [`EventKind::index`] order.
    pub const ALL: [EventKind; 5] = [
        EventKind::Timer,
        EventKind::Message,
        EventKind::Immediate,
        EventKind::AsyncCompletion,
        EventKind::UserInput,
    ];

    /// Stable snake_case name, used in trace-span args and as the
    /// counter-name suffix (`engine.events.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Timer => "timer",
            EventKind::Message => "message",
            EventKind::Immediate => "immediate",
            EventKind::AsyncCompletion => "async_completion",
            EventKind::UserInput => "user_input",
        }
    }

    /// Index into [`EngineStats::events_by_kind`](crate::EngineStats).
    pub fn index(self) -> usize {
        match self {
            EventKind::Timer => 0,
            EventKind::Message => 1,
            EventKind::Immediate => 2,
            EventKind::AsyncCompletion => 3,
            EventKind::UserInput => 4,
        }
    }
}

pub(crate) struct ScheduledEvent {
    pub due_ns: u64,
    pub seq: u64,
    pub kind: EventKind,
    pub timer: Option<TimerId>,
    /// Causal context captured at scheduling time: the request the
    /// scheduling code was serving, carried silently across the queue
    /// hop so the dispatch inherits it.
    pub ctx: Option<SpanContext>,
    pub cb: Callback,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.due_ns == other.due_ns && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}
impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, among
        // equals, first-scheduled) event is popped first.
        (other.due_ns, other.seq).cmp(&(self.due_ns, self.seq))
    }
}

/// The queue of pending events, ordered by deadline then FIFO.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
}

impl EventQueue {
    pub fn push(&mut self, ev: ScheduledEvent) {
        self.heap.push(ev);
    }

    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Deadline of the next event, if any.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn next_due_ns(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.due_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(due: u64, seq: u64) -> ScheduledEvent {
        ScheduledEvent {
            due_ns: due,
            seq,
            kind: EventKind::Timer,
            timer: None,
            ctx: None,
            cb: Box::new(|_| {}),
        }
    }

    #[test]
    fn pops_in_deadline_order() {
        let mut q = EventQueue::default();
        q.push(ev(30, 0));
        q.push(ev(10, 1));
        q.push(ev(20, 2));
        assert_eq!(q.pop().unwrap().due_ns, 10);
        assert_eq!(q.pop().unwrap().due_ns, 20);
        assert_eq!(q.pop().unwrap().due_ns, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_among_equal_deadlines() {
        let mut q = EventQueue::default();
        q.push(ev(5, 0));
        q.push(ev(5, 1));
        q.push(ev(5, 2));
        assert_eq!(q.pop().unwrap().seq, 0);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
    }

    #[test]
    fn next_due_peeks_without_removing() {
        let mut q = EventQueue::default();
        assert_eq!(q.next_due_ns(), None);
        q.push(ev(42, 0));
        assert_eq!(q.next_due_ns(), Some(42));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
