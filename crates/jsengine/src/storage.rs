//! The browser's persistent storage mechanisms (Table 2 of the paper).
//!
//! Browsers offer "a hodgepodge of persistent storage mechanisms with
//! different storage formats, restrictions, compatibility across
//! browsers, and intended use cases" (§5.1). This module simulates the
//! six mechanisms the paper tabulates:
//!
//! | mechanism      | format            | sync | quota          |
//! |----------------|-------------------|------|----------------|
//! | Cookies        | string key/value  | yes  | 4 KB           |
//! | localStorage   | string key/value  | yes  | 5 MB           |
//! | IndexedDB      | object database   | no   | user-specified |
//! | userBehavior   | string key/value  | yes  | 1 MB (IE only) |
//! | Web SQL        | SQL database      | no   | user-specified |
//! | FileSystem API | binary blobs      | no   | user-specified |
//!
//! String stores measure their quota in UTF-16 code units × 2 bytes,
//! as real browsers do — which is why Doppio's Buffer "binary string"
//! format (2 packed bytes per code unit) doubles the effective capacity
//! on browsers that don't validate strings.

use std::collections::BTreeMap;

use crate::engine::Engine;
use crate::error::{EngineError, EngineResult};
use crate::jsstring::JsString;
use crate::profile::BrowserProfile;

/// The synchronous string key/value mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncMechanism {
    /// HTTP cookies: tiny (4 KB) but universally available.
    Cookies,
    /// DOM `localStorage`: 5 MB of string key/value pairs.
    LocalStorage,
    /// IE's defunct `userBehavior` storage: 1 MB.
    UserBehavior,
}

/// The asynchronous mechanisms (only reachable through callbacks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsyncMechanism {
    /// IndexedDB object database.
    IndexedDb,
    /// The defunct Web SQL database.
    WebSql,
    /// The defunct (Chrome-only) FileSystem API.
    FileSystemApi,
}

impl SyncMechanism {
    /// The mechanism's name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            SyncMechanism::Cookies => "Cookies",
            SyncMechanism::LocalStorage => "localStorage",
            SyncMechanism::UserBehavior => "userBehavior",
        }
    }
}

impl AsyncMechanism {
    /// The mechanism's name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            AsyncMechanism::IndexedDb => "IndexedDB",
            AsyncMechanism::WebSql => "Web SQL",
            AsyncMechanism::FileSystemApi => "FileSystem",
        }
    }
}

/// UTF-16 storage footprint of a string, in bytes.
pub fn utf16_bytes(s: &str) -> usize {
    s.encode_utf16().count() * 2
}

/// A quota-limited string key/value store (cookies, localStorage,
/// userBehavior).
#[derive(Debug, Clone)]
pub struct KvStore {
    name: &'static str,
    available: bool,
    quota_bytes: usize,
    used_bytes: usize,
    map: BTreeMap<String, JsString>,
}

impl KvStore {
    fn new(name: &'static str, available: bool, quota_bytes: usize) -> KvStore {
        KvStore {
            name,
            available,
            quota_bytes,
            used_bytes: 0,
            map: BTreeMap::new(),
        }
    }

    /// Whether the active browser provides this mechanism.
    pub fn is_available(&self) -> bool {
        self.available
    }

    /// The quota, in bytes.
    pub fn quota_bytes(&self) -> usize {
        self.quota_bytes
    }

    /// Bytes currently used (UTF-16 accounting).
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    fn check_available(&self, browser: &'static str) -> EngineResult<()> {
        if self.available {
            Ok(())
        } else {
            Err(EngineError::UnsupportedApi {
                api: self.name,
                browser,
            })
        }
    }

    /// Store a JavaScript string under `key`, enforcing the quota.
    ///
    /// This is the primitive Doppio's Buffer module targets with its
    /// 2-bytes-per-code-unit "binary string" format; `value` need not
    /// be valid UTF-16.
    pub fn set_item_js(
        &mut self,
        browser: &'static str,
        key: &str,
        value: JsString,
    ) -> EngineResult<()> {
        self.check_available(browser)?;
        let new_entry = utf16_bytes(key) + value.storage_bytes();
        let replaced = self
            .map
            .get(key)
            .map(|old| utf16_bytes(key) + old.storage_bytes())
            .unwrap_or(0);
        let projected = self.used_bytes - replaced + new_entry;
        if projected > self.quota_bytes {
            return Err(EngineError::QuotaExceeded {
                mechanism: self.name,
                requested: projected,
                quota: self.quota_bytes,
            });
        }
        self.map.insert(key.to_string(), value);
        self.used_bytes = projected;
        Ok(())
    }

    /// Store `value` under `key`, enforcing the quota.
    pub fn set_item(&mut self, browser: &'static str, key: &str, value: &str) -> EngineResult<()> {
        self.set_item_js(browser, key, JsString::from(value))
    }

    /// Read the JavaScript string stored under `key`.
    pub fn get_item_js(&self, browser: &'static str, key: &str) -> EngineResult<Option<JsString>> {
        self.check_available(browser)?;
        Ok(self.map.get(key).cloned())
    }

    /// Read the value stored under `key`, lossily decoded to UTF-8.
    pub fn get_item(&self, browser: &'static str, key: &str) -> EngineResult<Option<String>> {
        Ok(self
            .get_item_js(browser, key)?
            .map(|js| js.to_string_lossy()))
    }

    /// Remove `key`. Removing a missing key is a no-op, as in the DOM.
    pub fn remove_item(&mut self, browser: &'static str, key: &str) -> EngineResult<()> {
        self.check_available(browser)?;
        if let Some(old) = self.map.remove(key) {
            self.used_bytes -= utf16_bytes(key) + old.storage_bytes();
        }
        Ok(())
    }

    /// All keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.map.keys().cloned().collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.used_bytes = 0;
    }
}

/// A binary object store backing the asynchronous mechanisms.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    name: &'static str,
    available: bool,
    quota_bytes: usize,
    used_bytes: usize,
    map: BTreeMap<String, Vec<u8>>,
}

impl ObjectStore {
    fn new(name: &'static str, available: bool) -> ObjectStore {
        ObjectStore {
            name,
            available,
            quota_bytes: usize::MAX, // "user-specified" per Table 2
            used_bytes: 0,
            map: BTreeMap::new(),
        }
    }

    /// Whether the active browser provides this mechanism.
    pub fn is_available(&self) -> bool {
        self.available
    }

    /// Restrict the quota (Table 2: "user-specified").
    pub fn set_quota_bytes(&mut self, quota: usize) {
        self.quota_bytes = quota;
    }

    /// Bytes currently used.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    fn put(&mut self, key: &str, value: Vec<u8>) -> EngineResult<()> {
        let replaced = self.map.get(key).map(|v| v.len()).unwrap_or(0);
        let projected = self.used_bytes - replaced + value.len();
        if projected > self.quota_bytes {
            return Err(EngineError::QuotaExceeded {
                mechanism: self.name,
                requested: projected,
                quota: self.quota_bytes,
            });
        }
        self.map.insert(key.to_string(), value);
        self.used_bytes = projected;
        Ok(())
    }

    fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.map.get(key).cloned()
    }

    fn delete(&mut self, key: &str) {
        if let Some(old) = self.map.remove(key) {
            self.used_bytes -= old.len();
        }
    }

    fn keys(&self) -> Vec<String> {
        self.map.keys().cloned().collect()
    }
}

/// All of a browser's storage mechanisms.
#[derive(Debug, Clone)]
pub struct StorageSet {
    /// Cookies (4 KB).
    pub cookies: KvStore,
    /// `localStorage` (5 MB).
    pub local_storage: KvStore,
    /// IE `userBehavior` (1 MB).
    pub user_behavior: KvStore,
    /// IndexedDB.
    pub indexed_db: ObjectStore,
    /// Web SQL.
    pub web_sql: ObjectStore,
    /// FileSystem API.
    pub filesystem_api: ObjectStore,
}

impl StorageSet {
    /// Instantiate the mechanisms a profile provides.
    pub fn for_profile(p: &BrowserProfile) -> StorageSet {
        StorageSet {
            cookies: KvStore::new("Cookies", true, 4 * 1024),
            local_storage: KvStore::new("localStorage", true, 5 * 1024 * 1024),
            user_behavior: KvStore::new("userBehavior", p.has_user_behavior, 1024 * 1024),
            indexed_db: ObjectStore::new("IndexedDB", p.has_indexed_db),
            web_sql: ObjectStore::new("Web SQL", p.has_web_sql),
            filesystem_api: ObjectStore::new("FileSystem", p.has_filesystem_api),
        }
    }

    /// The synchronous store for a mechanism.
    pub fn sync_store(&mut self, m: SyncMechanism) -> &mut KvStore {
        match m {
            SyncMechanism::Cookies => &mut self.cookies,
            SyncMechanism::LocalStorage => &mut self.local_storage,
            SyncMechanism::UserBehavior => &mut self.user_behavior,
        }
    }

    fn async_store(&mut self, m: AsyncMechanism) -> &mut ObjectStore {
        match m {
            AsyncMechanism::IndexedDb => &mut self.indexed_db,
            AsyncMechanism::WebSql => &mut self.web_sql,
            AsyncMechanism::FileSystemApi => &mut self.filesystem_api,
        }
    }
}

/// Latency of one asynchronous storage transaction, in virtual ns.
const ASYNC_STORE_LATENCY_NS: u64 = 180_000;
/// Additional virtual ns per byte moved through an async store.
const ASYNC_STORE_BYTE_NS: u64 = 1;

fn async_available(engine: &Engine, m: AsyncMechanism) -> EngineResult<()> {
    let ok = engine.with_storage(|s, _| s.async_store(m).is_available());
    if ok {
        Ok(())
    } else {
        Err(EngineError::UnsupportedApi {
            api: m.name(),
            browser: engine.profile().browser.name(),
        })
    }
}

/// Asynchronously store `value` under `key` in mechanism `m`. The
/// callback receives the result of the (quota-checked) write.
///
/// Like its browser counterparts, this returns before the write happens;
/// the callback fires as a later event-loop event.
pub fn async_put(
    engine: &Engine,
    m: AsyncMechanism,
    key: String,
    value: Vec<u8>,
    cb: impl FnOnce(&Engine, EngineResult<()>) + 'static,
) -> EngineResult<()> {
    async_available(engine, m)?;
    let delay = ASYNC_STORE_LATENCY_NS + ASYNC_STORE_BYTE_NS * value.len() as u64;
    engine.complete_async_after(delay, move |e| {
        let result = e.with_storage(|s, _| s.async_store(m).put(&key, value));
        cb(e, result);
    });
    Ok(())
}

/// Asynchronously read `key` from mechanism `m`.
pub fn async_get(
    engine: &Engine,
    m: AsyncMechanism,
    key: String,
    cb: impl FnOnce(&Engine, Option<Vec<u8>>) + 'static,
) -> EngineResult<()> {
    async_available(engine, m)?;
    engine.complete_async_after(ASYNC_STORE_LATENCY_NS, move |e| {
        let value = e.with_storage(|s, _| s.async_store(m).get(&key));
        if let Some(v) = &value {
            e.advance_ns(ASYNC_STORE_BYTE_NS * v.len() as u64);
        }
        cb(e, value);
    });
    Ok(())
}

/// Asynchronously delete `key` from mechanism `m`.
pub fn async_delete(
    engine: &Engine,
    m: AsyncMechanism,
    key: String,
    cb: impl FnOnce(&Engine) + 'static,
) -> EngineResult<()> {
    async_available(engine, m)?;
    engine.complete_async_after(ASYNC_STORE_LATENCY_NS, move |e| {
        e.with_storage(|s, _| s.async_store(m).delete(&key));
        cb(e);
    });
    Ok(())
}

/// Asynchronously list the keys of mechanism `m`.
pub fn async_keys(
    engine: &Engine,
    m: AsyncMechanism,
    cb: impl FnOnce(&Engine, Vec<String>) + 'static,
) -> EngineResult<()> {
    async_available(engine, m)?;
    engine.complete_async_after(ASYNC_STORE_LATENCY_NS, move |e| {
        let keys = e.with_storage(|s, _| s.async_store(m).keys());
        cb(e, keys);
    });
    Ok(())
}

/// One row of the paper's Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MechanismInfo {
    /// Mechanism name.
    pub name: &'static str,
    /// Storage format, as the paper words it.
    pub format: &'static str,
    /// Whether a synchronous interface exists on the main thread.
    pub synchronous: bool,
    /// Maximum size ("user-specified" encoded as `None`).
    pub max_size_bytes: Option<usize>,
    /// Approximate share of the desktop browser market supporting it
    /// (the paper's Compatibility column).
    pub compatibility_pct: u8,
    /// Whether the mechanism was already defunct when the paper was
    /// written (the STANDARDIZED/DEFUNCT grouping of Table 2).
    pub defunct: bool,
}

/// The rows of Table 2, in the paper's order.
pub fn table2_rows() -> Vec<MechanismInfo> {
    vec![
        MechanismInfo {
            name: "Cookies",
            format: "String key/value pairs",
            synchronous: true,
            max_size_bytes: Some(4 * 1024),
            compatibility_pct: 99,
            defunct: false,
        },
        MechanismInfo {
            name: "localStorage",
            format: "String key/value pairs",
            synchronous: true,
            max_size_bytes: Some(5 * 1024 * 1024),
            compatibility_pct: 90,
            defunct: false,
        },
        MechanismInfo {
            name: "IndexedDB",
            format: "Object database",
            synchronous: false,
            max_size_bytes: None,
            compatibility_pct: 49,
            defunct: false,
        },
        MechanismInfo {
            name: "userBehavior",
            format: "String key/value pairs",
            synchronous: true,
            max_size_bytes: Some(1024 * 1024),
            compatibility_pct: 39,
            defunct: true,
        },
        MechanismInfo {
            name: "Web SQL",
            format: "SQL database",
            synchronous: false,
            max_size_bytes: None,
            compatibility_pct: 24,
            defunct: true,
        },
        MechanismInfo {
            name: "FileSystem",
            format: "Binary blobs",
            synchronous: false,
            max_size_bytes: None,
            compatibility_pct: 19,
            defunct: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Browser;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn local_storage_round_trip() {
        let e = Engine::new(Browser::Chrome);
        e.with_storage(|s, _| {
            let ls = s.sync_store(SyncMechanism::LocalStorage);
            ls.set_item("Chrome", "k", "v").unwrap();
            assert_eq!(ls.get_item("Chrome", "k").unwrap(), Some("v".into()));
            ls.remove_item("Chrome", "k").unwrap();
            assert_eq!(ls.get_item("Chrome", "k").unwrap(), None);
            assert_eq!(ls.used_bytes(), 0);
        });
    }

    #[test]
    fn local_storage_enforces_5mb_quota() {
        let e = Engine::new(Browser::Chrome);
        let big = "x".repeat(3 * 1024 * 1024); // 6 MB in UTF-16
        e.with_storage(|s, _| {
            let ls = s.sync_store(SyncMechanism::LocalStorage);
            let err = ls.set_item("Chrome", "k", &big).unwrap_err();
            assert!(matches!(err, EngineError::QuotaExceeded { .. }));
        });
    }

    #[test]
    fn overwriting_reclaims_quota() {
        let e = Engine::new(Browser::Chrome);
        let almost = "x".repeat(2 * 1024 * 1024); // 4 MB
        e.with_storage(|s, _| {
            let ls = s.sync_store(SyncMechanism::LocalStorage);
            ls.set_item("Chrome", "k", &almost).unwrap();
            // Overwriting the same key with same-size data must succeed:
            // the old entry's bytes are reclaimed first.
            ls.set_item("Chrome", "k", &almost).unwrap();
            assert_eq!(ls.len(), 1);
        });
    }

    #[test]
    fn cookies_quota_is_tiny() {
        let e = Engine::new(Browser::Chrome);
        e.with_storage(|s, _| {
            let c = s.sync_store(SyncMechanism::Cookies);
            assert_eq!(c.quota_bytes(), 4096);
            assert!(c.set_item("Chrome", "k", &"x".repeat(4096)).is_err());
        });
    }

    #[test]
    fn user_behavior_only_on_ie() {
        let chrome = Engine::new(Browser::Chrome);
        chrome.with_storage(|s, _| {
            let err = s
                .sync_store(SyncMechanism::UserBehavior)
                .set_item("Chrome", "k", "v")
                .unwrap_err();
            assert!(matches!(err, EngineError::UnsupportedApi { .. }));
        });
        let ie = Engine::new(Browser::Ie10);
        ie.with_storage(|s, _| {
            s.sync_store(SyncMechanism::UserBehavior)
                .set_item("IE 10", "k", "v")
                .unwrap();
        });
    }

    #[test]
    fn indexed_db_is_asynchronous() {
        let e = Engine::new(Browser::Chrome);
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        async_put(&e, AsyncMechanism::IndexedDb, "k".into(), vec![1, 2, 3], {
            let g = g.clone();
            move |e2, r| {
                r.unwrap();
                async_get(e2, AsyncMechanism::IndexedDb, "k".into(), move |_, v| {
                    *g.borrow_mut() = v;
                })
                .unwrap();
            }
        })
        .unwrap();
        // Nothing has happened yet: the callbacks are queued events.
        assert!(got.borrow().is_none());
        e.run_until_idle();
        assert_eq!(got.borrow().as_deref(), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn indexed_db_unavailable_on_safari_profile() {
        let e = Engine::new(Browser::Safari);
        let r = async_get(&e, AsyncMechanism::IndexedDb, "k".into(), |_, _| {});
        assert!(matches!(r, Err(EngineError::UnsupportedApi { .. })));
    }

    #[test]
    fn table2_matches_paper_shape() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 6);
        // Cookies are the most compatible; FileSystem the least.
        assert!(rows[0].compatibility_pct > rows.last().unwrap().compatibility_pct);
        // Exactly the three defunct mechanisms.
        assert_eq!(rows.iter().filter(|r| r.defunct).count(), 3);
        // The async mechanisms have user-specified quotas.
        for r in &rows {
            if !r.synchronous {
                assert!(r.max_size_bytes.is_none());
            }
        }
    }

    #[test]
    fn utf16_accounting_counts_surrogate_pairs() {
        assert_eq!(utf16_bytes("a"), 2);
        assert_eq!(utf16_bytes("\u{1F600}"), 4); // emoji = surrogate pair
    }
}
