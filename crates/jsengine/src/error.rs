//! Error types for the simulated browser environment.

use std::fmt;

/// Result alias used throughout the engine.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors raised by the simulated browser environment.
///
/// These model the failure modes JavaScript code observes in a real
/// browser: missing APIs on old browsers, storage quota violations, and
/// misuse of the event loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The requested API does not exist in the active browser profile
    /// (e.g. `setImmediate` anywhere but Internet Explorer 10, or typed
    /// arrays on browsers that predate them).
    UnsupportedApi {
        /// Name of the missing API.
        api: &'static str,
        /// The browser that lacks it.
        browser: &'static str,
    },
    /// A persistent storage mechanism rejected a write because it would
    /// exceed the mechanism's quota (e.g. localStorage's 5 MB limit).
    QuotaExceeded {
        /// The storage mechanism, e.g. `"localStorage"`.
        mechanism: &'static str,
        /// Bytes the write would have brought the store to.
        requested: usize,
        /// The mechanism's quota in bytes.
        quota: usize,
    },
    /// A storage key was not found.
    NoSuchKey(String),
    /// A string failed the engine's UTF-16 validity check. Raised only on
    /// browsers whose profile validates strings (see
    /// [`BrowserProfile::validates_strings`](crate::BrowserProfile)).
    InvalidString,
    /// The watchdog killed an event that ran past the browser's
    /// unresponsiveness limit.
    WatchdogKill {
        /// How long the event had run, in virtual nanoseconds.
        ran_ns: u64,
        /// The watchdog limit, in virtual nanoseconds.
        limit_ns: u64,
    },
    /// An operation was attempted while the event loop was not running
    /// but required an active event context.
    NoActiveEvent,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnsupportedApi { api, browser } => {
                write!(f, "API `{api}` is not supported by {browser}")
            }
            EngineError::QuotaExceeded {
                mechanism,
                requested,
                quota,
            } => write!(
                f,
                "{mechanism} quota exceeded: write would reach {requested} bytes, quota is {quota}"
            ),
            EngineError::NoSuchKey(k) => write!(f, "no such storage key: {k}"),
            EngineError::InvalidString => {
                write!(f, "string failed UTF-16 validity check on this browser")
            }
            EngineError::WatchdogKill { ran_ns, limit_ns } => write!(
                f,
                "watchdog killed event after {} ms (limit {} ms)",
                ran_ns / 1_000_000,
                limit_ns / 1_000_000
            ),
            EngineError::NoActiveEvent => write!(f, "no event is currently executing"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::QuotaExceeded {
            mechanism: "localStorage",
            requested: 6 * 1024 * 1024,
            quota: 5 * 1024 * 1024,
        };
        let s = e.to_string();
        assert!(s.contains("localStorage"));
        assert!(s.contains("quota"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            EngineError::NoSuchKey("a".into()),
            EngineError::NoSuchKey("a".into())
        );
        assert_ne!(
            EngineError::NoSuchKey("a".into()),
            EngineError::NoSuchKey("b".into())
        );
    }
}
