//! Browser profiles: feature matrices and calibrated cost models.
//!
//! The paper evaluates Doppio on Chrome 28, Firefox 22, Safari 6.0.5,
//! Opera 12.16, and Internet Explorer 10 (plus IE8-specific fallbacks).
//! A [`BrowserProfile`] captures the two things that distinguish those
//! browsers for Doppio's purposes:
//!
//! 1. **Features** — which APIs exist and how they (mis)behave:
//!    typed arrays, `setImmediate`, whether `sendMessage` is delivered
//!    synchronously (the IE8 bug in §4.4), whether strings are
//!    validity-checked (which forces the Buffer module's binary-string
//!    format down to 1 byte/char, §5.1), the `setTimeout` clamp, the
//!    watchdog limit, and Safari's typed-array garbage-collection leak
//!    (§7.1).
//! 2. **Costs** — virtual nanoseconds charged per operation category.
//!    These are *calibrated constants*: they are chosen so that the
//!    relative cost of running on each simulated browser matches the
//!    orderings and rough ratios the paper reports (Figures 3, 4 and 6),
//!    because real 2013 browsers cannot be measured here. The mechanism
//!    (what gets charged, when) is faithful; the magnitudes are the
//!    documented substitution.
//!
//! [`Browser::Native`] models the paper's baseline: Oracle's HotSpot JVM
//! *interpreter* running directly on the OS — the same abstract machine
//! with none of the browser overheads.

use std::fmt;

/// Operation categories that code charges to the engine's virtual clock.
///
/// Each category corresponds to a class of JavaScript-level work whose
/// cost differs between a native runtime and a JavaScript engine, and
/// between JavaScript engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Cost {
    /// One interpreter dispatch (fetch/decode of one bytecode).
    Dispatch,
    /// A 32-bit integer ALU operation.
    IntOp,
    /// A 64-bit integer operation. JavaScript has no 64-bit integers, so
    /// browser profiles make this disproportionately expensive (the
    /// paper's §8 "Numeric support": Doppio's software Int64 is
    /// "extremely slow").
    LongOp,
    /// A floating-point operation.
    FloatOp,
    /// Reading an object field. Browser profiles model Doppio's
    /// dictionary-based JVM object layout (§6.7).
    FieldGet,
    /// Writing an object field.
    FieldPut,
    /// Reading an array element.
    ArrayGet,
    /// Writing an array element.
    ArrayPut,
    /// Allocating an object.
    Alloc,
    /// Method invocation overhead (frame construction).
    Call,
    /// Per-character string work.
    StringOp,
    /// One byte of typed-array traffic (Buffer fast path).
    TypedArrayByte,
    /// One byte of plain-JS-array traffic (Buffer slow path).
    JsArrayByte,
    /// A hash-map lookup (method tables, string interning, ...).
    MapOp,
    /// Fixed per-event overhead of dispatching an event-loop event.
    EventDispatch,
    /// Frontend overhead of one file-system call (argument
    /// normalization, fd table, path resolution).
    FsCall,
    /// One branch instruction.
    Branch,
}

impl Cost {
    /// Every category, in index order (`ALL[i] as usize == i`).
    pub const ALL: [Cost; COST_CATEGORIES] = [
        Cost::Dispatch,
        Cost::IntOp,
        Cost::LongOp,
        Cost::FloatOp,
        Cost::FieldGet,
        Cost::FieldPut,
        Cost::ArrayGet,
        Cost::ArrayPut,
        Cost::Alloc,
        Cost::Call,
        Cost::StringOp,
        Cost::TypedArrayByte,
        Cost::JsArrayByte,
        Cost::MapOp,
        Cost::EventDispatch,
        Cost::FsCall,
        Cost::Branch,
    ];

    /// Stable snake_case name, used as the counter-name suffix in the
    /// metrics registry (`engine.ops.<name>` / `engine.ns.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            Cost::Dispatch => "dispatch",
            Cost::IntOp => "int_op",
            Cost::LongOp => "long_op",
            Cost::FloatOp => "float_op",
            Cost::FieldGet => "field_get",
            Cost::FieldPut => "field_put",
            Cost::ArrayGet => "array_get",
            Cost::ArrayPut => "array_put",
            Cost::Alloc => "alloc",
            Cost::Call => "call",
            Cost::StringOp => "string_op",
            Cost::TypedArrayByte => "typed_array_byte",
            Cost::JsArrayByte => "js_array_byte",
            Cost::MapOp => "map_op",
            Cost::EventDispatch => "event_dispatch",
            Cost::FsCall => "fs_call",
            Cost::Branch => "branch",
        }
    }
}

/// Number of cost categories (length of the cost table).
pub const COST_CATEGORIES: usize = 17;

/// The browsers the paper evaluates, plus the native baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Browser {
    /// Google Chrome 28 — Doppio's development platform; fastest.
    Chrome,
    /// Mozilla Firefox 22.
    Firefox,
    /// Apple Safari 6.0.5 — has the typed-array GC leak of §7.1.
    Safari,
    /// Opera 12.16 — slowest JavaScript engine in the paper's suite.
    Opera,
    /// Internet Explorer 10 — the only browser with `setImmediate`.
    Ie10,
    /// Internet Explorer 8 — `sendMessage` is synchronous (§4.4), no
    /// typed arrays, so Doppio falls back to `setTimeout`.
    Ie8,
    /// Not a browser: the native baseline (the HotSpot interpreter /
    /// Node JS on the OS file system). No watchdog, no timer clamp,
    /// native costs.
    Native,
}

impl Browser {
    /// All simulated browsers (excluding [`Browser::Native`]), in the
    /// order the paper's figures list them.
    pub const ALL: [Browser; 6] = [
        Browser::Chrome,
        Browser::Firefox,
        Browser::Safari,
        Browser::Opera,
        Browser::Ie10,
        Browser::Ie8,
    ];

    /// The five browsers of the paper's evaluation (Figure 3).
    pub const EVALUATED: [Browser; 5] = [
        Browser::Chrome,
        Browser::Firefox,
        Browser::Safari,
        Browser::Opera,
        Browser::Ie10,
    ];

    /// Human-readable name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            Browser::Chrome => "Chrome",
            Browser::Firefox => "Firefox",
            Browser::Safari => "Safari",
            Browser::Opera => "Opera",
            Browser::Ie10 => "IE 10",
            Browser::Ie8 => "IE 8",
            Browser::Native => "Native",
        }
    }
}

impl fmt::Display for Browser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The asynchronous scheduling mechanisms of §4.4, in order of
/// preference for implementing suspend-and-resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResumeMechanism {
    /// `setImmediate`: places an event at the back of the queue with no
    /// delay. Ideal; IE10 only in the paper's era.
    SetImmediate,
    /// `sendMessage`/`postMessage`: a message event lands on the queue
    /// immediately (no 4 ms clamp). The common case.
    SendMessage,
    /// `setTimeout(0)`: clamped to a ≥ 4 ms delay by the HTML5 spec.
    /// The fallback of last resort (IE8).
    SetTimeout,
}

impl fmt::Display for ResumeMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResumeMechanism::SetImmediate => "setImmediate",
            ResumeMechanism::SendMessage => "sendMessage",
            ResumeMechanism::SetTimeout => "setTimeout",
        })
    }
}

/// A complete description of one simulated browser: its feature set and
/// its calibrated cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowserProfile {
    /// Which browser this profile describes.
    pub browser: Browser,
    /// Whether typed arrays (`ArrayBuffer` + views) exist.
    pub has_typed_arrays: bool,
    /// Whether `setImmediate` exists (IE10 only).
    pub has_set_immediate: bool,
    /// Whether `sendMessage` is delivered *synchronously*, immediately
    /// invoking the handler instead of queueing an event (the IE8 bug).
    pub synchronous_send_message: bool,
    /// Whether the engine validity-checks UTF-16 strings. When true, the
    /// Buffer binary-string format can only pack 1 byte per character.
    pub validates_strings: bool,
    /// Whether the `userBehavior` storage mechanism exists (IE only).
    pub has_user_behavior: bool,
    /// Whether Web SQL exists.
    pub has_web_sql: bool,
    /// Whether the (defunct) FileSystem API exists (Chrome only).
    pub has_filesystem_api: bool,
    /// Whether IndexedDB exists.
    pub has_indexed_db: bool,
    /// Whether WebSockets exist natively (older browsers proxy through
    /// the Websockify Flash shim instead, §5.3).
    pub has_websockets: bool,
    /// Whether the engine leaks typed arrays (never garbage-collects
    /// them) — the Safari bug of §7.1.
    pub leaks_typed_arrays: bool,
    /// Minimum `setTimeout` delay in milliseconds (the HTML5 clamp).
    pub min_timeout_ms: f64,
    /// Virtual latency of a `sendMessage` round through the event queue.
    pub message_latency_ns: u64,
    /// Virtual latency of a `setImmediate` resumption.
    pub immediate_latency_ns: u64,
    /// Watchdog limit: an event running longer than this is killed
    /// (`None` disables the watchdog — the native baseline).
    pub watchdog_limit_ns: Option<u64>,
    /// Resident typed-array bytes beyond which the simulated machine
    /// starts paging (used with [`leaks_typed_arrays`]).
    ///
    /// [`leaks_typed_arrays`]: BrowserProfile::leaks_typed_arrays
    pub paging_threshold_bytes: usize,
    /// Virtual nanoseconds charged per operation, indexed by [`Cost`].
    pub cost_ns: [u64; COST_CATEGORIES],
}

impl BrowserProfile {
    /// The profile for a given browser.
    pub fn of(browser: Browser) -> BrowserProfile {
        match browser {
            Browser::Chrome => BrowserProfile {
                browser,
                has_typed_arrays: true,
                has_set_immediate: false,
                synchronous_send_message: false,
                validates_strings: false,
                has_user_behavior: false,
                has_web_sql: true,
                has_filesystem_api: true,
                has_indexed_db: true,
                has_websockets: true,
                leaks_typed_arrays: false,
                min_timeout_ms: 4.0,
                message_latency_ns: 60_000,
                immediate_latency_ns: 5_000,
                watchdog_limit_ns: Some(5_000_000_000),
                paging_threshold_bytes: usize::MAX,
                cost_ns: scale_costs(&BROWSER_BASE_COSTS, 100),
            },
            Browser::Firefox => BrowserProfile {
                browser,
                validates_strings: false,
                message_latency_ns: 80_000,
                cost_ns: scale_costs(&BROWSER_BASE_COSTS, 145),
                ..BrowserProfile::of(Browser::Chrome)
            },
            Browser::Safari => BrowserProfile {
                browser,
                validates_strings: false,
                leaks_typed_arrays: true,
                // Calibrated to our dataset scale: the paper's Safari
                // reached 6 GB resident against 8 GB of RAM because
                // javap's typed-array churn (file buffers + JVM byte
                // arrays) dwarfed the 10.5 MB of file bytes; our
                // datasets are ~100x smaller, so the paging point is
                // scaled accordingly (see DESIGN.md "Calibration").
                paging_threshold_bytes: 4 * 1024 * 1024,
                message_latency_ns: 70_000,
                has_filesystem_api: false,
                has_indexed_db: false,
                cost_ns: scale_costs(&BROWSER_BASE_COSTS, 165),
                ..BrowserProfile::of(Browser::Chrome)
            },
            Browser::Opera => BrowserProfile {
                browser,
                message_latency_ns: 120_000,
                has_filesystem_api: false,
                cost_ns: scale_costs(&BROWSER_BASE_COSTS, 310),
                ..BrowserProfile::of(Browser::Chrome)
            },
            Browser::Ie10 => BrowserProfile {
                browser,
                has_set_immediate: true,
                validates_strings: true,
                has_user_behavior: true,
                has_web_sql: false,
                has_filesystem_api: false,
                message_latency_ns: 90_000,
                cost_ns: scale_costs(&BROWSER_BASE_COSTS, 200),
                ..BrowserProfile::of(Browser::Chrome)
            },
            Browser::Ie8 => BrowserProfile {
                browser,
                has_typed_arrays: false,
                synchronous_send_message: true,
                validates_strings: true,
                has_user_behavior: true,
                has_web_sql: false,
                has_filesystem_api: false,
                has_indexed_db: false,
                has_websockets: false,
                cost_ns: scale_costs(&BROWSER_BASE_COSTS, 600),
                ..BrowserProfile::of(Browser::Chrome)
            },
            Browser::Native => BrowserProfile {
                browser,
                has_typed_arrays: true,
                has_set_immediate: true,
                synchronous_send_message: false,
                validates_strings: false,
                has_user_behavior: false,
                has_web_sql: false,
                has_filesystem_api: false,
                has_indexed_db: false,
                has_websockets: true,
                leaks_typed_arrays: false,
                min_timeout_ms: 0.0,
                message_latency_ns: 500,
                immediate_latency_ns: 200,
                watchdog_limit_ns: None,
                paging_threshold_bytes: usize::MAX,
                cost_ns: NATIVE_COSTS,
            },
        }
    }

    /// Cost in virtual nanoseconds of one operation of the given kind.
    #[inline]
    pub fn cost(&self, kind: Cost) -> u64 {
        self.cost_ns[kind as usize]
    }

    /// The best resumption mechanism this browser offers (§4.4):
    /// `setImmediate` when available, else `sendMessage` unless it is
    /// synchronous (IE8), else `setTimeout`.
    pub fn best_resume_mechanism(&self) -> ResumeMechanism {
        if self.has_set_immediate {
            ResumeMechanism::SetImmediate
        } else if !self.synchronous_send_message {
            ResumeMechanism::SendMessage
        } else {
            ResumeMechanism::SetTimeout
        }
    }
}

/// Baseline per-op costs for a JavaScript engine, in virtual ns, at
/// Chrome's speed (scale factor 100). Other browsers scale these.
///
/// Calibration targets (see DESIGN.md "Calibration"):
/// * interpreter-dominated workloads land 24–42× slower than
///   [`NATIVE_COSTS`] on Chrome (Figure 3/4);
/// * `LongOp` is disproportionately expensive (software Int64, §8);
/// * `FieldGet`/`FieldPut` model dictionary-based object layout (§6.7);
/// * `JsArrayByte` ≫ `TypedArrayByte` (Buffer's two backings, §5.1).
const BROWSER_BASE_COSTS: [u64; COST_CATEGORIES] = cost_table(CostTable {
    dispatch: 100,
    int_op: 20,
    long_op: 380,
    float_op: 24,
    field_get: 95,
    field_put: 110,
    array_get: 30,
    array_put: 38,
    alloc: 270,
    call: 450,
    string_op: 15,
    typed_array_byte: 2,
    js_array_byte: 26,
    map_op: 120,
    event_dispatch: 6_000,
    fs_call: 6_000,
    branch: 17,
});

/// Per-op costs of the native baseline (HotSpot's interpreter loop /
/// Node JS on the OS file system).
const NATIVE_COSTS: [u64; COST_CATEGORIES] = cost_table(CostTable {
    dispatch: 3,
    int_op: 1,
    long_op: 1,
    float_op: 1,
    field_get: 2,
    field_put: 2,
    array_get: 2,
    array_put: 2,
    alloc: 12,
    call: 8,
    string_op: 1,
    typed_array_byte: 1,
    js_array_byte: 1,
    map_op: 6,
    event_dispatch: 400,
    fs_call: 2_400,
    branch: 1,
});

/// Named-field helper so the cost tables above stay readable.
struct CostTable {
    dispatch: u64,
    int_op: u64,
    long_op: u64,
    float_op: u64,
    field_get: u64,
    field_put: u64,
    array_get: u64,
    array_put: u64,
    alloc: u64,
    call: u64,
    string_op: u64,
    typed_array_byte: u64,
    js_array_byte: u64,
    map_op: u64,
    event_dispatch: u64,
    fs_call: u64,
    branch: u64,
}

const fn cost_table(t: CostTable) -> [u64; COST_CATEGORIES] {
    let mut a = [0u64; COST_CATEGORIES];
    a[Cost::Dispatch as usize] = t.dispatch;
    a[Cost::IntOp as usize] = t.int_op;
    a[Cost::LongOp as usize] = t.long_op;
    a[Cost::FloatOp as usize] = t.float_op;
    a[Cost::FieldGet as usize] = t.field_get;
    a[Cost::FieldPut as usize] = t.field_put;
    a[Cost::ArrayGet as usize] = t.array_get;
    a[Cost::ArrayPut as usize] = t.array_put;
    a[Cost::Alloc as usize] = t.alloc;
    a[Cost::Call as usize] = t.call;
    a[Cost::StringOp as usize] = t.string_op;
    a[Cost::TypedArrayByte as usize] = t.typed_array_byte;
    a[Cost::JsArrayByte as usize] = t.js_array_byte;
    a[Cost::MapOp as usize] = t.map_op;
    a[Cost::EventDispatch as usize] = t.event_dispatch;
    a[Cost::FsCall as usize] = t.fs_call;
    a[Cost::Branch as usize] = t.branch;
    a
}

/// Scale a cost table by `percent`/100 (so 100 = unchanged).
fn scale_costs(base: &[u64; COST_CATEGORIES], percent: u64) -> [u64; COST_CATEGORIES] {
    let mut out = [0u64; COST_CATEGORIES];
    for (o, b) in out.iter_mut().zip(base.iter()) {
        *o = (b * percent).div_ceil(100).max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_is_fastest_evaluated_browser() {
        let chrome = BrowserProfile::of(Browser::Chrome);
        for b in [
            Browser::Firefox,
            Browser::Safari,
            Browser::Opera,
            Browser::Ie10,
        ] {
            let p = BrowserProfile::of(b);
            assert!(
                p.cost(Cost::Dispatch) >= chrome.cost(Cost::Dispatch),
                "{b} should not dispatch faster than Chrome"
            );
        }
    }

    #[test]
    fn native_is_far_cheaper_than_any_browser() {
        let native = BrowserProfile::of(Browser::Native);
        for b in Browser::ALL {
            let p = BrowserProfile::of(b);
            assert!(p.cost(Cost::Dispatch) >= 15 * native.cost(Cost::Dispatch));
        }
    }

    #[test]
    fn long_ops_are_disproportionately_slow_in_browsers() {
        let chrome = BrowserProfile::of(Browser::Chrome);
        // §8: software Int64 is "extremely slow" relative to int ops.
        assert!(chrome.cost(Cost::LongOp) > 10 * chrome.cost(Cost::IntOp));
        let native = BrowserProfile::of(Browser::Native);
        assert_eq!(native.cost(Cost::LongOp), native.cost(Cost::IntOp));
    }

    #[test]
    fn resume_mechanism_selection_follows_section_4_4() {
        assert_eq!(
            BrowserProfile::of(Browser::Ie10).best_resume_mechanism(),
            ResumeMechanism::SetImmediate
        );
        assert_eq!(
            BrowserProfile::of(Browser::Chrome).best_resume_mechanism(),
            ResumeMechanism::SendMessage
        );
        assert_eq!(
            BrowserProfile::of(Browser::Ie8).best_resume_mechanism(),
            ResumeMechanism::SetTimeout
        );
    }

    #[test]
    fn only_safari_leaks_typed_arrays() {
        for b in Browser::ALL {
            let p = BrowserProfile::of(b);
            assert_eq!(p.leaks_typed_arrays, b == Browser::Safari);
        }
    }

    #[test]
    fn ie8_lacks_modern_features() {
        let p = BrowserProfile::of(Browser::Ie8);
        assert!(!p.has_typed_arrays);
        assert!(p.synchronous_send_message);
        assert!(!p.has_websockets);
    }

    #[test]
    fn timeout_clamp_is_4ms_in_browsers_and_absent_natively() {
        assert_eq!(BrowserProfile::of(Browser::Chrome).min_timeout_ms, 4.0);
        assert_eq!(BrowserProfile::of(Browser::Native).min_timeout_ms, 0.0);
    }
}
