//! The engine: virtual clock, cost charging, event dispatch, and the
//! browser APIs Doppio builds on.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

use crate::error::{EngineError, EngineResult};
use crate::event_loop::{EventKind, EventQueue, ScheduledEvent};
use crate::memory::MemoryModel;
use crate::profile::{Browser, BrowserProfile, Cost};
use crate::stats::EngineStats;
use crate::storage::StorageSet;

/// A callback scheduled on the event loop. It receives the engine so it
/// can schedule further work, exactly like a JavaScript closure sees its
/// global environment.
pub type Callback = Box<dyn FnOnce(&Engine)>;

/// Identifies a `setTimeout` timer so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

/// The simulated browser JavaScript environment.
///
/// `Engine` is cheaply cloneable (it is a handle to shared state) and
/// strictly single-threaded, mirroring the JavaScript execution model of
/// §3.1: one thread, a queue of finite-duration events, no preemption.
///
/// All Doppio components charge their work to the engine's *virtual
/// clock* via [`Engine::charge`]; asynchronous browser APIs complete by
/// scheduling events on the queue. Time therefore advances in two ways:
/// synchronously as running code charges costs, and in jumps when the
/// loop pops an event whose deadline is in the future.
#[derive(Clone)]
pub struct Engine {
    inner: Rc<Inner>,
}

struct Inner {
    profile: BrowserProfile,
    clock_ns: Cell<u64>,
    seq: Cell<u64>,
    queue: RefCell<EventQueue>,
    cancelled: RefCell<HashSet<u64>>,
    stats: RefCell<EngineStats>,
    memory: RefCell<MemoryModel>,
    storage: RefCell<StorageSet>,
    event_depth: Cell<u32>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("browser", &self.inner.profile.browser)
            .field("now_ns", &self.now_ns())
            .field("pending_events", &self.pending_events())
            .finish()
    }
}

impl Engine {
    /// Create an engine simulating the given browser.
    pub fn new(browser: Browser) -> Engine {
        Engine::with_profile(BrowserProfile::of(browser))
    }

    /// Create an engine for the native baseline (the HotSpot
    /// interpreter / Node JS environment of the paper's comparisons).
    pub fn native() -> Engine {
        Engine::new(Browser::Native)
    }

    /// Create an engine from a custom profile (used by the §8 ablation
    /// experiments, which toggle proposed browser extensions).
    pub fn with_profile(profile: BrowserProfile) -> Engine {
        let memory = MemoryModel::new(profile.leaks_typed_arrays, profile.paging_threshold_bytes);
        let storage = StorageSet::for_profile(&profile);
        Engine {
            inner: Rc::new(Inner {
                profile,
                clock_ns: Cell::new(0),
                seq: Cell::new(0),
                queue: RefCell::new(EventQueue::default()),
                cancelled: RefCell::new(HashSet::new()),
                stats: RefCell::new(EngineStats::default()),
                memory: RefCell::new(memory),
                storage: RefCell::new(storage),
                event_depth: Cell::new(0),
            }),
        }
    }

    /// The active browser profile.
    pub fn profile(&self) -> &BrowserProfile {
        &self.inner.profile
    }

    /// Which browser this engine simulates.
    pub fn browser(&self) -> Browser {
        self.inner.profile.browser
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.inner.clock_ns.get()
    }

    /// Current virtual time in milliseconds (what `Date.now()`-style
    /// JavaScript code would observe).
    pub fn now_ms(&self) -> f64 {
        self.now_ns() as f64 / 1e6
    }

    // ----------------------------------------------------------------
    // Cost charging
    // ----------------------------------------------------------------

    /// Charge one operation of the given category to the virtual clock.
    #[inline]
    pub fn charge(&self, kind: Cost) {
        self.charge_n(kind, 1);
    }

    /// Charge `n` operations of the given category.
    #[inline]
    pub fn charge_n(&self, kind: Cost, n: u64) {
        let unit = self.inner.profile.cost(kind);
        let raw = unit.saturating_mul(n);
        let cost = self.inner.memory.borrow().apply_paging(raw);
        self.inner.clock_ns.set(self.inner.clock_ns.get() + cost);
        let mut stats = self.inner.stats.borrow_mut();
        stats.ops[kind as usize] += n;
        stats.ns[kind as usize] += cost;
    }

    /// Advance the clock without attributing the time to an operation
    /// category (used for modeled external latencies).
    pub fn advance_ns(&self, ns: u64) {
        self.inner.clock_ns.set(self.inner.clock_ns.get() + ns);
    }

    // ----------------------------------------------------------------
    // Scheduling APIs (§4.4)
    // ----------------------------------------------------------------

    fn next_seq(&self) -> u64 {
        let s = self.inner.seq.get();
        self.inner.seq.set(s + 1);
        s
    }

    fn enqueue(&self, due_ns: u64, kind: EventKind, timer: Option<TimerId>, cb: Callback) {
        let ev = ScheduledEvent {
            due_ns,
            seq: self.next_seq(),
            kind,
            timer,
            cb,
        };
        self.inner.queue.borrow_mut().push(ev);
    }

    /// `setTimeout(cb, ms)`. The HTML5 specification clamps the delay to
    /// the profile's minimum (4 ms in real browsers), which is why
    /// Doppio avoids `setTimeout` for suspend-and-resume when it can.
    pub fn set_timeout(&self, ms: f64, cb: impl FnOnce(&Engine) + 'static) -> TimerId {
        let ms = ms.max(self.inner.profile.min_timeout_ms);
        let delay = (ms * 1e6) as u64;
        let id = TimerId(self.next_seq());
        self.enqueue(
            self.now_ns() + delay,
            EventKind::Timer,
            Some(id),
            Box::new(cb),
        );
        id
    }

    /// `clearTimeout`.
    pub fn clear_timeout(&self, id: TimerId) {
        self.inner.cancelled.borrow_mut().insert(id.0);
    }

    /// `sendMessage`/`postMessage` to self: places a message event at
    /// the back of the queue immediately (no 4 ms clamp).
    ///
    /// On Internet Explorer 8 this is *synchronous*: the handler runs
    /// before `send_message` returns (§4.4), which makes it useless for
    /// suspend-and-resume there.
    pub fn send_message(&self, cb: impl FnOnce(&Engine) + 'static) {
        if self.inner.profile.synchronous_send_message {
            // The IE8 bug: the message handler is invoked inline.
            cb(self);
        } else {
            self.enqueue(
                self.now_ns() + self.inner.profile.message_latency_ns,
                EventKind::Message,
                None,
                Box::new(cb),
            );
        }
    }

    /// `setImmediate`: queue an event with no delay. Only IE10 (and the
    /// native baseline) provide it.
    pub fn set_immediate(&self, cb: impl FnOnce(&Engine) + 'static) -> EngineResult<()> {
        if !self.inner.profile.has_set_immediate {
            return Err(EngineError::UnsupportedApi {
                api: "setImmediate",
                browser: self.inner.profile.browser.name(),
            });
        }
        self.enqueue(
            self.now_ns() + self.inner.profile.immediate_latency_ns,
            EventKind::Immediate,
            None,
            Box::new(cb),
        );
        Ok(())
    }

    /// Schedule completion of a simulated asynchronous browser API
    /// (XHR, IndexedDB, network) after `delay_ns` of external latency.
    pub fn complete_async_after(&self, delay_ns: u64, cb: impl FnOnce(&Engine) + 'static) {
        self.enqueue(
            self.now_ns() + delay_ns,
            EventKind::AsyncCompletion,
            None,
            Box::new(cb),
        );
    }

    /// Inject a synthetic user-input event (used by responsiveness
    /// tests: if Doppio's segmentation works, these run promptly even
    /// while a long computation is in progress).
    pub fn inject_user_input(&self, cb: impl FnOnce(&Engine) + 'static) {
        self.enqueue(self.now_ns(), EventKind::UserInput, None, Box::new(cb));
    }

    // ----------------------------------------------------------------
    // The dispatch loop (§3.1)
    // ----------------------------------------------------------------

    /// Dispatch the next event, if any. Returns whether one ran.
    ///
    /// Mirrors one turn of the browser's event loop: pop the earliest
    /// event, jump the clock to its deadline, run it to completion, and
    /// let the watchdog judge it afterwards.
    pub fn run_one(&self) -> bool {
        let ev = loop {
            let ev = match self.inner.queue.borrow_mut().pop() {
                Some(ev) => ev,
                None => return false,
            };
            if let Some(TimerId(id)) = ev.timer {
                if self.inner.cancelled.borrow_mut().remove(&id) {
                    continue; // cancelled timer: skip silently
                }
            }
            break ev;
        };

        if ev.due_ns > self.now_ns() {
            self.inner.clock_ns.set(ev.due_ns);
        }
        self.charge(Cost::EventDispatch);
        let start = self.now_ns();
        self.inner.event_depth.set(self.inner.event_depth.get() + 1);
        (ev.cb)(self);
        self.inner.event_depth.set(self.inner.event_depth.get() - 1);
        let elapsed = self.now_ns() - start;

        let mut stats = self.inner.stats.borrow_mut();
        stats.events_run += 1;
        stats.events_by_kind[ev.kind.index()] += 1;
        stats.total_event_ns += elapsed;
        stats.max_event_ns = stats.max_event_ns.max(elapsed);
        if let Some(limit) = self.inner.profile.watchdog_limit_ns {
            if elapsed > limit {
                // A real browser would have killed the page's script;
                // we record the violation so tests and benches can
                // assert Doppio's segmentation prevents it.
                stats.watchdog_kills += 1;
            }
        }
        true
    }

    /// Run events until the queue is empty. Returns how many ran.
    pub fn run_until_idle(&self) -> u64 {
        let mut n = 0;
        while self.run_one() {
            n += 1;
        }
        n
    }

    /// Run events until `done()` reports true or the queue drains.
    /// Returns whether `done()` was satisfied.
    pub fn run_until(&self, mut done: impl FnMut() -> bool) -> bool {
        while !done() {
            if !self.run_one() {
                return done();
            }
        }
        true
    }

    /// Whether the loop is currently inside an event callback.
    pub fn in_event(&self) -> bool {
        self.inner.event_depth.get() > 0
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.inner.queue.borrow().len()
    }

    // ----------------------------------------------------------------
    // Statistics and memory accounting
    // ----------------------------------------------------------------

    /// A snapshot of the engine's counters.
    pub fn stats(&self) -> EngineStats {
        self.inner.stats.borrow().clone()
    }

    /// Reset all counters (the clock keeps running).
    pub fn reset_stats(&self) {
        *self.inner.stats.borrow_mut() = EngineStats::default();
    }

    /// Record a typed-array allocation (Buffer and heap backings call
    /// this so the Safari leak model sees the traffic).
    pub fn typed_array_alloc(&self, bytes: usize) {
        self.inner.memory.borrow_mut().alloc(bytes);
    }

    /// Record a typed-array free.
    pub fn typed_array_free(&self, bytes: usize) {
        self.inner.memory.borrow_mut().free(bytes);
    }

    /// Resident typed-array bytes (grows without bound on Safari).
    pub fn typed_array_resident_bytes(&self) -> usize {
        self.inner.memory.borrow().resident_bytes()
    }

    /// Whether the simulated machine is currently paging.
    pub fn is_paging(&self) -> bool {
        self.inner.memory.borrow().is_paging()
    }

    /// Access the browser's persistent storage mechanisms.
    pub fn with_storage<R>(&self, f: impl FnOnce(&mut StorageSet, &Engine) -> R) -> R {
        let mut guard = self.inner.storage.borrow_mut();
        f(&mut guard, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell as StdCell;

    #[test]
    fn charging_advances_the_clock() {
        let e = Engine::new(Browser::Chrome);
        let t0 = e.now_ns();
        e.charge(Cost::Dispatch);
        assert!(e.now_ns() > t0);
        let stats = e.stats();
        assert_eq!(stats.ops[Cost::Dispatch as usize], 1);
    }

    #[test]
    fn set_timeout_respects_the_4ms_clamp() {
        let e = Engine::new(Browser::Chrome);
        let fired_at = Rc::new(StdCell::new(0u64));
        let f = fired_at.clone();
        e.set_timeout(0.0, move |eng| f.set(eng.now_ns()));
        e.run_until_idle();
        assert!(fired_at.get() >= 4_000_000, "clamped to >= 4ms");
    }

    #[test]
    fn native_profile_has_no_clamp() {
        let e = Engine::native();
        let fired_at = Rc::new(StdCell::new(u64::MAX));
        let f = fired_at.clone();
        e.set_timeout(0.0, move |eng| f.set(eng.now_ns()));
        e.run_until_idle();
        assert!(fired_at.get() < 4_000_000);
    }

    #[test]
    fn send_message_is_much_faster_than_set_timeout() {
        let e = Engine::new(Browser::Chrome);
        let fired_at = Rc::new(StdCell::new(0u64));
        let f = fired_at.clone();
        e.send_message(move |eng| f.set(eng.now_ns()));
        e.run_until_idle();
        assert!(fired_at.get() < 1_000_000, "sendMessage lands in < 1ms");
    }

    #[test]
    fn ie8_send_message_is_synchronous() {
        let e = Engine::new(Browser::Ie8);
        let ran = Rc::new(StdCell::new(false));
        let r = ran.clone();
        e.send_message(move |_| r.set(true));
        // Handler already ran, before any event dispatch.
        assert!(ran.get());
        assert_eq!(e.pending_events(), 0);
    }

    #[test]
    fn set_immediate_only_on_ie10() {
        let chrome = Engine::new(Browser::Chrome);
        assert!(matches!(
            chrome.set_immediate(|_| {}),
            Err(EngineError::UnsupportedApi { .. })
        ));
        let ie10 = Engine::new(Browser::Ie10);
        assert!(ie10.set_immediate(|_| {}).is_ok());
        assert_eq!(ie10.run_until_idle(), 1);
    }

    #[test]
    fn cleared_timers_do_not_fire() {
        let e = Engine::new(Browser::Chrome);
        let ran = Rc::new(StdCell::new(false));
        let r = ran.clone();
        let id = e.set_timeout(1.0, move |_| r.set(true));
        e.clear_timeout(id);
        e.run_until_idle();
        assert!(!ran.get());
    }

    #[test]
    fn watchdog_records_overlong_events() {
        let e = Engine::new(Browser::Chrome);
        e.send_message(|eng| {
            // Simulate a computation that hogs the thread for > 5s.
            eng.advance_ns(6_000_000_000);
        });
        e.run_until_idle();
        assert_eq!(e.stats().watchdog_kills, 1);
    }

    #[test]
    fn short_events_do_not_trip_the_watchdog() {
        let e = Engine::new(Browser::Chrome);
        for _ in 0..100 {
            e.send_message(|eng| eng.advance_ns(1_000_000));
        }
        e.run_until_idle();
        let s = e.stats();
        assert_eq!(s.watchdog_kills, 0);
        assert_eq!(s.events_run, 100);
    }

    #[test]
    fn events_nest_and_chain() {
        let e = Engine::new(Browser::Chrome);
        let order = Rc::new(RefCell::new(Vec::new()));
        let (o1, o2) = (order.clone(), order.clone());
        e.send_message(move |eng| {
            o1.borrow_mut().push(1);
            let o = o1.clone();
            eng.send_message(move |_| o.borrow_mut().push(3));
            o1.borrow_mut().push(2);
        });
        e.send_message(move |_| o2.borrow_mut().push(10));
        e.run_until_idle();
        // First event fully completes (1,2) before the next queued event
        // (10), and the nested message lands after both.
        assert_eq!(*order.borrow(), vec![1, 2, 10, 3]);
    }

    #[test]
    fn paging_inflates_charges_on_safari() {
        let e = Engine::new(Browser::Safari);
        let unit = e.profile().cost(Cost::Dispatch);
        e.typed_array_alloc(400 * 1024 * 1024); // past the 192 MB threshold
        e.typed_array_free(400 * 1024 * 1024); // leak: ignored
        assert!(e.is_paging());
        let t0 = e.now_ns();
        e.charge(Cost::Dispatch);
        assert!(e.now_ns() - t0 > unit);
    }

    #[test]
    fn user_input_runs_between_segmented_events() {
        let e = Engine::new(Browser::Chrome);
        let log = Rc::new(RefCell::new(Vec::new()));
        let (l1, l2) = (log.clone(), log.clone());
        // A "computation" split across two events...
        e.send_message(move |eng| {
            l1.borrow_mut().push("work-1");
            let l = l1.clone();
            eng.send_message(move |_| l.borrow_mut().push("work-2"));
        });
        // ...lets user input injected after the first segment run
        // before the second.
        e.run_one();
        e.inject_user_input(move |_| l2.borrow_mut().push("input"));
        e.run_until_idle();
        assert_eq!(*log.borrow(), vec!["work-1", "input", "work-2"]);
    }
}
